//! Post-processing fairness interventions.
//!
//! A [`Postprocessor`] is fitted on *validation* predictions (scores,
//! ground-truth labels, and group membership) — never on the test set — and
//! then adjusts the hard predictions of any later split. This is the
//! "final (optional) step" of lifecycle phase 1 (§3).

pub mod calibrated_eq_odds;
pub mod eq_odds;
pub mod group_thresholds;
pub mod reject_option;

use fairprep_data::error::{Error, Result};
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value};
use fairprep_trace::{Stage, Tracer};

pub use calibrated_eq_odds::{CalibratedEqOdds, CostConstraint};
pub use eq_odds::EqOddsPostprocessing;
pub use group_thresholds::{GroupThresholdOptimizer, ThresholdConstraint};
pub use reject_option::RejectOptionClassification;

/// A post-processing fairness-enhancing intervention.
pub trait Postprocessor: Send + Sync {
    /// Stable name (with parameters) for run metadata.
    fn name(&self) -> String;

    /// Fits the adjustment on validation-set predictions.
    fn fit(
        &self,
        val_scores: &[f64],
        val_labels: &[f64],
        val_privileged: &[bool],
        seed: u64,
    ) -> Result<Box<dyn FittedPostprocessor>>;

    /// Like [`Postprocessor::fit`], recording a `postprocess` span on
    /// `tracer`. The default wraps `fit`, so existing interventions
    /// participate in tracing without changes.
    fn fit_traced(
        &self,
        val_scores: &[f64],
        val_labels: &[f64],
        val_privileged: &[bool],
        seed: u64,
        tracer: &Tracer,
    ) -> Result<Box<dyn FittedPostprocessor>> {
        let _span = tracer.span(Stage::Postprocess);
        self.fit(val_scores, val_labels, val_privileged, seed)
    }
}

/// A fitted post-processing intervention.
pub trait FittedPostprocessor: Send + Sync {
    /// Produces adjusted hard predictions (0/1) from probabilistic scores
    /// and group membership. Must be deterministic for fixed inputs (any
    /// internal randomization is seeded at fit time).
    fn adjust(&self, scores: &[f64], privileged: &[bool]) -> Result<Vec<f64>>;

    /// Serializes the fitted adjustment into a sealed-pipeline component
    /// record, reloadable via [`unseal_postprocessor`]. The default refuses
    /// with a typed error so experimental interventions stay usable
    /// in-process without silently sealing an unservable pipeline.
    fn seal(&self) -> Result<Value> {
        Err(Error::Seal(
            "this postprocessor does not support sealing".to_string(),
        ))
    }
}

/// Reconstructs a fitted postprocessor from a sealed component record,
/// dispatching on its `"kind"` tag. The inverse of
/// [`FittedPostprocessor::seal`] for every intervention this crate ships.
pub fn unseal_postprocessor(v: &Value) -> Result<Box<dyn FittedPostprocessor>> {
    match sealing::kind_of(v)? {
        "threshold" => Ok(Box::new(FittedThreshold)),
        reject_option::KIND => Ok(Box::new(reject_option::FittedRejectOption::unseal(v)?)),
        group_thresholds::KIND => Ok(Box::new(group_thresholds::FittedGroupThresholds::unseal(
            v,
        )?)),
        calibrated_eq_odds::KIND => Ok(Box::new(calibrated_eq_odds::FittedCalEqOdds::unseal(v)?)),
        eq_odds::KIND => Ok(Box::new(eq_odds::FittedEqOdds::unseal(v)?)),
        other => Err(Error::Seal(format!("unknown postprocessor kind {other:?}"))),
    }
}

/// Validates the common `(scores, labels, mask)` fit inputs.
pub(crate) fn validate_fit_inputs(
    scores: &[f64],
    labels: &[f64],
    privileged: &[bool],
) -> Result<()> {
    if scores.len() != labels.len() || scores.len() != privileged.len() {
        return Err(Error::LengthMismatch {
            expected: scores.len(),
            actual: labels.len().min(privileged.len()),
        });
    }
    if scores.is_empty() {
        return Err(Error::EmptyData("postprocessor fit inputs".to_string()));
    }
    if !privileged.iter().any(|&p| p) || privileged.iter().all(|&p| p) {
        return Err(Error::EmptyGroup {
            privileged: !privileged.iter().any(|&p| p),
        });
    }
    Ok(())
}

/// The identity postprocessor (no adjustment).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPostprocessing;

impl Postprocessor for NoPostprocessing {
    fn name(&self) -> String {
        "no_postprocessing".to_string()
    }

    // audit: allow(missing-guard-fit, reason = "postprocessors deliberately fit on held-out validation predictions (tagged Derived) - the one documented provenance exception, see DESIGN.md")
    fn fit(
        &self,
        _val_scores: &[f64],
        _val_labels: &[f64],
        _val_privileged: &[bool],
        _seed: u64,
    ) -> Result<Box<dyn FittedPostprocessor>> {
        Ok(Box::new(FittedThreshold))
    }
}

struct FittedThreshold;

impl FittedPostprocessor for FittedThreshold {
    fn adjust(&self, scores: &[f64], _privileged: &[bool]) -> Result<Vec<f64>> {
        Ok(scores
            .iter()
            .map(|&s| f64::from(u8::from(s > 0.5)))
            .collect())
    }

    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![("kind", Value::Str("threshold".to_string()))]))
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use rand::Rng;

    /// Synthetic validation predictions with a group gap: privileged scores
    /// are shifted up. Returns (scores, labels, privileged mask).
    pub(crate) fn biased_scores(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        let mut rng = fairprep_data::rng::component_rng(seed, "test/biased_scores");
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        for i in 0..n {
            let privileged = i % 2 == 0;
            let y = f64::from(u8::from(rng.random::<f64>() < 0.5));
            let signal = 0.25 * y + if privileged { 0.2 } else { 0.0 };
            let s: f64 = (0.3 + signal + 0.3 * rng.random::<f64>()).clamp(0.01, 0.99);
            scores.push(s);
            labels.push(y);
            mask.push(privileged);
        }
        (scores, labels, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_postprocessing_thresholds() {
        let fitted = NoPostprocessing
            .fit(&[0.4, 0.6], &[0.0, 1.0], &[true, false], 0)
            .unwrap();
        assert_eq!(
            fitted
                .adjust(&[0.3, 0.51, 0.5], &[true, false, true])
                .unwrap(),
            vec![0.0, 1.0, 0.0]
        );
    }

    /// Every shipped postprocessor seals, unseals through the full
    /// serialize → parse cycle, and adjusts **bit-identically** afterwards
    /// (the randomized ones re-derive their RNG from the sealed seed).
    #[test]
    fn every_postprocessor_seals_and_unseals_identically() {
        let (scores, labels, mask) = test_support::biased_scores(300, 7);
        let postprocessors: Vec<Box<dyn Postprocessor>> = vec![
            Box::new(NoPostprocessing),
            Box::new(RejectOptionClassification::default()),
            Box::new(GroupThresholdOptimizer::default()),
            Box::new(CalibratedEqOdds::default()),
            Box::new(EqOddsPostprocessing::default()),
        ];
        for post in postprocessors {
            let fitted = post.fit(&scores, &labels, &mask, 23).unwrap();
            let sealed = fitted.seal().unwrap();
            let reparsed = fairprep_trace::json::parse(&sealed.to_json()).unwrap();
            let reloaded = unseal_postprocessor(&reparsed).unwrap();
            assert_eq!(
                fitted.adjust(&scores, &mask).unwrap(),
                reloaded.adjust(&scores, &mask).unwrap(),
                "{} adjustment drifted",
                post.name()
            );
        }
    }

    #[test]
    fn unseal_rejects_unknown_kind_and_malformed_records() {
        let err_of = |v: &Value| match unseal_postprocessor(v) {
            Ok(_) => panic!("malformed record unsealed"),
            Err(e) => e,
        };
        let unknown = obj(vec![("kind", Value::Str("platt".into()))]);
        assert!(matches!(err_of(&unknown), Error::Seal(_)));
        let missing_field = obj(vec![("kind", Value::Str("reject_option".into()))]);
        assert!(matches!(err_of(&missing_field), Error::Seal(_)));
        // An out-of-range mixing rate is rejected, not silently applied.
        let bad_rate = obj(vec![
            ("kind", Value::Str("eq_odds".into())),
            ("p2p_priv", Value::bits(1.5)),
            ("n2p_priv", Value::bits(0.1)),
            ("p2p_unpriv", Value::bits(0.9)),
            ("n2p_unpriv", Value::bits(0.2)),
            ("seed", Value::from_u64(1)),
        ]);
        assert!(matches!(err_of(&bad_rate), Error::Seal(_)));
    }

    #[test]
    fn fit_inputs_validated() {
        assert!(validate_fit_inputs(&[0.5], &[1.0, 0.0], &[true, false]).is_err());
        assert!(validate_fit_inputs(&[], &[], &[]).is_err());
        assert!(validate_fit_inputs(&[0.5, 0.6], &[1.0, 0.0], &[true, true]).is_err());
        assert!(validate_fit_inputs(&[0.5, 0.6], &[1.0, 0.0], &[true, false]).is_ok());
    }
}
