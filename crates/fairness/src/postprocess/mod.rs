//! Post-processing fairness interventions.
//!
//! A [`Postprocessor`] is fitted on *validation* predictions (scores,
//! ground-truth labels, and group membership) — never on the test set — and
//! then adjusts the hard predictions of any later split. This is the
//! "final (optional) step" of lifecycle phase 1 (§3).

pub mod calibrated_eq_odds;
pub mod eq_odds;
pub mod group_thresholds;
pub mod reject_option;

use fairprep_data::error::{Error, Result};
use fairprep_trace::{Stage, Tracer};

pub use calibrated_eq_odds::{CalibratedEqOdds, CostConstraint};
pub use eq_odds::EqOddsPostprocessing;
pub use group_thresholds::{GroupThresholdOptimizer, ThresholdConstraint};
pub use reject_option::RejectOptionClassification;

/// A post-processing fairness-enhancing intervention.
pub trait Postprocessor: Send + Sync {
    /// Stable name (with parameters) for run metadata.
    fn name(&self) -> String;

    /// Fits the adjustment on validation-set predictions.
    fn fit(
        &self,
        val_scores: &[f64],
        val_labels: &[f64],
        val_privileged: &[bool],
        seed: u64,
    ) -> Result<Box<dyn FittedPostprocessor>>;

    /// Like [`Postprocessor::fit`], recording a `postprocess` span on
    /// `tracer`. The default wraps `fit`, so existing interventions
    /// participate in tracing without changes.
    fn fit_traced(
        &self,
        val_scores: &[f64],
        val_labels: &[f64],
        val_privileged: &[bool],
        seed: u64,
        tracer: &Tracer,
    ) -> Result<Box<dyn FittedPostprocessor>> {
        let _span = tracer.span(Stage::Postprocess);
        self.fit(val_scores, val_labels, val_privileged, seed)
    }
}

/// A fitted post-processing intervention.
pub trait FittedPostprocessor: Send + Sync {
    /// Produces adjusted hard predictions (0/1) from probabilistic scores
    /// and group membership. Must be deterministic for fixed inputs (any
    /// internal randomization is seeded at fit time).
    fn adjust(&self, scores: &[f64], privileged: &[bool]) -> Result<Vec<f64>>;
}

/// Validates the common `(scores, labels, mask)` fit inputs.
pub(crate) fn validate_fit_inputs(
    scores: &[f64],
    labels: &[f64],
    privileged: &[bool],
) -> Result<()> {
    if scores.len() != labels.len() || scores.len() != privileged.len() {
        return Err(Error::LengthMismatch {
            expected: scores.len(),
            actual: labels.len().min(privileged.len()),
        });
    }
    if scores.is_empty() {
        return Err(Error::EmptyData("postprocessor fit inputs".to_string()));
    }
    if !privileged.iter().any(|&p| p) || privileged.iter().all(|&p| p) {
        return Err(Error::EmptyGroup {
            privileged: !privileged.iter().any(|&p| p),
        });
    }
    Ok(())
}

/// The identity postprocessor (no adjustment).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPostprocessing;

impl Postprocessor for NoPostprocessing {
    fn name(&self) -> String {
        "no_postprocessing".to_string()
    }

    // audit: allow(missing-guard-fit, reason = "postprocessors deliberately fit on held-out validation predictions (tagged Derived) - the one documented provenance exception, see DESIGN.md")
    fn fit(
        &self,
        _val_scores: &[f64],
        _val_labels: &[f64],
        _val_privileged: &[bool],
        _seed: u64,
    ) -> Result<Box<dyn FittedPostprocessor>> {
        Ok(Box::new(FittedThreshold))
    }
}

struct FittedThreshold;

impl FittedPostprocessor for FittedThreshold {
    fn adjust(&self, scores: &[f64], _privileged: &[bool]) -> Result<Vec<f64>> {
        Ok(scores
            .iter()
            .map(|&s| f64::from(u8::from(s > 0.5)))
            .collect())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use rand::Rng;

    /// Synthetic validation predictions with a group gap: privileged scores
    /// are shifted up. Returns (scores, labels, privileged mask).
    pub(crate) fn biased_scores(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        let mut rng = fairprep_data::rng::component_rng(seed, "test/biased_scores");
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        for i in 0..n {
            let privileged = i % 2 == 0;
            let y = f64::from(u8::from(rng.random::<f64>() < 0.5));
            let signal = 0.25 * y + if privileged { 0.2 } else { 0.0 };
            let s: f64 = (0.3 + signal + 0.3 * rng.random::<f64>()).clamp(0.01, 0.99);
            scores.push(s);
            labels.push(y);
            mask.push(privileged);
        }
        (scores, labels, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_postprocessing_thresholds() {
        let fitted = NoPostprocessing
            .fit(&[0.4, 0.6], &[0.0, 1.0], &[true, false], 0)
            .unwrap();
        assert_eq!(
            fitted
                .adjust(&[0.3, 0.51, 0.5], &[true, false, true])
                .unwrap(),
            vec![0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn fit_inputs_validated() {
        assert!(validate_fit_inputs(&[0.5], &[1.0, 0.0], &[true, false]).is_err());
        assert!(validate_fit_inputs(&[], &[], &[]).is_err());
        assert!(validate_fit_inputs(&[0.5, 0.6], &[1.0, 0.0], &[true, true]).is_err());
        assert!(validate_fit_inputs(&[0.5, 0.6], &[1.0, 0.0], &[true, false]).is_ok());
    }
}
