//! Group-specific decision thresholds — an extension post-processor in the
//! spirit of Fairlearn's `ThresholdOptimizer`.
//!
//! Instead of the global 0.5 cut-off, the fit searches a per-group
//! threshold pair `(t_priv, t_unpriv)` on the validation predictions,
//! choosing the most accurate pair whose fairness constraint (statistical
//! parity or equal opportunity) is satisfied within a bound; when no pair
//! satisfies it, the pair with the smallest violation wins. Deterministic —
//! no randomization is involved.

use fairprep_data::error::Result;
use fairprep_ml::eval::ConfusionMatrix;
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value};

use crate::postprocess::{validate_fit_inputs, FittedPostprocessor, Postprocessor};

pub(crate) const KIND: &str = "group_thresholds";

/// The fairness constraint the threshold pair must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdConstraint {
    /// Equal selection rates (`|SPD| <= bound`).
    StatisticalParity,
    /// Equal true positive rates (`|EOD| <= bound`).
    EqualOpportunity,
}

impl ThresholdConstraint {
    fn name(self) -> &'static str {
        match self {
            ThresholdConstraint::StatisticalParity => "statistical_parity",
            ThresholdConstraint::EqualOpportunity => "equal_opportunity",
        }
    }
}

/// The group-threshold-optimizer intervention.
#[derive(Debug, Clone, Copy)]
pub struct GroupThresholdOptimizer {
    /// The constraint to satisfy.
    pub constraint: ThresholdConstraint,
    /// Maximum tolerated constraint violation on the validation set.
    pub bound: f64,
    /// Threshold-grid resolution per group.
    pub steps: usize,
}

impl Default for GroupThresholdOptimizer {
    fn default() -> Self {
        GroupThresholdOptimizer {
            constraint: ThresholdConstraint::StatisticalParity,
            bound: 0.03,
            steps: 40,
        }
    }
}

fn metrics_at(
    scores: &[f64],
    labels: &[f64],
    privileged: &[bool],
    t_priv: f64,
    t_unpriv: f64,
) -> (f64, f64, f64) {
    let preds: Vec<f64> = scores
        .iter()
        .zip(privileged)
        .map(|(&s, &p)| {
            let t = if p { t_priv } else { t_unpriv };
            f64::from(u8::from(s >= t))
        })
        .collect();
    // audit: allow(expect, reason = "preds is computed element-wise from scores whose length was validated against labels")
    let overall = ConfusionMatrix::compute(labels, &preds, None).expect("lengths");
    let group_cm = |keep: bool| {
        let y: Vec<f64> = labels
            .iter()
            .zip(privileged)
            .filter(|(_, &p)| p == keep)
            .map(|(&v, _)| v)
            .collect();
        let pr: Vec<f64> = preds
            .iter()
            .zip(privileged)
            .filter(|(_, &p)| p == keep)
            .map(|(&v, _)| v)
            .collect();
        // audit: allow(expect, reason = "y and pr are zip-filtered from equal-length inputs, so their lengths match")
        ConfusionMatrix::compute(&y, &pr, None).expect("lengths")
    };
    let cm_p = group_cm(true);
    let cm_u = group_cm(false);
    let spd = cm_u.selection_rate() - cm_p.selection_rate();
    let eod = cm_u.tpr() - cm_p.tpr();
    (overall.accuracy(), spd, eod)
}

impl Postprocessor for GroupThresholdOptimizer {
    fn name(&self) -> String {
        format!(
            "group_thresholds({},bound={})",
            self.constraint.name(),
            self.bound
        )
    }

    // audit: allow(missing-guard-fit, reason = "postprocessors deliberately fit on held-out validation predictions (tagged Derived) - the one documented provenance exception, see DESIGN.md")
    fn fit(
        &self,
        val_scores: &[f64],
        val_labels: &[f64],
        val_privileged: &[bool],
        _seed: u64,
    ) -> Result<Box<dyn FittedPostprocessor>> {
        validate_fit_inputs(val_scores, val_labels, val_privileged)?;
        let steps = self.steps.max(2);
        let grid: Vec<f64> = (0..=steps).map(|k| k as f64 / steps as f64).collect();

        let mut best_feasible: Option<(f64, f64, f64)> = None; // (tp, tu, acc)
        let mut best_fallback: Option<(f64, f64, f64)> = None; // (tp, tu, violation)
        for &tp in &grid {
            for &tu in &grid {
                let (acc, spd, eod) = metrics_at(val_scores, val_labels, val_privileged, tp, tu);
                let violation = match self.constraint {
                    ThresholdConstraint::StatisticalParity => spd.abs(),
                    ThresholdConstraint::EqualOpportunity => {
                        if eod.is_finite() {
                            eod.abs()
                        } else {
                            f64::INFINITY
                        }
                    }
                };
                if violation <= self.bound && best_feasible.is_none_or(|(_, _, a)| acc > a) {
                    best_feasible = Some((tp, tu, acc));
                }
                if best_fallback.is_none_or(|(_, _, v)| violation < v) {
                    best_fallback = Some((tp, tu, violation));
                }
            }
        }
        let (t_priv, t_unpriv) = best_feasible
            .map(|(tp, tu, _)| (tp, tu))
            .or(best_fallback.map(|(tp, tu, _)| (tp, tu)))
            .unwrap_or((0.5, 0.5));
        Ok(Box::new(FittedGroupThresholds { t_priv, t_unpriv }))
    }
}

/// The fitted per-group thresholds.
#[derive(Debug, Clone, Copy)]
pub struct FittedGroupThresholds {
    /// Decision threshold for the privileged group.
    pub t_priv: f64,
    /// Decision threshold for the unprivileged group.
    pub t_unpriv: f64,
}

impl FittedGroupThresholds {
    pub(crate) fn unseal(v: &Value) -> Result<FittedGroupThresholds> {
        let t_priv = sealing::req_f64(v, "t_priv")?;
        let t_unpriv = sealing::req_f64(v, "t_unpriv")?;
        if !t_priv.is_finite() || !t_unpriv.is_finite() {
            return Err(sealing::seal_err("group_thresholds must be finite"));
        }
        Ok(FittedGroupThresholds { t_priv, t_unpriv })
    }
}

impl FittedPostprocessor for FittedGroupThresholds {
    fn adjust(&self, scores: &[f64], privileged: &[bool]) -> Result<Vec<f64>> {
        Ok(scores
            .iter()
            .zip(privileged)
            .map(|(&s, &p)| {
                let t = if p { self.t_priv } else { self.t_unpriv };
                f64::from(u8::from(s >= t))
            })
            .collect())
    }

    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("t_priv", Value::bits(self.t_priv)),
            ("t_unpriv", Value::bits(self.t_unpriv)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess::test_support::biased_scores;

    #[test]
    fn satisfies_statistical_parity_bound_on_validation() {
        let (scores, labels, mask) = biased_scores(1000, 41);
        let fitted = GroupThresholdOptimizer::default()
            .fit(&scores, &labels, &mask, 0)
            .unwrap();
        let preds = fitted.adjust(&scores, &mask).unwrap();
        let rate = |keep: bool| {
            let (s, n) = preds
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m == keep)
                .fold((0.0, 0usize), |(s, n), (&v, _)| (s + v, n + 1));
            s / n as f64
        };
        let spd = (rate(false) - rate(true)).abs();
        assert!(spd <= 0.05, "validation SPD after thresholds: {spd}");
    }

    /// Scores where privileged positives are confidently above 0.5 but
    /// unprivileged positives straddle it — a genuine TPR gap at the
    /// default threshold.
    fn tpr_gap_scores(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        use rand::Rng;
        let mut rng = fairprep_data::rng::component_rng(seed, "test/tpr_gap");
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        for i in 0..n {
            let privileged = i % 2 == 0;
            let y = f64::from(u8::from(rng.random::<f64>() < 0.5));
            let signal = if privileged { 0.35 * y } else { 0.12 * y };
            let s: f64 = (0.28 + signal + 0.3 * rng.random::<f64>()).clamp(0.01, 0.99);
            scores.push(s);
            labels.push(y);
            mask.push(privileged);
        }
        (scores, labels, mask)
    }

    #[test]
    fn equal_opportunity_variant_reduces_tpr_gap() {
        let (scores, labels, mask) = tpr_gap_scores(1500, 42);
        let tpr_gap = |preds: &[f64]| {
            let group = |keep: bool| {
                let y: Vec<f64> = labels
                    .iter()
                    .zip(&mask)
                    .filter(|(_, &m)| m == keep)
                    .map(|(&v, _)| v)
                    .collect();
                let p: Vec<f64> = preds
                    .iter()
                    .zip(&mask)
                    .filter(|(_, &m)| m == keep)
                    .map(|(&v, _)| v)
                    .collect();
                ConfusionMatrix::compute(&y, &p, None).unwrap().tpr()
            };
            (group(false) - group(true)).abs()
        };
        let plain: Vec<f64> = scores
            .iter()
            .map(|&s| f64::from(u8::from(s > 0.5)))
            .collect();
        let optimizer = GroupThresholdOptimizer {
            constraint: ThresholdConstraint::EqualOpportunity,
            ..Default::default()
        };
        let fitted = optimizer.fit(&scores, &labels, &mask, 0).unwrap();
        let adjusted = fitted.adjust(&scores, &mask).unwrap();
        assert!(
            tpr_gap(&adjusted) < tpr_gap(&plain),
            "plain gap {}, adjusted gap {}",
            tpr_gap(&plain),
            tpr_gap(&adjusted)
        );
    }

    #[test]
    fn thresholds_differ_between_groups_on_biased_data() {
        let (scores, labels, mask) = biased_scores(1000, 43);
        let optimizer = GroupThresholdOptimizer::default();
        let boxed = optimizer.fit(&scores, &labels, &mask, 0).unwrap();
        // On biased scores, a single shared threshold cannot reach parity:
        // adjusting must actually act group-specifically. Verify by checking
        // the adjusted selection rates come out closer than plain 0.5.
        let plain: Vec<f64> = scores
            .iter()
            .map(|&s| f64::from(u8::from(s > 0.5)))
            .collect();
        let adjusted = boxed.adjust(&scores, &mask).unwrap();
        let gap = |preds: &[f64]| {
            let rate = |keep: bool| {
                let (s, n) = preds
                    .iter()
                    .zip(&mask)
                    .filter(|(_, &m)| m == keep)
                    .fold((0.0, 0usize), |(s, n), (&v, _)| (s + v, n + 1));
                s / n as f64
            };
            (rate(false) - rate(true)).abs()
        };
        assert!(gap(&adjusted) < gap(&plain));
    }

    #[test]
    fn deterministic_and_seed_independent() {
        let (scores, labels, mask) = biased_scores(400, 44);
        let o = GroupThresholdOptimizer::default();
        let a = o
            .fit(&scores, &labels, &mask, 1)
            .unwrap()
            .adjust(&scores, &mask)
            .unwrap();
        let b = o
            .fit(&scores, &labels, &mask, 2)
            .unwrap()
            .adjust(&scores, &mask)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(GroupThresholdOptimizer::default()
            .fit(&[0.5], &[1.0, 0.0], &[true, false], 0)
            .is_err());
    }

    #[test]
    fn name_mentions_constraint() {
        assert!(GroupThresholdOptimizer::default()
            .name()
            .contains("statistical_parity"));
    }
}
