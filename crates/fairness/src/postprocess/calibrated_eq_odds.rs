//! Calibrated equalized odds [Pleiss et al., NeurIPS 2017].
//!
//! Calibration and equalized odds cannot hold simultaneously in general;
//! Pleiss et al. instead equalize one *generalized cost* (generalized FNR,
//! generalized FPR, or a weighted mix) while keeping scores calibrated, by
//! randomly replacing a fraction of the lower-cost group's scores with that
//! group's base rate. The mixing fraction has the closed form
//! `p = (cost_other − cost_self) / (cost_trivial_self − cost_self)`.
//!
//! The randomization is seeded at fit time so adjustment is reproducible.

use rand::Rng;

use fairprep_data::error::Result;
use fairprep_data::rng::component_rng;
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value};

use crate::postprocess::{validate_fit_inputs, FittedPostprocessor, Postprocessor};

pub(crate) const KIND: &str = "cal_eq_odds";

/// Which generalized cost to equalize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostConstraint {
    /// Equalize generalized false-negative rates.
    FalseNegativeRate,
    /// Equalize generalized false-positive rates.
    FalsePositiveRate,
    /// Equalize the sum of both.
    Weighted,
}

impl CostConstraint {
    fn name(self) -> &'static str {
        match self {
            CostConstraint::FalseNegativeRate => "fnr",
            CostConstraint::FalsePositiveRate => "fpr",
            CostConstraint::Weighted => "weighted",
        }
    }
}

/// The calibrated-equalized-odds intervention ("cal_eq_odds" in Figure 2).
#[derive(Debug, Clone, Copy)]
pub struct CalibratedEqOdds {
    /// The cost to equalize between groups.
    pub constraint: CostConstraint,
}

impl Default for CalibratedEqOdds {
    fn default() -> Self {
        CalibratedEqOdds {
            constraint: CostConstraint::FalseNegativeRate,
        }
    }
}

/// Per-group calibration statistics measured on the validation set.
#[derive(Debug, Clone, Copy)]
struct GroupStats {
    base_rate: f64,
    /// Generalized FNR: mean of `1 − s` over positive instances.
    gfnr: f64,
    /// Generalized FPR: mean of `s` over negative instances.
    gfpr: f64,
}

impl GroupStats {
    fn measure(scores: &[f64], labels: &[f64]) -> GroupStats {
        let n = scores.len() as f64;
        let pos: f64 = labels.iter().sum();
        let neg = n - pos;
        let base_rate = pos / n;
        let gfnr = if pos > 0.0 {
            scores
                .iter()
                .zip(labels)
                // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
                .filter(|(_, &y)| y == 1.0)
                .map(|(&s, _)| 1.0 - s)
                .sum::<f64>()
                / pos
        } else {
            f64::NAN
        };
        let gfpr = if neg > 0.0 {
            scores
                .iter()
                .zip(labels)
                // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
                .filter(|(_, &y)| y == 0.0)
                .map(|(&s, _)| s)
                .sum::<f64>()
                / neg
        } else {
            f64::NAN
        };
        GroupStats {
            base_rate,
            gfnr,
            gfpr,
        }
    }

    fn cost(&self, constraint: CostConstraint) -> f64 {
        match constraint {
            CostConstraint::FalseNegativeRate => self.gfnr,
            CostConstraint::FalsePositiveRate => self.gfpr,
            CostConstraint::Weighted => self.gfnr + self.gfpr,
        }
    }

    /// Cost of the trivial predictor that outputs the base rate for every
    /// instance of the group.
    fn trivial_cost(&self, constraint: CostConstraint) -> f64 {
        match constraint {
            CostConstraint::FalseNegativeRate => 1.0 - self.base_rate,
            CostConstraint::FalsePositiveRate => self.base_rate,
            CostConstraint::Weighted => 1.0,
        }
    }
}

impl CalibratedEqOdds {
    /// Fits the intervention, returning the concrete fitted type (the trait
    /// method boxes this).
    // audit: allow(missing-guard-fit, reason = "postprocessors deliberately fit on held-out validation predictions (tagged Derived) - the one documented provenance exception, see DESIGN.md")
    pub fn fit_concrete(
        &self,
        val_scores: &[f64],
        val_labels: &[f64],
        val_privileged: &[bool],
        seed: u64,
    ) -> Result<FittedCalEqOdds> {
        validate_fit_inputs(val_scores, val_labels, val_privileged)?;

        let split = |keep: bool| -> (Vec<f64>, Vec<f64>) {
            let s: Vec<f64> = val_scores
                .iter()
                .zip(val_privileged)
                .filter(|(_, &p)| p == keep)
                .map(|(&v, _)| v)
                .collect();
            let y: Vec<f64> = val_labels
                .iter()
                .zip(val_privileged)
                .filter(|(_, &p)| p == keep)
                .map(|(&v, _)| v)
                .collect();
            (s, y)
        };
        let (sp, yp) = split(true);
        let (su, yu) = split(false);
        let stats_priv = GroupStats::measure(&sp, &yp);
        let stats_unpriv = GroupStats::measure(&su, &yu);

        let cost_p = stats_priv.cost(self.constraint);
        let cost_u = stats_unpriv.cost(self.constraint);

        // The group with the LOWER cost is degraded towards its trivial
        // predictor until costs match.
        let (degrade_privileged, self_stats, other_cost) = if cost_p <= cost_u {
            (true, stats_priv, cost_u)
        } else {
            (false, stats_unpriv, cost_p)
        };
        let self_cost = self_stats.cost(self.constraint);
        let trivial = self_stats.trivial_cost(self.constraint);
        let denom = trivial - self_cost;
        let mix_rate = if denom.abs() < 1e-12 || !denom.is_finite() {
            0.0
        } else {
            ((other_cost - self_cost) / denom).clamp(0.0, 1.0)
        };

        Ok(FittedCalEqOdds {
            degrade_privileged,
            mix_rate,
            base_rate: self_stats.base_rate,
            seed,
        })
    }
}

impl Postprocessor for CalibratedEqOdds {
    fn name(&self) -> String {
        format!("cal_eq_odds({})", self.constraint.name())
    }

    // audit: allow(missing-guard-fit, reason = "postprocessors deliberately fit on held-out validation predictions (tagged Derived) - the one documented provenance exception, see DESIGN.md")
    fn fit(
        &self,
        val_scores: &[f64],
        val_labels: &[f64],
        val_privileged: &[bool],
        seed: u64,
    ) -> Result<Box<dyn FittedPostprocessor>> {
        Ok(Box::new(self.fit_concrete(
            val_scores,
            val_labels,
            val_privileged,
            seed,
        )?))
    }
}

/// The fitted intervention: mix one group's scores with its base rate.
#[derive(Debug, Clone, Copy)]
pub struct FittedCalEqOdds {
    /// Which group is degraded.
    pub degrade_privileged: bool,
    /// Probability of replacing a score with the base rate.
    pub mix_rate: f64,
    /// Replacement value (the degraded group's validation base rate).
    pub base_rate: f64,
    seed: u64,
}

impl FittedCalEqOdds {
    pub(crate) fn unseal(v: &Value) -> Result<FittedCalEqOdds> {
        let mix_rate = sealing::req_f64(v, "mix_rate")?;
        let base_rate = sealing::req_f64(v, "base_rate")?;
        if !(0.0..=1.0).contains(&mix_rate) || !(0.0..=1.0).contains(&base_rate) {
            return Err(sealing::seal_err("cal_eq_odds rates not in [0, 1]"));
        }
        Ok(FittedCalEqOdds {
            degrade_privileged: sealing::req_bool(v, "degrade_privileged")?,
            mix_rate,
            base_rate,
            seed: sealing::req_u64(v, "seed")?,
        })
    }
}

impl FittedPostprocessor for FittedCalEqOdds {
    fn adjust(&self, scores: &[f64], privileged: &[bool]) -> Result<Vec<f64>> {
        let mut rng = component_rng(self.seed, "cal_eq_odds/adjust");
        Ok(scores
            .iter()
            .zip(privileged)
            .map(|(&s, &p)| {
                let draw: f64 = rng.random();
                let score = if p == self.degrade_privileged && draw < self.mix_rate {
                    self.base_rate
                } else {
                    s
                };
                f64::from(u8::from(score > 0.5))
            })
            .collect())
    }

    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("degrade_privileged", Value::Bool(self.degrade_privileged)),
            ("mix_rate", Value::bits(self.mix_rate)),
            ("base_rate", Value::bits(self.base_rate)),
            ("seed", Value::from_u64(self.seed)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess::test_support::biased_scores;

    fn gfnr(scores: &[f64], labels: &[f64]) -> f64 {
        GroupStats::measure(scores, labels).gfnr
    }

    #[test]
    fn mix_rate_is_valid_probability() {
        let (scores, labels, mask) = biased_scores(500, 3);
        for constraint in [
            CostConstraint::FalseNegativeRate,
            CostConstraint::FalsePositiveRate,
            CostConstraint::Weighted,
        ] {
            let fitted = CalibratedEqOdds { constraint }
                .fit(&scores, &labels, &mask, 0)
                .unwrap();
            let _ = fitted.adjust(&scores, &mask).unwrap();
        }
    }

    #[test]
    fn reduces_generalized_fnr_gap() {
        let (scores, labels, mask) = biased_scores(2000, 5);
        // Measure the pre-adjustment gFNR gap.
        let sel = |keep: bool, v: &[f64]| -> Vec<f64> {
            v.iter()
                .zip(&mask)
                .filter(|(_, &p)| p == keep)
                .map(|(&x, _)| x)
                .collect()
        };
        let gap_before = (gfnr(&sel(true, &scores), &sel(true, &labels))
            - gfnr(&sel(false, &scores), &sel(false, &labels)))
        .abs();

        // Simulate the adjusted *scores* (mixing towards base rate) to verify
        // the cost-equalization property the hard predictions inherit.
        let fitted = CalibratedEqOdds::default()
            .fit_concrete(&scores, &labels, &mask, 1)
            .unwrap();
        let mut rng = fairprep_data::rng::component_rng(1, "cal_eq_odds/adjust");
        let mixed: Vec<f64> = scores
            .iter()
            .zip(&mask)
            .map(|(&s, &p)| {
                let draw: f64 = rng.random();
                if p == fitted.degrade_privileged && draw < fitted.mix_rate {
                    fitted.base_rate
                } else {
                    s
                }
            })
            .collect();
        let gap_after = (gfnr(&sel(true, &mixed), &sel(true, &labels))
            - gfnr(&sel(false, &mixed), &sel(false, &labels)))
        .abs();
        assert!(
            gap_after < gap_before,
            "gFNR gap before {gap_before}, after {gap_after}"
        );
    }

    #[test]
    fn adjustment_is_reproducible() {
        let (scores, labels, mask) = biased_scores(300, 7);
        let fitted = CalibratedEqOdds::default()
            .fit(&scores, &labels, &mask, 9)
            .unwrap();
        let a = fitted.adjust(&scores, &mask).unwrap();
        let b = fitted.adjust(&scores, &mask).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_mix_rate_when_costs_equal() {
        // Symmetric inputs: identical score/label patterns in both groups.
        let scores = vec![0.8, 0.2, 0.8, 0.2];
        let labels = vec![1.0, 0.0, 1.0, 0.0];
        let mask = vec![true, true, false, false];
        let fitted = CalibratedEqOdds::default()
            .fit_concrete(&scores, &labels, &mask, 0)
            .unwrap();
        assert!(fitted.mix_rate.abs() < 1e-9);
        // Adjustment reduces to plain thresholding.
        assert_eq!(
            fitted.adjust(&scores, &mask).unwrap(),
            vec![1.0, 0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn name_mentions_constraint() {
        assert_eq!(CalibratedEqOdds::default().name(), "cal_eq_odds(fnr)");
        assert_eq!(
            CalibratedEqOdds {
                constraint: CostConstraint::Weighted
            }
            .name(),
            "cal_eq_odds(weighted)"
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(CalibratedEqOdds::default()
            .fit(&[0.5, 0.5], &[1.0, 0.0], &[true, true], 0)
            .is_err());
    }
}
