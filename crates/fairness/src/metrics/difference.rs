//! Group-difference ("global") fairness metrics.
//!
//! FairPrep computes "22 different global metrics that measure the effects
//! between the privileged and the unprivileged groups" (§4). The AIF360
//! sign conventions apply: differences are `unprivileged − privileged`,
//! ratios are `unprivileged / privileged`, so a disparate impact of 1.0 and
//! differences of 0.0 are the fair points.

// audit: allow-file(index-literal, reason = "group_sums/group_counts are [_; 2] arrays indexed by the bool group mask")
use std::collections::BTreeMap;

use fairprep_data::error::{Error, Result};

use crate::metrics::group::{gei_of_benefits, ratio, GroupMetrics};

/// The 22 between-group metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferenceMetrics {
    /// Selection-rate ratio `unpriv / priv` — "DI" in Figures 2–5.
    pub disparate_impact: f64,
    /// Selection-rate difference.
    pub statistical_parity_difference: f64,
    /// TPR difference (equal opportunity).
    pub equal_opportunity_difference: f64,
    /// Mean of TPR and FPR differences.
    pub average_odds_difference: f64,
    /// Mean of |TPR difference| and |FPR difference|.
    pub average_abs_odds_difference: f64,
    /// FNR difference — "FNRD" in Figure 2.
    pub false_negative_rate_difference: f64,
    /// FNR ratio.
    pub false_negative_rate_ratio: f64,
    /// FPR difference — "FPRD" in Figure 2.
    pub false_positive_rate_difference: f64,
    /// FPR ratio.
    pub false_positive_rate_ratio: f64,
    /// TNR difference.
    pub true_negative_rate_difference: f64,
    /// Error-rate difference.
    pub error_rate_difference: f64,
    /// Error-rate ratio.
    pub error_rate_ratio: f64,
    /// Accuracy difference.
    pub accuracy_difference: f64,
    /// Balanced-accuracy difference.
    pub balanced_accuracy_difference: f64,
    /// Precision (PPV) difference.
    pub precision_difference: f64,
    /// F1 difference.
    pub f1_difference: f64,
    /// Base-rate (label) difference — a dataset property.
    pub base_rate_difference: f64,
    /// Theil index (GEI α = 1) over the pooled benefit vector.
    pub theil_index: f64,
    /// GEI (α = 2) over the pooled benefit vector.
    pub generalized_entropy_index: f64,
    /// Coefficient of variation `sqrt(2 · GEI₂)`.
    pub coefficient_of_variation: f64,
    /// Between-group GEI (α = 2): each instance's benefit replaced by its
    /// group mean.
    pub between_group_generalized_entropy_index: f64,
    /// Between-group Theil index.
    pub between_group_theil_index: f64,
}

impl DifferenceMetrics {
    /// Computes the block from pooled labels/predictions plus the
    /// per-group metric blocks.
    pub fn compute(
        y_true: &[f64],
        y_pred: &[f64],
        privileged_mask: &[bool],
        privileged: &GroupMetrics,
        unprivileged: &GroupMetrics,
    ) -> Result<DifferenceMetrics> {
        if y_true.len() != y_pred.len() || y_true.len() != privileged_mask.len() {
            return Err(Error::LengthMismatch {
                expected: y_true.len(),
                actual: y_pred.len().min(privileged_mask.len()),
            });
        }
        let benefits: Vec<f64> = y_pred
            .iter()
            .zip(y_true)
            .map(|(&p, &t)| p - t + 1.0)
            .collect();

        // Between-group benefit vector: group means in place of values.
        let mut group_sums = [0.0_f64; 2];
        let mut group_counts = [0usize; 2];
        for (&b, &m) in benefits.iter().zip(privileged_mask) {
            let g = usize::from(m);
            group_sums[g] += b;
            group_counts[g] += 1;
        }
        let group_means = [
            if group_counts[0] > 0 {
                group_sums[0] / group_counts[0] as f64
            } else {
                0.0
            },
            if group_counts[1] > 0 {
                group_sums[1] / group_counts[1] as f64
            } else {
                0.0
            },
        ];
        let between: Vec<f64> = privileged_mask
            .iter()
            .map(|&m| group_means[usize::from(m)])
            .collect();

        let d = |u: f64, p: f64| u - p;
        Ok(DifferenceMetrics {
            disparate_impact: ratio(unprivileged.selection_rate, privileged.selection_rate),
            statistical_parity_difference: d(
                unprivileged.selection_rate,
                privileged.selection_rate,
            ),
            equal_opportunity_difference: d(unprivileged.tpr, privileged.tpr),
            average_odds_difference: 0.5
                * (d(unprivileged.tpr, privileged.tpr) + d(unprivileged.fpr, privileged.fpr)),
            average_abs_odds_difference: 0.5
                * (d(unprivileged.tpr, privileged.tpr).abs()
                    + d(unprivileged.fpr, privileged.fpr).abs()),
            false_negative_rate_difference: d(unprivileged.fnr, privileged.fnr),
            false_negative_rate_ratio: ratio(unprivileged.fnr, privileged.fnr),
            false_positive_rate_difference: d(unprivileged.fpr, privileged.fpr),
            false_positive_rate_ratio: ratio(unprivileged.fpr, privileged.fpr),
            true_negative_rate_difference: d(unprivileged.tnr, privileged.tnr),
            error_rate_difference: d(unprivileged.error_rate, privileged.error_rate),
            error_rate_ratio: ratio(unprivileged.error_rate, privileged.error_rate),
            accuracy_difference: d(unprivileged.accuracy, privileged.accuracy),
            balanced_accuracy_difference: d(
                unprivileged.balanced_accuracy,
                privileged.balanced_accuracy,
            ),
            precision_difference: d(unprivileged.precision, privileged.precision),
            f1_difference: d(unprivileged.f1, privileged.f1),
            base_rate_difference: d(unprivileged.base_rate, privileged.base_rate),
            theil_index: gei_of_benefits(&benefits, 1.0),
            generalized_entropy_index: gei_of_benefits(&benefits, 2.0),
            coefficient_of_variation: (2.0 * gei_of_benefits(&benefits, 2.0)).sqrt(),
            between_group_generalized_entropy_index: gei_of_benefits(&between, 2.0),
            between_group_theil_index: gei_of_benefits(&between, 1.0),
        })
    }

    /// All 22 metrics as a name → value map (stable iteration order).
    #[must_use]
    pub fn to_map(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("disparate_impact".into(), self.disparate_impact);
        m.insert(
            "statistical_parity_difference".into(),
            self.statistical_parity_difference,
        );
        m.insert(
            "equal_opportunity_difference".into(),
            self.equal_opportunity_difference,
        );
        m.insert(
            "average_odds_difference".into(),
            self.average_odds_difference,
        );
        m.insert(
            "average_abs_odds_difference".into(),
            self.average_abs_odds_difference,
        );
        m.insert(
            "false_negative_rate_difference".into(),
            self.false_negative_rate_difference,
        );
        m.insert(
            "false_negative_rate_ratio".into(),
            self.false_negative_rate_ratio,
        );
        m.insert(
            "false_positive_rate_difference".into(),
            self.false_positive_rate_difference,
        );
        m.insert(
            "false_positive_rate_ratio".into(),
            self.false_positive_rate_ratio,
        );
        m.insert(
            "true_negative_rate_difference".into(),
            self.true_negative_rate_difference,
        );
        m.insert("error_rate_difference".into(), self.error_rate_difference);
        m.insert("error_rate_ratio".into(), self.error_rate_ratio);
        m.insert("accuracy_difference".into(), self.accuracy_difference);
        m.insert(
            "balanced_accuracy_difference".into(),
            self.balanced_accuracy_difference,
        );
        m.insert("precision_difference".into(), self.precision_difference);
        m.insert("f1_difference".into(), self.f1_difference);
        m.insert("base_rate_difference".into(), self.base_rate_difference);
        m.insert("theil_index".into(), self.theil_index);
        m.insert(
            "generalized_entropy_index".into(),
            self.generalized_entropy_index,
        );
        m.insert(
            "coefficient_of_variation".into(),
            self.coefficient_of_variation,
        );
        m.insert(
            "between_group_generalized_entropy_index".into(),
            self.between_group_generalized_entropy_index,
        );
        m.insert(
            "between_group_theil_index".into(),
            self.between_group_theil_index,
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::group::select_by_mask;

    /// Biased setup: privileged group (first 4) gets selected at 75%,
    /// unprivileged (last 4) at 25%.
    fn setup() -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        let y = vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let p = vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let mask = vec![true, true, true, true, false, false, false, false];
        (y, p, mask)
    }

    fn compute(y: &[f64], p: &[f64], mask: &[bool]) -> DifferenceMetrics {
        let yp = select_by_mask(y, mask, true);
        let pp = select_by_mask(p, mask, true);
        let yu = select_by_mask(y, mask, false);
        let pu = select_by_mask(p, mask, false);
        let gp = GroupMetrics::compute(&yp, &pp, None).unwrap();
        let gu = GroupMetrics::compute(&yu, &pu, None).unwrap();
        DifferenceMetrics::compute(y, p, mask, &gp, &gu).unwrap()
    }

    #[test]
    fn disparate_impact_and_spd() {
        let (y, p, mask) = setup();
        let d = compute(&y, &p, &mask);
        assert!((d.disparate_impact - (0.25 / 0.75)).abs() < 1e-12);
        assert!((d.statistical_parity_difference - (0.25 - 0.75)).abs() < 1e-12);
    }

    #[test]
    fn odds_differences() {
        let (y, p, mask) = setup();
        let d = compute(&y, &p, &mask);
        // Priv: TPR = 1.0, FPR = 0.5. Unpriv: TPR = 0.5, FPR = 0.0.
        assert!((d.equal_opportunity_difference - (0.5 - 1.0)).abs() < 1e-12);
        assert!((d.false_positive_rate_difference - (0.0 - 0.5)).abs() < 1e-12);
        assert!((d.average_odds_difference - (-0.5)).abs() < 1e-12);
        assert!((d.average_abs_odds_difference - 0.5).abs() < 1e-12);
        assert!((d.false_negative_rate_difference - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfectly_fair_predictions_have_neutral_values() {
        // Same behaviour for both groups: predict exactly the label.
        let y = vec![1.0, 0.0, 1.0, 0.0];
        let p = y.clone();
        let mask = vec![true, true, false, false];
        let d = compute(&y, &p, &mask);
        assert!((d.disparate_impact - 1.0).abs() < 1e-12);
        assert!(d.statistical_parity_difference.abs() < 1e-12);
        assert!(d.equal_opportunity_difference.abs() < 1e-12);
        assert!(d.theil_index.abs() < 1e-12);
        assert!(d.between_group_theil_index.abs() < 1e-12);
    }

    #[test]
    fn between_group_index_ignores_within_group_variation() {
        // Both groups have the same mean benefit, but high internal spread:
        // between-group inequality must be ~0, overall must be > 0.
        let y = vec![1.0, 0.0, 1.0, 0.0];
        let p = vec![0.0, 1.0, 0.0, 1.0]; // benefits: 0, 2, 0, 2
        let mask = vec![true, true, false, false];
        let d = compute(&y, &p, &mask);
        assert!(d.generalized_entropy_index > 0.0);
        assert!(d.between_group_generalized_entropy_index.abs() < 1e-12);
    }

    #[test]
    fn map_has_22_entries() {
        let (y, p, mask) = setup();
        assert_eq!(compute(&y, &p, &mask).to_map().len(), 22);
    }

    #[test]
    fn length_mismatch_rejected() {
        let g = GroupMetrics::compute(&[1.0, 0.0], &[1.0, 0.0], None).unwrap();
        assert!(DifferenceMetrics::compute(&[1.0], &[1.0, 0.0], &[true], &g, &g).is_err());
    }
}
