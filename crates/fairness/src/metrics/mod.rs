//! Fairness metrics: per-group blocks, between-group differences, and the
//! combined per-run report.

pub mod dataset;
pub mod difference;
pub mod group;
pub mod report;

pub use dataset::{consistency, decision_rates, DatasetMetrics, DecisionRates};
pub use difference::DifferenceMetrics;
pub use group::{coefficient_of_variation, generalized_entropy_index, theil_index, GroupMetrics};
pub use report::{MetricsReport, ReportInputs};
