//! Dataset-level fairness metrics — properties of the *labels*, computed
//! before any model is trained (AIF360's `BinaryLabelDatasetMetric`
//! equivalent).
//!
//! These audit the raw data the way Ann explores her dataset in §1.1:
//! group base rates, label disparate impact, statistical parity of the
//! labels, and the kNN-based *consistency* measure of Zemel et al. (how
//! similar the labels of similar individuals are).

use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_ml::matrix::Matrix;

/// Label-level fairness metrics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMetrics {
    /// Number of instances.
    pub n_instances: usize,
    /// Number of privileged instances.
    pub n_privileged: usize,
    /// Number of unprivileged instances.
    pub n_unprivileged: usize,
    /// Overall favorable-label rate.
    pub base_rate: f64,
    /// Favorable rate within the privileged group.
    pub privileged_base_rate: f64,
    /// Favorable rate within the unprivileged group.
    pub unprivileged_base_rate: f64,
    /// `unprivileged_base_rate / privileged_base_rate` — the label-level
    /// disparate impact (the four-fifths-rule quantity).
    pub disparate_impact: f64,
    /// `unprivileged_base_rate − privileged_base_rate`.
    pub statistical_parity_difference: f64,
    /// Weighted variants of the group rates (instance weights applied) —
    /// these reveal what reweighing-style interventions changed.
    pub weighted_privileged_base_rate: f64,
    /// Weighted unprivileged favorable rate.
    pub weighted_unprivileged_base_rate: f64,
}

impl DatasetMetrics {
    /// Computes the metric block from a dataset.
    pub fn compute(dataset: &BinaryLabelDataset) -> Result<DatasetMetrics> {
        let n = dataset.n_rows();
        if n == 0 {
            return Err(Error::EmptyData("dataset metrics input".to_string()));
        }
        let labels = dataset.labels();
        let mask = dataset.privileged_mask();
        let weights = dataset.instance_weights();

        let mut counts = [0usize; 2];
        let mut pos = [0.0_f64; 2];
        let mut w_total = [0.0_f64; 2];
        let mut w_pos = [0.0_f64; 2];
        for i in 0..n {
            let g = usize::from(mask[i]);
            counts[g] += 1;
            pos[g] += labels[i];
            w_total[g] += weights[i];
            w_pos[g] += weights[i] * labels[i];
        }
        let rate = |g: usize| pos[g] / counts[g] as f64;
        let w_rate = |g: usize| {
            if w_total[g] > 0.0 {
                w_pos[g] / w_total[g]
            } else {
                f64::NAN
            }
        };
        Ok(DatasetMetrics {
            n_instances: n,
            // audit: allow(index-literal, reason = "counts is a [usize; 2] indexed by bool casts")
            n_privileged: counts[1],
            // audit: allow(index-literal, reason = "counts is a [usize; 2] indexed by bool casts")
            n_unprivileged: counts[0],
            base_rate: labels.iter().sum::<f64>() / n as f64,
            privileged_base_rate: rate(1),
            unprivileged_base_rate: rate(0),
            disparate_impact: rate(0) / rate(1),
            statistical_parity_difference: rate(0) - rate(1),
            weighted_privileged_base_rate: w_rate(1),
            weighted_unprivileged_base_rate: w_rate(0),
        })
    }
}

/// Positive-decision rates of a prediction (or label) vector, overall and
/// per protected group — the minimal inputs for statistical-parity-style
/// drift checks on model outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRates {
    /// Overall positive rate.
    pub overall: f64,
    /// Positive rate within the privileged group (`NaN` when empty).
    pub privileged: f64,
    /// Positive rate within the unprivileged group (`NaN` when empty).
    pub unprivileged: f64,
}

impl DecisionRates {
    /// `unprivileged − privileged` — statistical parity difference of the
    /// decisions.
    #[must_use]
    pub fn statistical_parity_difference(&self) -> f64 {
        self.unprivileged - self.privileged
    }
}

/// Computes [`DecisionRates`] from 0/1 decisions and the privileged-group
/// mask. Values are treated as positive when `>= 0.5`, matching the label
/// encoding used across the workspace.
pub fn decision_rates(decisions: &[f64], privileged_mask: &[bool]) -> Result<DecisionRates> {
    if decisions.len() != privileged_mask.len() {
        return Err(Error::LengthMismatch {
            expected: decisions.len(),
            actual: privileged_mask.len(),
        });
    }
    if decisions.is_empty() {
        return Err(Error::EmptyData("decision rates input".to_string()));
    }
    let mut counts = [0usize; 2];
    let mut pos = [0usize; 2];
    for (d, &p) in decisions.iter().zip(privileged_mask) {
        let g = usize::from(p);
        counts[g] += 1;
        pos[g] += usize::from(*d >= 0.5);
    }
    let rate = |g: usize| {
        if counts[g] > 0 {
            pos[g] as f64 / counts[g] as f64
        } else {
            f64::NAN
        }
    };
    Ok(DecisionRates {
        overall: pos.iter().sum::<usize>() as f64 / decisions.len() as f64,
        privileged: rate(1),
        unprivileged: rate(0),
    })
}

/// Consistency [Zemel et al., ICML'13]: `1 − mean_i |y_i − mean_{j∈kNN(i)} y_j|`
/// over the featurized dataset — 1.0 when similar individuals always share
/// a label. `x` must be the featurized (complete, scaled) view of the rows
/// whose `labels` are given.
pub fn consistency(x: &Matrix, labels: &[f64], k: usize) -> Result<f64> {
    let n = x.n_rows();
    if n != labels.len() {
        return Err(Error::LengthMismatch {
            expected: n,
            actual: labels.len(),
        });
    }
    if k == 0 || k >= n {
        return Err(Error::InvalidParameter {
            name: "k",
            message: format!("k must be in [1, {}), got {k}", n),
        });
    }
    let mut total_dev = 0.0;
    let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        let xi = x.row(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let d: f64 = xi.iter().zip(x.row(j)).map(|(a, b)| (a - b).powi(2)).sum();
            dists.push((d, j));
        }
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let neighbor_mean: f64 = dists[..k].iter().map(|&(_, j)| labels[j]).sum::<f64>() / k as f64;
        total_dev += (labels[i] - neighbor_mean).abs();
    }
    Ok(1.0 - total_dev / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairprep_data::column::{Column, ColumnKind};
    use fairprep_data::frame::DataFrame;
    use fairprep_data::schema::{ProtectedAttribute, Schema};

    fn biased(n: usize) -> BinaryLabelDataset {
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(|i| i as f64)))
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })),
            )
            .unwrap()
            .with_column(
                "y",
                // Privileged ("a", even i): 75% positive; unprivileged: 25%.
                Column::from_strs((0..n).map(|i| {
                    let positive = if i % 2 == 0 { i % 8 != 0 } else { i % 8 == 1 };
                    if positive {
                        "p"
                    } else {
                        "n"
                    }
                })),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap()
    }

    #[test]
    fn base_rates_and_disparity() {
        let ds = biased(80);
        let m = DatasetMetrics::compute(&ds).unwrap();
        assert_eq!(m.n_instances, 80);
        assert_eq!(m.n_privileged + m.n_unprivileged, 80);
        assert!(m.privileged_base_rate > m.unprivileged_base_rate);
        assert!(m.disparate_impact < 1.0);
        assert!(m.statistical_parity_difference < 0.0);
        assert!(
            (m.disparate_impact - m.unprivileged_base_rate / m.privileged_base_rate).abs() < 1e-12
        );
    }

    #[test]
    fn weighted_rates_reflect_reweighing() {
        use crate::preprocess::{Preprocessor, Reweighing};
        let ds = biased(80);
        let reweighed = Reweighing
            .fit(&ds, 0)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let m = DatasetMetrics::compute(&reweighed).unwrap();
        // Unweighted rates unchanged; weighted rates equalized.
        assert!(m.privileged_base_rate > m.unprivileged_base_rate);
        assert!((m.weighted_privileged_base_rate - m.weighted_unprivileged_base_rate).abs() < 1e-9);
    }

    #[test]
    fn consistency_is_one_for_locally_constant_labels() {
        // Two tight clusters with uniform labels.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![if i < 10 { 0.0 } else { 10.0 } + (i % 10) as f64 * 0.01])
            .collect();
        let labels: Vec<f64> = (0..20).map(|i| f64::from(u8::from(i >= 10))).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let c = consistency(&x, &labels, 3).unwrap();
        assert!((c - 1.0).abs() < 1e-12, "consistency {c}");
    }

    #[test]
    fn consistency_drops_for_label_noise() {
        // Same cluster geometry, alternating labels within each cluster.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![if i < 10 { 0.0 } else { 10.0 } + (i % 10) as f64 * 0.01])
            .collect();
        let labels: Vec<f64> = (0..20).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let c = consistency(&x, &labels, 3).unwrap();
        assert!(c < 0.8, "consistency {c}");
    }

    #[test]
    fn consistency_validates_inputs() {
        let x = Matrix::zeros(5, 1);
        let y = vec![0.0; 5];
        assert!(consistency(&x, &y, 0).is_err());
        assert!(consistency(&x, &y, 5).is_err());
        assert!(consistency(&x, &y[..3], 2).is_err());
    }

    #[test]
    fn decision_rates_split_by_group() {
        let decisions = [1.0, 0.0, 1.0, 0.0, 1.0, 1.0];
        let mask = [true, true, true, false, false, false];
        let r = decision_rates(&decisions, &mask).unwrap();
        assert!((r.overall - 4.0 / 6.0).abs() < 1e-12);
        assert!((r.privileged - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.unprivileged - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.statistical_parity_difference().abs() < 1e-12);
        // Single-group input leaves the absent group's rate NaN.
        let solo = decision_rates(&[1.0, 0.0], &[true, true]).unwrap();
        assert!(solo.unprivileged.is_nan());
        assert!((solo.privileged - 0.5).abs() < 1e-12);
        // Length mismatch and empty input are rejected.
        assert!(decision_rates(&[1.0], &[true, false]).is_err());
        assert!(decision_rates(&[], &[]).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        // Constructing an empty BinaryLabelDataset is impossible (group
        // checks), so only the consistency path needs the n=0 guard — the
        // DatasetMetrics guard is defensive.
        let ds = biased(8);
        assert!(DatasetMetrics::compute(&ds).is_ok());
    }
}
