//! Per-group classification metrics.
//!
//! FairPrep computes "25 different metrics for the overall train and test
//! set, as well as separately for the privileged and unprivileged groups"
//! (§4). [`GroupMetrics`] is that block of 25, computed for one population
//! (overall, privileged-only, or unprivileged-only).

use std::collections::BTreeMap;

use fairprep_data::error::{Error, Result};
use fairprep_ml::eval::{log_loss, roc_auc, safe_div, ConfusionMatrix};

/// The 25 per-population metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMetrics {
    /// Number of instances in the population.
    pub n_instances: usize,
    /// Number of actually-positive instances.
    pub n_positives: usize,
    /// Number of actually-negative instances.
    pub n_negatives: usize,
    /// Fraction of actually-positive instances.
    pub base_rate: f64,
    /// True positives.
    pub tp: f64,
    /// False positives.
    pub fp: f64,
    /// True negatives.
    pub tn: f64,
    /// False negatives.
    pub fn_: f64,
    /// True positive rate (recall).
    pub tpr: f64,
    /// False positive rate.
    pub fpr: f64,
    /// True negative rate.
    pub tnr: f64,
    /// False negative rate.
    pub fnr: f64,
    /// Positive predictive value (precision).
    pub precision: f64,
    /// Negative predictive value.
    pub npv: f64,
    /// False discovery rate.
    pub fdr: f64,
    /// False omission rate.
    pub for_: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// Error rate.
    pub error_rate: f64,
    /// Balanced accuracy.
    pub balanced_accuracy: f64,
    /// F1 score.
    pub f1: f64,
    /// Fraction predicted positive.
    pub selection_rate: f64,
    /// Area under the ROC curve (`NaN` if scores were not provided or one
    /// class is absent).
    pub auc: f64,
    /// Log loss (`NaN` if scores were not provided).
    pub log_loss: f64,
    /// Mean predicted score (`NaN` if scores were not provided).
    pub mean_score: f64,
    /// Within-population generalized entropy index (α = 2) of the benefit
    /// vector `b_i = ŷ_i − y_i + 1` [Speicher et al.].
    pub generalized_entropy_index: f64,
}

impl GroupMetrics {
    /// Computes the metric block from labels, hard predictions, and
    /// (optionally) probabilistic scores.
    pub fn compute(y_true: &[f64], y_pred: &[f64], scores: Option<&[f64]>) -> Result<GroupMetrics> {
        if y_true.is_empty() {
            return Err(Error::EmptyData("metrics population".to_string()));
        }
        let cm = ConfusionMatrix::compute(y_true, y_pred, None)?;
        let (auc, ll, mean_score) = match scores {
            Some(s) => {
                if s.len() != y_true.len() {
                    return Err(Error::LengthMismatch {
                        expected: y_true.len(),
                        actual: s.len(),
                    });
                }
                (
                    roc_auc(y_true, s)?,
                    log_loss(y_true, s)?,
                    s.iter().sum::<f64>() / s.len() as f64,
                )
            }
            None => (f64::NAN, f64::NAN, f64::NAN),
        };
        // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
        let n_positives = y_true.iter().filter(|&&y| y == 1.0).count();
        Ok(GroupMetrics {
            n_instances: y_true.len(),
            n_positives,
            n_negatives: y_true.len() - n_positives,
            base_rate: cm.base_rate(),
            tp: cm.tp,
            fp: cm.fp,
            tn: cm.tn,
            fn_: cm.fn_,
            tpr: cm.tpr(),
            fpr: cm.fpr(),
            tnr: cm.tnr(),
            fnr: cm.fnr(),
            precision: cm.precision(),
            npv: cm.npv(),
            fdr: cm.fdr(),
            for_: cm.for_(),
            accuracy: cm.accuracy(),
            error_rate: cm.error_rate(),
            balanced_accuracy: cm.balanced_accuracy(),
            f1: cm.f1(),
            selection_rate: cm.selection_rate(),
            auc,
            log_loss: ll,
            mean_score,
            generalized_entropy_index: generalized_entropy_index(y_true, y_pred, 2.0),
        })
    }

    /// All 25 metrics as a name → value map (stable iteration order),
    /// which is what the experiment output files serialize.
    #[must_use]
    pub fn to_map(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        #[allow(clippy::cast_precision_loss)]
        {
            m.insert("n_instances".into(), self.n_instances as f64);
            m.insert("n_positives".into(), self.n_positives as f64);
            m.insert("n_negatives".into(), self.n_negatives as f64);
        }
        m.insert("base_rate".into(), self.base_rate);
        m.insert("tp".into(), self.tp);
        m.insert("fp".into(), self.fp);
        m.insert("tn".into(), self.tn);
        m.insert("fn".into(), self.fn_);
        m.insert("tpr".into(), self.tpr);
        m.insert("fpr".into(), self.fpr);
        m.insert("tnr".into(), self.tnr);
        m.insert("fnr".into(), self.fnr);
        m.insert("precision".into(), self.precision);
        m.insert("npv".into(), self.npv);
        m.insert("fdr".into(), self.fdr);
        m.insert("for".into(), self.for_);
        m.insert("accuracy".into(), self.accuracy);
        m.insert("error_rate".into(), self.error_rate);
        m.insert("balanced_accuracy".into(), self.balanced_accuracy);
        m.insert("f1".into(), self.f1);
        m.insert("selection_rate".into(), self.selection_rate);
        m.insert("auc".into(), self.auc);
        m.insert("log_loss".into(), self.log_loss);
        m.insert("mean_score".into(), self.mean_score);
        m.insert(
            "generalized_entropy_index".into(),
            self.generalized_entropy_index,
        );
        m
    }
}

/// Generalized entropy index of the benefit vector `b_i = ŷ_i − y_i + 1`
/// [Speicher et al., KDD'18]. `alpha = 1` yields the Theil index.
#[must_use]
pub fn generalized_entropy_index(y_true: &[f64], y_pred: &[f64], alpha: f64) -> f64 {
    let n = y_true.len();
    if n == 0 {
        return f64::NAN;
    }
    let benefits: Vec<f64> = y_pred
        .iter()
        .zip(y_true)
        .map(|(&p, &t)| p - t + 1.0)
        .collect();
    gei_of_benefits(&benefits, alpha)
}

/// GEI over an arbitrary benefit vector.
#[must_use]
pub fn gei_of_benefits(benefits: &[f64], alpha: f64) -> f64 {
    let n = benefits.len() as f64;
    if benefits.is_empty() {
        return f64::NAN;
    }
    let mu = benefits.iter().sum::<f64>() / n;
    // audit: allow(float-eq, reason = "a zero mean benefit is the exact degenerate case where the index is undefined")
    if mu == 0.0 {
        return f64::NAN;
    }
    if (alpha - 1.0).abs() < 1e-12 {
        // Theil index.
        benefits
            .iter()
            .map(|&b| {
                let r = b / mu;
                if r > 0.0 {
                    r * r.ln()
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n
    } else if alpha.abs() < 1e-12 {
        // Mean log deviation.
        -benefits
            .iter()
            .map(|&b| {
                let r = b / mu;
                if r > 0.0 {
                    r.ln()
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n
    } else if (alpha - 2.0).abs() < 1e-12 {
        // α = 2 (the common case, half the squared coefficient of
        // variation): square with a plain multiply. `powf(x, 2.0)` may
        // lower to either a libm call or `x * x` depending on the
        // optimization level, and the run-manifest metric digests require
        // output that is bit-stable across build profiles.
        let s: f64 = benefits
            .iter()
            .map(|&b| {
                let r = b / mu;
                r * r - 1.0
            })
            .sum();
        s / (n * 2.0)
    } else {
        let s: f64 = benefits.iter().map(|&b| (b / mu).powf(alpha) - 1.0).sum();
        s / (n * alpha * (alpha - 1.0))
    }
}

/// Theil index (GEI with α = 1) of the benefit vector.
#[must_use]
pub fn theil_index(y_true: &[f64], y_pred: &[f64]) -> f64 {
    generalized_entropy_index(y_true, y_pred, 1.0)
}

/// Coefficient of variation: `sqrt(2 * GEI(α = 2))`.
#[must_use]
pub fn coefficient_of_variation(y_true: &[f64], y_pred: &[f64]) -> f64 {
    (2.0 * generalized_entropy_index(y_true, y_pred, 2.0)).sqrt()
}

/// Helper used by tests and callers: select the entries of `values` where
/// `mask[i] == keep`.
#[must_use]
pub fn select_by_mask(values: &[f64], mask: &[bool], keep: bool) -> Vec<f64> {
    values
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m == keep)
        .map(|(&v, _)| v)
        .collect()
}

/// Division helper re-exported for difference metrics.
pub(crate) fn ratio(unpriv: f64, priv_: f64) -> f64 {
    safe_div(unpriv, priv_)
}

#[cfg(test)]
mod tests {
    use super::*;

    const Y: [f64; 10] = [1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
    const P: [f64; 10] = [1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];

    #[test]
    fn block_is_consistent_with_confusion_matrix() {
        let g = GroupMetrics::compute(&Y, &P, None).unwrap();
        assert_eq!(g.n_instances, 10);
        assert_eq!(g.n_positives, 5);
        assert_eq!(g.n_negatives, 5);
        assert!((g.accuracy - 0.7).abs() < 1e-12);
        assert!((g.tpr - 0.6).abs() < 1e-12);
        assert!((g.fnr - 0.4).abs() < 1e-12);
        assert!((g.selection_rate - 0.4).abs() < 1e-12);
        assert!(g.auc.is_nan()); // no scores supplied
    }

    #[test]
    fn score_based_metrics_present_when_scores_given() {
        let scores = [0.9, 0.8, 0.7, 0.4, 0.3, 0.6, 0.2, 0.2, 0.1, 0.1];
        let g = GroupMetrics::compute(&Y, &P, Some(&scores)).unwrap();
        assert!(g.auc > 0.9);
        assert!(g.log_loss.is_finite());
        assert!((g.mean_score - scores.iter().sum::<f64>() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn map_has_25_entries() {
        let g = GroupMetrics::compute(&Y, &P, None).unwrap();
        assert_eq!(g.to_map().len(), 25);
    }

    #[test]
    fn empty_population_is_error() {
        assert!(GroupMetrics::compute(&[], &[], None).is_err());
    }

    #[test]
    fn gei_zero_for_uniform_benefits() {
        // Perfect predictions → all benefits = 1 → zero inequality.
        let y = [1.0, 0.0, 1.0, 0.0];
        assert!(generalized_entropy_index(&y, &y, 2.0).abs() < 1e-12);
        assert!(theil_index(&y, &y).abs() < 1e-12);
    }

    #[test]
    fn gei_positive_for_unequal_benefits() {
        let y = [1.0, 1.0, 0.0, 0.0];
        let p = [1.0, 0.0, 1.0, 0.0]; // benefits: 1, 0, 2, 1
        assert!(generalized_entropy_index(&y, &p, 2.0) > 0.0);
        assert!(theil_index(&y, &p) > 0.0);
        assert!(coefficient_of_variation(&y, &p) > 0.0);
    }

    #[test]
    fn gei_alpha_family_is_consistent() {
        let benefits = [0.5, 1.0, 1.5, 2.0];
        let g0 = gei_of_benefits(&benefits, 0.0);
        let g1 = gei_of_benefits(&benefits, 1.0);
        let g2 = gei_of_benefits(&benefits, 2.0);
        assert!(g0 > 0.0 && g1 > 0.0 && g2 > 0.0);
    }

    #[test]
    fn select_by_mask_splits() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let m = [true, false, true, false];
        assert_eq!(select_by_mask(&v, &m, true), vec![1.0, 3.0]);
        assert_eq!(select_by_mask(&v, &m, false), vec![2.0, 4.0]);
    }
}
