//! The combined metrics report an experiment emits for each evaluated split.
//!
//! "Every experiment writes an output file with these metrics by default"
//! (§4). A [`MetricsReport`] is one such block: the 25 per-population
//! metrics for the overall population and for each protected group, plus
//! the 22 between-group metrics — and, when the lifecycle tracks record
//! completeness (§5.3), separate accuracy blocks for originally-complete
//! and originally-incomplete records.

use std::collections::BTreeMap;

use fairprep_data::error::{Error, Result};

use crate::metrics::difference::DifferenceMetrics;
use crate::metrics::group::{select_by_mask, GroupMetrics};

/// Full metric block for one evaluated split.
///
/// # Examples
///
/// ```
/// use fairprep_fairness::metrics::{MetricsReport, ReportInputs};
///
/// let report = MetricsReport::compute(ReportInputs {
///     y_true: &[1.0, 0.0, 1.0, 0.0],
///     y_pred: &[1.0, 0.0, 0.0, 0.0],
///     scores: None,
///     privileged_mask: &[true, true, false, false],
///     incomplete_mask: None,
/// }).unwrap();
/// assert_eq!(report.overall.n_instances, 4);
/// assert!((report.overall.accuracy - 0.75).abs() < 1e-12);
/// assert_eq!(report.to_map().len(), 97); // 3 x 25 per-group + 22 differences
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Metrics over all instances.
    pub overall: GroupMetrics,
    /// Metrics over the privileged group.
    pub privileged: GroupMetrics,
    /// Metrics over the unprivileged group.
    pub unprivileged: GroupMetrics,
    /// The 22 between-group metrics.
    pub differences: DifferenceMetrics,
    /// Metrics restricted to originally-complete records, when the
    /// lifecycle tracked completeness.
    pub complete_records: Option<GroupMetrics>,
    /// Metrics restricted to originally-incomplete (imputed) records.
    pub incomplete_records: Option<GroupMetrics>,
}

/// Inputs for building a [`MetricsReport`].
#[derive(Debug, Clone, Copy)]
pub struct ReportInputs<'a> {
    /// Ground-truth binary labels.
    pub y_true: &'a [f64],
    /// Hard predictions.
    pub y_pred: &'a [f64],
    /// Probabilistic scores (optional).
    pub scores: Option<&'a [f64]>,
    /// Privileged-group mask.
    pub privileged_mask: &'a [bool],
    /// `true` where the record originally had missing values (optional).
    pub incomplete_mask: Option<&'a [bool]>,
}

impl MetricsReport {
    /// Computes the full report.
    pub fn compute(inputs: ReportInputs<'_>) -> Result<MetricsReport> {
        let ReportInputs {
            y_true,
            y_pred,
            scores,
            privileged_mask,
            incomplete_mask,
        } = inputs;
        if y_true.len() != privileged_mask.len() {
            return Err(Error::LengthMismatch {
                expected: y_true.len(),
                actual: privileged_mask.len(),
            });
        }
        let overall = GroupMetrics::compute(y_true, y_pred, scores)?;

        let split = |keep: bool| -> Result<GroupMetrics> {
            let y = select_by_mask(y_true, privileged_mask, keep);
            let p = select_by_mask(y_pred, privileged_mask, keep);
            let s = scores.map(|s| select_by_mask(s, privileged_mask, keep));
            GroupMetrics::compute(&y, &p, s.as_deref())
        };
        let privileged = split(true)?;
        let unprivileged = split(false)?;
        let differences = DifferenceMetrics::compute(
            y_true,
            y_pred,
            privileged_mask,
            &privileged,
            &unprivileged,
        )?;

        let (complete_records, incomplete_records) = match incomplete_mask {
            Some(mask) => {
                if mask.len() != y_true.len() {
                    return Err(Error::LengthMismatch {
                        expected: y_true.len(),
                        actual: mask.len(),
                    });
                }
                let by = |keep_incomplete: bool| -> Option<GroupMetrics> {
                    let y = select_by_mask(y_true, mask, keep_incomplete);
                    if y.is_empty() {
                        return None;
                    }
                    let p = select_by_mask(y_pred, mask, keep_incomplete);
                    let s = scores.map(|s| select_by_mask(s, mask, keep_incomplete));
                    GroupMetrics::compute(&y, &p, s.as_deref()).ok()
                };
                (by(false), by(true))
            }
            None => (None, None),
        };

        Ok(MetricsReport {
            overall,
            privileged,
            unprivileged,
            differences,
            complete_records,
            incomplete_records,
        })
    }

    /// Flattens the report into `prefix_metric → value` pairs — the format
    /// of the per-run output file.
    #[must_use]
    pub fn to_map(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        type Block<'a> = Option<&'a GroupMetrics>;
        let blocks: [(&str, Block<'_>); 5] = [
            ("overall", Some(&self.overall)),
            ("privileged", Some(&self.privileged)),
            ("unprivileged", Some(&self.unprivileged)),
            ("complete_records", self.complete_records.as_ref()),
            ("incomplete_records", self.incomplete_records.as_ref()),
        ];
        for (prefix, block) in blocks {
            if let Some(block) = block {
                for (k, v) in block.to_map() {
                    out.insert(format!("{prefix}_{k}"), v);
                }
            }
        }
        for (k, v) in self.differences.to_map() {
            out.insert(k, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestInputs = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<bool>, Vec<bool>);

    fn inputs() -> TestInputs {
        let y = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let p = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let s = vec![0.9, 0.2, 0.8, 0.6, 0.4, 0.1];
        let mask = vec![true, true, true, false, false, false];
        let inc = vec![false, false, true, false, true, true];
        (y, p, s, mask, inc)
    }

    #[test]
    fn full_report_structure() {
        let (y, p, s, mask, inc) = inputs();
        let r = MetricsReport::compute(ReportInputs {
            y_true: &y,
            y_pred: &p,
            scores: Some(&s),
            privileged_mask: &mask,
            incomplete_mask: Some(&inc),
        })
        .unwrap();
        assert_eq!(r.overall.n_instances, 6);
        assert_eq!(r.privileged.n_instances, 3);
        assert_eq!(r.unprivileged.n_instances, 3);
        assert!(r.complete_records.is_some());
        assert!(r.incomplete_records.is_some());
        assert_eq!(r.complete_records.as_ref().unwrap().n_instances, 3);
        assert_eq!(r.incomplete_records.as_ref().unwrap().n_instances, 3);
    }

    #[test]
    fn flattened_map_has_expected_size() {
        let (y, p, s, mask, inc) = inputs();
        let r = MetricsReport::compute(ReportInputs {
            y_true: &y,
            y_pred: &p,
            scores: Some(&s),
            privileged_mask: &mask,
            incomplete_mask: Some(&inc),
        })
        .unwrap();
        // 5 populations × 25 + 22 differences = 147.
        assert_eq!(r.to_map().len(), 147);
        // Without completeness tracking: 3 × 25 + 22 = 97.
        let r2 = MetricsReport::compute(ReportInputs {
            y_true: &y,
            y_pred: &p,
            scores: Some(&s),
            privileged_mask: &mask,
            incomplete_mask: None,
        })
        .unwrap();
        assert_eq!(r2.to_map().len(), 97);
    }

    #[test]
    fn all_complete_yields_no_incomplete_block() {
        let (y, p, s, mask, _) = inputs();
        let all_complete = vec![false; 6];
        let r = MetricsReport::compute(ReportInputs {
            y_true: &y,
            y_pred: &p,
            scores: Some(&s),
            privileged_mask: &mask,
            incomplete_mask: Some(&all_complete),
        })
        .unwrap();
        assert!(r.complete_records.is_some());
        assert!(r.incomplete_records.is_none());
    }

    #[test]
    fn group_blocks_match_manual_selection() {
        let (y, p, _, mask, _) = inputs();
        let r = MetricsReport::compute(ReportInputs {
            y_true: &y,
            y_pred: &p,
            scores: None,
            privileged_mask: &mask,
            incomplete_mask: None,
        })
        .unwrap();
        // Privileged: y = [1,0,1], p = [1,0,1] → perfect.
        assert!((r.privileged.accuracy - 1.0).abs() < 1e-12);
        // Unprivileged: y = [0,1,0], p = [1,0,0] → 1/3 correct.
        assert!((r.unprivileged.accuracy - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.differences.accuracy_difference - (1.0 / 3.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn mask_length_mismatch_rejected() {
        let (y, p, _, _, _) = inputs();
        assert!(MetricsReport::compute(ReportInputs {
            y_true: &y,
            y_pred: &p,
            scores: None,
            privileged_mask: &[true],
            incomplete_mask: None,
        })
        .is_err());
    }
}
