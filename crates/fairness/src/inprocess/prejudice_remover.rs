//! Prejudice-remover-style regularized logistic regression — an extension
//! intervention (paper future work, §7).
//!
//! Kamishima et al.'s prejudice remover penalizes the mutual information
//! between predictions and the protected attribute. This implementation
//! uses the closely-related (and computationally simpler) *covariance
//! penalty* of Zafar et al.: full-batch gradient descent on
//!
//! `L = weighted log loss + η · (mean(ŷ | unprivileged) − mean(ŷ | privileged))²`
//!
//! which directly drives the statistical-parity gap of the scores to zero
//! as η grows.

use fairprep_data::error::{Error, Result};
use fairprep_ml::matrix::{dot, sigmoid, Matrix};
use fairprep_ml::model::logistic::FittedLogisticRegression;
use fairprep_ml::model::FittedClassifier;

use crate::inprocess::InProcessor;

/// Fairness-regularized logistic regression.
#[derive(Debug, Clone, Copy)]
pub struct PrejudiceRemover {
    /// Fairness-penalty strength η.
    pub eta: f64,
    /// Full-batch gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub alpha: f64,
}

impl Default for PrejudiceRemover {
    fn default() -> Self {
        PrejudiceRemover {
            eta: 1.0,
            iterations: 300,
            learning_rate: 0.5,
            alpha: 1e-4,
        }
    }
}

impl InProcessor for PrejudiceRemover {
    fn name(&self) -> String {
        format!("prejudice_remover(eta={})", self.eta)
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        privileged: &[bool],
        _seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        fairprep_data::provenance::guard_fit(x.provenance(), "PrejudiceRemover::fit");
        if x.n_rows() != y.len() || x.n_rows() != privileged.len() || x.n_rows() != weights.len() {
            return Err(Error::LengthMismatch {
                expected: x.n_rows(),
                actual: y.len(),
            });
        }
        if x.n_rows() == 0 {
            return Err(Error::EmptyData(
                "prejudice remover training set".to_string(),
            ));
        }
        if !(self.eta.is_finite() && self.eta >= 0.0) {
            return Err(Error::InvalidParameter {
                name: "eta",
                message: format!("{} must be finite and >= 0", self.eta),
            });
        }
        let n = x.n_rows();
        let d = x.n_cols();
        let n_priv = privileged.iter().filter(|&&p| p).count();
        let n_unpriv = n - n_priv;
        if n_priv == 0 || n_unpriv == 0 {
            return Err(Error::EmptyGroup {
                privileged: n_priv == 0,
            });
        }

        let total_weight: f64 = weights.iter().sum();
        let mut w = vec![0.0_f64; d];
        let mut b = 0.0_f64;
        let mut probs = vec![0.0_f64; n];
        let mut dp_dz = vec![0.0_f64; n];

        for _iter in 0..self.iterations.max(1) {
            // Forward pass.
            let mut mean_priv = 0.0;
            let mut mean_unpriv = 0.0;
            for (i, row) in x.rows_iter().enumerate() {
                let p = sigmoid(dot(&w, row) + b);
                probs[i] = p;
                dp_dz[i] = p * (1.0 - p);
                if privileged[i] {
                    mean_priv += p;
                } else {
                    mean_unpriv += p;
                }
            }
            mean_priv /= n_priv as f64;
            mean_unpriv /= n_unpriv as f64;
            let gap = mean_unpriv - mean_priv;

            // Backward pass: per-example dL/dz.
            let mut grad_w = vec![0.0_f64; d];
            let mut grad_b = 0.0_f64;
            for (i, row) in x.rows_iter().enumerate() {
                // Log-loss term (normalized by total weight).
                let g_ll = weights[i] * (probs[i] - y[i]) / total_weight;
                // Penalty term: d/dz [η·gap²] = 2η·gap · (±1/n_g) · dp/dz.
                let sign = if privileged[i] {
                    -1.0 / n_priv as f64
                } else {
                    1.0 / n_unpriv as f64
                };
                let g_pen = 2.0 * self.eta * gap * sign * dp_dz[i];
                let g = g_ll + g_pen;
                for (gw, &xj) in grad_w.iter_mut().zip(row) {
                    *gw += g * xj;
                }
                grad_b += g;
            }
            for (wj, gw) in w.iter_mut().zip(&grad_w) {
                *wj -= self.learning_rate * (gw + self.alpha * *wj);
            }
            b -= self.learning_rate * grad_b;
        }

        Ok(Box::new(FittedLogisticRegression {
            weights: w,
            intercept: b,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inprocess::test_support::{proxy_dataset, selection_gap};

    #[test]
    fn penalty_shrinks_score_gap() {
        let (x, y, w, mask) = proxy_dataset(1500, 21);
        let plain = PrejudiceRemover {
            eta: 0.0,
            ..Default::default()
        };
        let fair = PrejudiceRemover {
            eta: 10.0,
            ..Default::default()
        };

        let plain_preds = plain
            .fit(&x, &y, &w, &mask, 0)
            .unwrap()
            .predict(&x)
            .unwrap();
        let fair_preds = fair.fit(&x, &y, &w, &mask, 0).unwrap().predict(&x).unwrap();

        let gap_plain = selection_gap(&plain_preds, &mask).abs();
        let gap_fair = selection_gap(&fair_preds, &mask).abs();
        assert!(
            gap_fair < gap_plain,
            "penalty did not reduce gap: plain {gap_plain}, fair {gap_fair}"
        );
    }

    #[test]
    fn zero_eta_is_plain_logistic_regression_quality() {
        let (x, y, w, mask) = proxy_dataset(1000, 22);
        let model = PrejudiceRemover {
            eta: 0.0,
            ..Default::default()
        }
        .fit(&x, &y, &w, &mask, 0)
        .unwrap();
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct as f64 / y.len() as f64 > 0.75);
    }

    #[test]
    fn deterministic_regardless_of_seed() {
        // Full-batch GD has no randomness: seed must not matter.
        let (x, y, w, mask) = proxy_dataset(200, 23);
        let learner = PrejudiceRemover::default();
        let a = learner
            .fit(&x, &y, &w, &mask, 1)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        let b = learner
            .fit(&x, &y, &w, &mask, 2)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (x, y, w, mask) = proxy_dataset(10, 0);
        assert!(PrejudiceRemover::default()
            .fit(&x, &y[..4], &w, &mask, 0)
            .is_err());
        let bad = PrejudiceRemover {
            eta: f64::NAN,
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, &w, &mask, 0).is_err());
        let one_group = vec![true; 10];
        assert!(PrejudiceRemover::default()
            .fit(&x, &y, &w, &one_group, 0)
            .is_err());
    }
}
