//! In-processing fairness interventions.
//!
//! In-processing methods "learn a specialized model" and plug into the
//! lifecycle as learners (§4). An [`InProcessor`] is like a
//! `fairprep_ml::model::Classifier` but additionally receives the
//! protected-group mask of the training instances.

pub mod adversarial;
pub mod lfr;
pub mod prejudice_remover;

use fairprep_data::error::Result;
use fairprep_ml::matrix::Matrix;
use fairprep_ml::model::FittedClassifier;
use fairprep_ml::sealing;
use fairprep_trace::json::Value;

pub use adversarial::AdversarialDebiasing;
pub use lfr::LearnedFairRepresentations;
pub use prejudice_remover::PrejudiceRemover;

/// A fairness-aware learning algorithm.
pub trait InProcessor: Send + Sync {
    /// Stable name (with parameters) for run metadata.
    fn name(&self) -> String;

    /// Trains on features, labels, instance weights, and the protected-group
    /// mask, deriving all randomness from `seed`.
    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        privileged: &[bool],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>>;
}

/// Reconstructs any fitted classifier a FairPrep pipeline can seal:
/// in-processing models this crate owns (LFR; adversarial debiasing and
/// the prejudice remover produce plain logistic models), falling back to
/// [`fairprep_ml::model::unseal_classifier`] for everything else. Sealed
/// pipelines route all model records through this superset dispatcher.
pub fn unseal_classifier(v: &Value) -> Result<Box<dyn FittedClassifier>> {
    if sealing::kind_of(v)? == lfr::KIND {
        return Ok(Box::new(lfr::FittedLfr::unseal(v)?));
    }
    fairprep_ml::model::unseal_classifier(v)
}

#[cfg(test)]
pub(crate) mod test_support {
    use fairprep_ml::matrix::Matrix;
    use rand::Rng;

    /// A dataset where the label is predictable from feature 0, and feature 1
    /// encodes the protected group almost perfectly (the "leaky proxy").
    /// A plain learner exploits the proxy; a debiased learner should not.
    pub(crate) fn proxy_dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>, Vec<bool>) {
        let mut rng = fairprep_data::rng::component_rng(seed, "test/proxy");
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        for _ in 0..n {
            let privileged = rng.random::<f64>() < 0.5;
            // Labels are biased: privileged mostly positive.
            let label = if privileged {
                f64::from(u8::from(rng.random::<f64>() < 0.8))
            } else {
                f64::from(u8::from(rng.random::<f64>() < 0.2))
            };
            // Feature 0: genuine (weak) signal. Feature 1: group proxy.
            let signal = label * 1.0 + rng.random::<f64>() - 0.5;
            let proxy = if privileged { 1.0 } else { -1.0 };
            rows.push(vec![signal, proxy]);
            y.push(label);
            mask.push(privileged);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let w = vec![1.0; n];
        (x, y, w, mask)
    }

    /// Selection-rate difference (unprivileged − privileged) of predictions.
    pub(crate) fn selection_gap(preds: &[f64], mask: &[bool]) -> f64 {
        let rate = |keep: bool| {
            let (s, n) = preds
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m == keep)
                .fold((0.0, 0usize), |(s, n), (&v, _)| (s + v, n + 1));
            s / n as f64
        };
        rate(false) - rate(true)
    }
}
