//! Learning Fair Representations [Zemel et al., ICML 2013] — an extension
//! intervention (paper future work §7: "feature transformations (such as
//! embeddings of the input data)").
//!
//! LFR maps each example onto a soft assignment over `K` prototypes via a
//! distance softmax `M_ik ∝ exp(−‖x_i − v_k‖²)`, and learns prototypes `v`
//! plus per-prototype label weights `w` to jointly minimize
//!
//! * `L_y` — prediction loss of `ŷ_i = σ(Σ_k M_ik w_k)`,
//! * `L_z` — group parity of the prototype occupation
//!   `Σ_k |mean_priv M_·k − mean_unpriv M_·k|` (the fairness term), and
//! * `L_x` — reconstruction `mean_i ‖x_i − Σ_k M_ik v_k‖²` (keeps the
//!   prototypes on the data manifold).
//!
//! The original is a preprocessor producing transformed features; AIF360's
//! implementation is most commonly used end-to-end through its built-in
//! predictions, which is exactly how it integrates here: as an
//! [`InProcessor`] whose fitted model predicts through the fair
//! representation. Optimization is full-batch gradient descent with
//! hand-derived gradients (for `L_x`, the standard practice of dropping the
//! through-softmax term is followed).

use rand::Rng;

use fairprep_data::error::{Error, Result};
use fairprep_data::rng::component_rng;
use fairprep_ml::matrix::{sigmoid, Matrix};
use fairprep_ml::model::FittedClassifier;
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value};

use crate::inprocess::InProcessor;

pub(crate) const KIND: &str = "lfr";

/// The LFR learner.
#[derive(Debug, Clone, Copy)]
pub struct LearnedFairRepresentations {
    /// Number of prototypes `K`.
    pub n_prototypes: usize,
    /// Weight of the prediction loss `L_y`.
    pub a_y: f64,
    /// Weight of the group-parity loss `L_z`.
    pub a_z: f64,
    /// Weight of the reconstruction loss `L_x`.
    pub a_x: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
}

impl Default for LearnedFairRepresentations {
    fn default() -> Self {
        LearnedFairRepresentations {
            n_prototypes: 10,
            a_y: 1.0,
            a_z: 4.0,
            a_x: 0.01,
            iterations: 300,
            learning_rate: 0.5,
        }
    }
}

impl InProcessor for LearnedFairRepresentations {
    fn name(&self) -> String {
        format!("lfr(k={},az={})", self.n_prototypes, self.a_z)
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        privileged: &[bool],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        fairprep_data::provenance::guard_fit(x.provenance(), "LearnedFairRepresentations::fit");
        let n = x.n_rows();
        let d = x.n_cols();
        if n == 0 {
            return Err(Error::EmptyData("LFR training set".to_string()));
        }
        if y.len() != n || weights.len() != n || privileged.len() != n {
            return Err(Error::LengthMismatch {
                expected: n,
                actual: y.len(),
            });
        }
        if self.n_prototypes < 2 {
            return Err(Error::InvalidParameter {
                name: "n_prototypes",
                message: "LFR needs at least 2 prototypes".to_string(),
            });
        }
        let k = self.n_prototypes;
        let n_priv = privileged.iter().filter(|&&p| p).count();
        let n_unpriv = n - n_priv;
        if n_priv == 0 || n_unpriv == 0 {
            return Err(Error::EmptyGroup {
                privileged: n_priv == 0,
            });
        }

        // Initialize prototypes from randomly-chosen training rows (with a
        // little jitter so duplicates split), weights at 0.
        let mut rng = component_rng(seed, "learner/lfr");
        let mut prototypes = vec![vec![0.0_f64; d]; k];
        for proto in &mut prototypes {
            let row = x.row(rng.random_range(0..n));
            for (p, &v) in proto.iter_mut().zip(row) {
                *p = v + 0.01 * (rng.random::<f64>() - 0.5);
            }
        }
        let mut w = vec![0.0_f64; k];

        let total_weight: f64 = weights.iter().sum();
        let mut m = vec![vec![0.0_f64; k]; n]; // soft assignments
        let mut scores = vec![0.0_f64; n];

        for _iter in 0..self.iterations.max(1) {
            // ---- forward: softmax over negative squared distances ----
            for (i, row) in x.rows_iter().enumerate() {
                let mut z_max = f64::NEG_INFINITY;
                let mut zs = vec![0.0_f64; k];
                for (kk, proto) in prototypes.iter().enumerate() {
                    let dist2: f64 = row.iter().zip(proto).map(|(a, b)| (a - b).powi(2)).sum();
                    zs[kk] = -dist2;
                    z_max = z_max.max(zs[kk]);
                }
                let mut total = 0.0;
                for (kk, z) in zs.iter().enumerate() {
                    m[i][kk] = (z - z_max).exp();
                    total += m[i][kk];
                }
                for mik in &mut m[i] {
                    *mik /= total;
                }
                scores[i] = m[i].iter().zip(&w).map(|(a, b)| a * b).sum();
            }

            // Group means of the prototype occupation.
            let mut mean_priv = vec![0.0_f64; k];
            let mut mean_unpriv = vec![0.0_f64; k];
            for i in 0..n {
                let target = if privileged[i] {
                    &mut mean_priv
                } else {
                    &mut mean_unpriv
                };
                for kk in 0..k {
                    target[kk] += m[i][kk];
                }
            }
            for kk in 0..k {
                mean_priv[kk] /= n_priv as f64;
                mean_unpriv[kk] /= n_unpriv as f64;
            }

            // ---- backward ----
            // dL/dz_ik accumulates contributions of L_y and L_z through the
            // softmax; L_x's direct term goes straight to the prototypes.
            let mut grad_w = vec![0.0_f64; k];
            let mut grad_v = vec![vec![0.0_f64; d]; k];

            for (i, row) in x.rows_iter().enumerate() {
                let p_i = sigmoid(scores[i]);
                // L_y: d/ds = A_y · weight · (p − y) / total_weight.
                let g_y = self.a_y * weights[i] * (p_i - y[i]) / total_weight;
                // dL_z/dM_ik = A_z · sign(mean_priv_k − mean_unpriv_k) · (±1/n_group).
                let group_scale = if privileged[i] {
                    1.0 / n_priv as f64
                } else {
                    -1.0 / n_unpriv as f64
                };

                // dL/dM_ij for each prototype j.
                let mut dl_dm = vec![0.0_f64; k];
                for kk in 0..k {
                    let sign = (mean_priv[kk] - mean_unpriv[kk]).signum();
                    dl_dm[kk] = g_y * w[kk] + self.a_z * sign * group_scale;
                    // L_y gradient wrt w is direct.
                    grad_w[kk] += g_y * m[i][kk];
                }
                // Chain through the softmax: dL/dz_ik = M_ik (dl_dm_k − Σ_j dl_dm_j M_ij).
                let inner: f64 = dl_dm.iter().zip(&m[i]).map(|(a, b)| a * b).sum();
                // Reconstruction x̂_i (for L_x's direct term).
                let mut recon = vec![0.0_f64; d];
                if self.a_x > 0.0 {
                    for kk in 0..k {
                        for (r, &v) in recon.iter_mut().zip(&prototypes[kk]) {
                            *r += m[i][kk] * v;
                        }
                    }
                }
                for kk in 0..k {
                    let dz = m[i][kk] * (dl_dm[kk] - inner);
                    // dz_ik/dv_k = 2(x_i − v_k).
                    for (gv, (&xj, &vj)) in
                        grad_v[kk].iter_mut().zip(row.iter().zip(&prototypes[kk]))
                    {
                        *gv += dz * 2.0 * (xj - vj);
                    }
                    if self.a_x > 0.0 {
                        // Direct L_x term: 2 (x̂ − x) M_ik / n.
                        for (gv, (&rj, &xj)) in grad_v[kk].iter_mut().zip(recon.iter().zip(row)) {
                            *gv += self.a_x * 2.0 * (rj - xj) * m[i][kk] / n as f64;
                        }
                    }
                }
            }

            for kk in 0..k {
                w[kk] -= self.learning_rate * grad_w[kk];
                for (vj, gj) in prototypes[kk].iter_mut().zip(&grad_v[kk]) {
                    *vj -= self.learning_rate * gj;
                }
            }
        }

        Ok(Box::new(FittedLfr { prototypes, w }))
    }
}

/// A fitted LFR model: prototypes plus per-prototype label weights.
pub struct FittedLfr {
    prototypes: Vec<Vec<f64>>,
    w: Vec<f64>,
}

impl FittedLfr {
    pub(crate) fn unseal(v: &Value) -> Result<FittedLfr> {
        sealing::expect_kind(v, KIND)?;
        let prototypes: Vec<Vec<f64>> = sealing::req_arr(v, "prototypes")?
            .iter()
            .map(|p| {
                p.as_f64_bits_vec()
                    .ok_or_else(|| sealing::seal_err("lfr prototype is not a bit-pattern vector"))
            })
            .collect::<Result<_>>()?;
        let w = sealing::req_f64_vec(v, "w")?;
        let Some(first) = prototypes.first() else {
            return Err(sealing::seal_err("lfr record has no prototypes"));
        };
        if prototypes.iter().any(|p| p.len() != first.len()) {
            return Err(sealing::seal_err("lfr prototypes have mismatched widths"));
        }
        if w.len() != prototypes.len() {
            return Err(sealing::seal_err(
                "lfr label weights do not match the prototype count",
            ));
        }
        Ok(FittedLfr { prototypes, w })
    }
}

impl FittedClassifier for FittedLfr {
    fn seal(&self) -> Result<Value> {
        let prototypes: Vec<Value> = self.prototypes.iter().map(|p| Value::bits_vec(p)).collect();
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("prototypes", Value::Arr(prototypes)),
            ("w", Value::bits_vec(&self.w)),
        ]))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        let d = self.prototypes.first().map_or(0, Vec::len);
        if x.n_cols() != d {
            return Err(Error::LengthMismatch {
                expected: d,
                actual: x.n_cols(),
            });
        }
        Ok(x.rows_iter()
            .map(|row| {
                let mut z_max = f64::NEG_INFINITY;
                let zs: Vec<f64> = self
                    .prototypes
                    .iter()
                    .map(|proto| {
                        let dist2: f64 = row.iter().zip(proto).map(|(a, b)| (a - b).powi(2)).sum();
                        let z = -dist2;
                        z_max = z_max.max(z);
                        z
                    })
                    .collect();
                let mut total = 0.0;
                let mut score = 0.0;
                for (z, &wk) in zs.iter().zip(&self.w) {
                    let e = (z - z_max).exp();
                    total += e;
                    score += e * wk;
                }
                sigmoid(score / total)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inprocess::test_support::{proxy_dataset, selection_gap};

    #[test]
    fn learns_the_task() {
        let (x, y, w, mask) = proxy_dataset(800, 31);
        let lfr = LearnedFairRepresentations {
            a_z: 0.5,
            ..Default::default()
        };
        let model = lfr.fit(&x, &y, &w, &mask, 3).unwrap();
        let preds = model.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn seals_and_unseals_bit_identically() {
        let (x, y, w, mask) = proxy_dataset(200, 33);
        let lfr = LearnedFairRepresentations {
            iterations: 30,
            ..Default::default()
        };
        let fitted = lfr.fit(&x, &y, &w, &mask, 5).unwrap();
        let sealed = fitted.seal().unwrap();
        let reparsed = fairprep_trace::json::parse(&sealed.to_json()).unwrap();
        let reloaded = crate::inprocess::unseal_classifier(&reparsed).unwrap();
        let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&fitted.predict_proba(&x).unwrap()),
            bits(&reloaded.predict_proba(&x).unwrap())
        );
    }

    #[test]
    fn unseal_rejects_mismatched_prototype_widths() {
        let broken = obj(vec![
            ("kind", Value::Str(KIND.into())),
            (
                "prototypes",
                Value::Arr(vec![Value::bits_vec(&[1.0, 2.0]), Value::bits_vec(&[1.0])]),
            ),
            ("w", Value::bits_vec(&[0.5, 0.5])),
        ]);
        assert!(FittedLfr::unseal(&broken).is_err());
    }

    #[test]
    fn stronger_parity_weight_shrinks_the_gap() {
        let (x, y, w, mask) = proxy_dataset(1200, 32);
        let loose = LearnedFairRepresentations {
            a_z: 0.0,
            ..Default::default()
        };
        let strict = LearnedFairRepresentations {
            a_z: 30.0,
            ..Default::default()
        };
        let gap = |lfr: &LearnedFairRepresentations| {
            let preds = lfr.fit(&x, &y, &w, &mask, 7).unwrap().predict(&x).unwrap();
            selection_gap(&preds, &mask).abs()
        };
        let g_loose = gap(&loose);
        let g_strict = gap(&strict);
        assert!(
            g_strict < g_loose + 1e-9,
            "a_z=0 gap {g_loose}, a_z=30 gap {g_strict}"
        );
    }

    #[test]
    fn seed_determinism() {
        let (x, y, w, mask) = proxy_dataset(200, 33);
        let lfr = LearnedFairRepresentations {
            iterations: 40,
            ..Default::default()
        };
        let a = lfr
            .fit(&x, &y, &w, &mask, 1)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        let b = lfr
            .fit(&x, &y, &w, &mask, 1)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        assert_eq!(a, b);
        let c = lfr
            .fit(&x, &y, &w, &mask, 2)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y, w, mask) = proxy_dataset(300, 34);
        let model = LearnedFairRepresentations::default()
            .fit(&x, &y, &w, &mask, 5)
            .unwrap();
        for p in model.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (x, y, w, mask) = proxy_dataset(20, 35);
        let lfr = LearnedFairRepresentations::default();
        assert!(lfr.fit(&x, &y[..10], &w, &mask, 0).is_err());
        let one_proto = LearnedFairRepresentations {
            n_prototypes: 1,
            ..Default::default()
        };
        assert!(one_proto.fit(&x, &y, &w, &mask, 0).is_err());
        let one_group = vec![true; 20];
        assert!(lfr.fit(&x, &y, &w, &one_group, 0).is_err());
    }

    #[test]
    fn predict_checks_dimensionality() {
        let (x, y, w, mask) = proxy_dataset(50, 36);
        let model = LearnedFairRepresentations {
            iterations: 10,
            ..Default::default()
        }
        .fit(&x, &y, &w, &mask, 0)
        .unwrap();
        assert!(model.predict_proba(&Matrix::zeros(1, 9)).is_err());
    }
}
