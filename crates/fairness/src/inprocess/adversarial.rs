//! Adversarial debiasing [Zhang, Lemoine & Mitchell, AIES 2018].
//!
//! "Learns a classifier to maximize prediction accuracy and simultaneously
//! reduce an adversary's ability to determine the protected attribute from
//! the predictions" (§4). The original uses two neural networks; this
//! implementation keeps the adversarial game but uses a logistic predictor
//! and a logistic adversary:
//!
//! * predictor: `ŷ = σ(w·x + b)`,
//! * adversary: predicts group membership from `(ŷ, ŷ·y, y)` as in Zhang
//!   et al.'s equalized-odds variant.
//!
//! Each SGD step updates the adversary to better recover the group, then
//! updates the predictor with `∇L_pred − α·∇L_adv` — descending its own
//! loss while *ascending* the adversary's, so group information is driven
//! out of the scores.

use rand::seq::SliceRandom;

use fairprep_data::error::{Error, Result};
use fairprep_data::rng::component_rng;
use fairprep_ml::matrix::{dot, sigmoid, Matrix};
use fairprep_ml::model::logistic::FittedLogisticRegression;
use fairprep_ml::model::FittedClassifier;

use crate::inprocess::InProcessor;

/// The adversarial-debiasing learner.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialDebiasing {
    /// Strength α of the adversarial term in the predictor update.
    pub debias_weight: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub eta0: f64,
}

impl Default for AdversarialDebiasing {
    fn default() -> Self {
        AdversarialDebiasing {
            debias_weight: 1.0,
            epochs: 30,
            eta0: 0.05,
        }
    }
}

impl InProcessor for AdversarialDebiasing {
    fn name(&self) -> String {
        format!("adversarial_debiasing(alpha={})", self.debias_weight)
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        privileged: &[bool],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        fairprep_data::provenance::guard_fit(x.provenance(), "AdversarialDebiasing::fit");
        if x.n_rows() != y.len() || x.n_rows() != privileged.len() || x.n_rows() != weights.len() {
            return Err(Error::LengthMismatch {
                expected: x.n_rows(),
                actual: y.len(),
            });
        }
        if x.n_rows() == 0 {
            return Err(Error::EmptyData(
                "adversarial debiasing training set".to_string(),
            ));
        }
        if !(self.debias_weight.is_finite() && self.debias_weight >= 0.0) {
            return Err(Error::InvalidParameter {
                name: "debias_weight",
                message: format!("{} must be finite and >= 0", self.debias_weight),
            });
        }

        let n = x.n_rows();
        let d = x.n_cols();
        let mut w = vec![0.0_f64; d]; // predictor weights
        let mut b = 0.0_f64;
        // Adversary inputs: [ŷ, ŷ·y, y] (Zhang et al.'s odds-aware adversary).
        let mut u = [0.0_f64; 3];
        let mut c = 0.0_f64;

        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = component_rng(seed, "learner/adversarial");
        let mut t: u64 = 0;
        let alpha = self.debias_weight;

        for _epoch in 0..self.epochs.max(1) {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                #[allow(clippy::cast_precision_loss)]
                let eta = self.eta0 / (t as f64).powf(0.25);
                let row = x.row(i);
                let z = dot(&w, row) + b;
                let p = sigmoid(z);
                let a = f64::from(u8::from(privileged[i])); // adversary target

                // --- adversary step (gradient descent on its own loss) ---
                let adv_in = [p, p * y[i], y[i]];
                let q = sigmoid(dot(&u, &adv_in) + c);
                let g_adv = q - a;
                for (uj, &vj) in u.iter_mut().zip(&adv_in) {
                    *uj -= eta * g_adv * vj;
                }
                c -= eta * g_adv;

                // --- predictor step ---
                // ∂L_pred/∂z = weight · (p − y).
                let g_pred = weights[i] * (p - y[i]);
                // ∂L_adv/∂z flows through p: dp/dz = p(1−p);
                // ∂L_adv/∂p = (q − a) · (u₀ + u₁·y).
                // audit: allow(index-literal, reason = "u is the adversary's fixed-size parameter array, indexed within its compile-time length")
                let g_through_p = g_adv * (u[0] + u[1] * y[i]) * p * (1.0 - p);
                // Predictor descends its loss and ascends the adversary's.
                let g_total = g_pred - alpha * g_through_p;
                for (wj, &xj) in w.iter_mut().zip(row) {
                    *wj -= eta * g_total * xj;
                }
                b -= eta * g_total;
            }
        }

        Ok(Box::new(FittedLogisticRegression {
            weights: w,
            intercept: b,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inprocess::test_support::{proxy_dataset, selection_gap};

    #[test]
    fn debiasing_shrinks_the_selection_gap() {
        let (x, y, w, mask) = proxy_dataset(2000, 1);

        let plain = AdversarialDebiasing {
            debias_weight: 0.0,
            ..Default::default()
        };
        let fair = AdversarialDebiasing {
            debias_weight: 4.0,
            ..Default::default()
        };

        let plain_preds = plain
            .fit(&x, &y, &w, &mask, 5)
            .unwrap()
            .predict(&x)
            .unwrap();
        let fair_preds = fair.fit(&x, &y, &w, &mask, 5).unwrap().predict(&x).unwrap();

        let gap_plain = selection_gap(&plain_preds, &mask).abs();
        let gap_fair = selection_gap(&fair_preds, &mask).abs();
        assert!(
            gap_fair < gap_plain,
            "debiasing did not reduce the gap: plain {gap_plain}, fair {gap_fair}"
        );
    }

    #[test]
    fn model_still_learns_the_task() {
        let (x, y, w, mask) = proxy_dataset(2000, 2);
        let model = AdversarialDebiasing::default()
            .fit(&x, &y, &w, &mask, 3)
            .unwrap();
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        // Bayes-optimal fair accuracy is below 1.0 on this data, but the
        // genuine feature still carries signal.
        assert!(
            correct as f64 / y.len() as f64 > 0.6,
            "{correct}/{}",
            y.len()
        );
    }

    #[test]
    fn training_is_seed_deterministic() {
        let (x, y, w, mask) = proxy_dataset(300, 4);
        let learner = AdversarialDebiasing::default();
        let a = learner
            .fit(&x, &y, &w, &mask, 9)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        let b = learner
            .fit(&x, &y, &w, &mask, 9)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (x, y, w, mask) = proxy_dataset(10, 0);
        let learner = AdversarialDebiasing::default();
        assert!(learner.fit(&x, &y[..5], &w, &mask, 0).is_err());
        let bad = AdversarialDebiasing {
            debias_weight: -1.0,
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, &w, &mask, 0).is_err());
    }

    #[test]
    fn name_mentions_alpha() {
        assert!(AdversarialDebiasing::default().name().contains("alpha=1"));
    }
}
