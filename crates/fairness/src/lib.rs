//! # fairprep-fairness
//!
//! The fairness substrate of the FairPrep workspace — the AIF360 substitute
//! providing:
//!
//! * **Metrics** ([`metrics`]): the 25 per-group metrics and 22
//!   between-group metrics FairPrep reports for every run (§4), assembled
//!   into a [`metrics::MetricsReport`].
//! * **Pre-processing interventions** ([`preprocess`]): reweighing
//!   [Kamiran & Calders '12], the disparate-impact remover with repair
//!   levels [Feldman et al. '15], and massaging (extension).
//! * **In-processing interventions** ([`inprocess`]): adversarial debiasing
//!   [Zhang et al. '18] and a prejudice-remover-style covariance penalty
//!   (extension).
//! * **Post-processing interventions** ([`postprocess`]): reject-option
//!   classification [Kamiran et al. '12], calibrated equalized odds
//!   [Pleiss et al. '17], and equalized odds [Hardt et al. '16]
//!   (extension).
//!
//! All components follow the FairPrep isolation discipline: interventions
//! are fitted on training (or validation, for postprocessors) data only and
//! then applied by the framework to later splits.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod inprocess;
pub mod metrics;
pub mod postprocess;
pub mod preprocess;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::inprocess::{
        AdversarialDebiasing, InProcessor, LearnedFairRepresentations, PrejudiceRemover,
    };
    pub use crate::metrics::{
        consistency, DatasetMetrics, DifferenceMetrics, GroupMetrics, MetricsReport, ReportInputs,
    };
    pub use crate::postprocess::{
        CalibratedEqOdds, CostConstraint, EqOddsPostprocessing, FittedPostprocessor,
        GroupThresholdOptimizer, NoPostprocessing, Postprocessor, RejectOptionClassification,
        ThresholdConstraint,
    };
    pub use crate::preprocess::{
        DisparateImpactRemover, FittedPreprocessor, Massaging, NoIntervention,
        PreferentialSampling, Preprocessor, Reweighing,
    };
}
