//! Reweighing [Kamiran & Calders, KAIS 2012].
//!
//! Assigns each training instance the weight
//! `w(g, y) = P(g) · P(y) / P(g, y)`, which makes group membership and label
//! statistically independent in the weighted training distribution. Only
//! the training set is touched — evaluation data keeps unit weights.

// audit: allow-file(index-literal, reason = "the 2x2 (group, label) contingency cells have compile-time size, indexed by bool casts")
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value};

use crate::preprocess::{FittedPreprocessor, Preprocessor};

pub(crate) const KIND: &str = "reweighing";

/// The reweighing intervention.
///
/// # Examples
///
/// ```
/// use fairprep_data::prelude::*;
/// use fairprep_fairness::preprocess::{Preprocessor, Reweighing};
///
/// // A biased toy set: the privileged group "a" is always positive.
/// let frame = DataFrame::new()
///     .with_column("x", Column::from_f64([1.0, 2.0, 3.0, 4.0])).unwrap()
///     .with_column("g", Column::from_strs(["a", "a", "b", "b"])).unwrap()
///     .with_column("y", Column::from_strs(["p", "p", "p", "n"])).unwrap();
/// let schema = Schema::new()
///     .numeric_feature("x")
///     .metadata("g", ColumnKind::Categorical)
///     .label("y");
/// let train = BinaryLabelDataset::new(
///     frame, schema, ProtectedAttribute::categorical("g", &["a"]), "p",
/// ).unwrap();
///
/// let reweighed = Reweighing.fit(&train, 0).unwrap().transform_train(&train).unwrap();
/// // Over-represented privileged positives are down-weighted.
/// assert!(reweighed.instance_weights()[0] < 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Reweighing;

impl Preprocessor for Reweighing {
    fn name(&self) -> String {
        "reweighing".to_string()
    }

    fn fit(&self, train: &BinaryLabelDataset, _seed: u64) -> Result<Box<dyn FittedPreprocessor>> {
        train.guard_fit("Reweighing::fit");
        let n = train.n_rows();
        if n == 0 {
            return Err(Error::EmptyData("reweighing training set".to_string()));
        }
        let labels = train.labels();
        let mask = train.privileged_mask();

        // Joint counts over (group, label) cells.
        let mut cell = [[0usize; 2]; 2]; // [group][label]
        for i in 0..n {
            // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
            cell[usize::from(mask[i])][usize::from(labels[i] == 1.0)] += 1;
        }
        let group_totals = [cell[0][0] + cell[0][1], cell[1][0] + cell[1][1]];
        let label_totals = [cell[0][0] + cell[1][0], cell[0][1] + cell[1][1]];

        let nf = n as f64;
        let mut weights = [[1.0_f64; 2]; 2];
        for g in 0..2 {
            for y in 0..2 {
                if cell[g][y] > 0 {
                    weights[g][y] = (group_totals[g] as f64 / nf) * (label_totals[y] as f64 / nf)
                        / (cell[g][y] as f64 / nf);
                }
                // Empty cells keep weight 1.0; no instance uses them anyway.
            }
        }
        Ok(Box::new(FittedReweighing { weights }))
    }
}

/// Reweighing with the four `(group, label)` weights fixed from training
/// statistics.
#[derive(Debug, Clone, Copy)]
pub struct FittedReweighing {
    /// `weights[group][label]`, `group`/`label` ∈ {0, 1}.
    pub weights: [[f64; 2]; 2],
}

impl FittedReweighing {
    pub(crate) fn unseal(v: &Value) -> Result<FittedReweighing> {
        let flat = sealing::req_f64_vec(v, "weights")?;
        let [uu, up, pu, pp] = flat[..] else {
            return Err(sealing::seal_err(
                "reweighing record needs exactly 4 cell weights",
            ));
        };
        if flat.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(sealing::seal_err(
                "reweighing cell weights must be finite and non-negative",
            ));
        }
        Ok(FittedReweighing {
            weights: [[uu, up], [pu, pp]],
        })
    }
}

impl FittedPreprocessor for FittedReweighing {
    fn seal(&self) -> Result<Value> {
        let flat = [
            self.weights[0][0],
            self.weights[0][1],
            self.weights[1][0],
            self.weights[1][1],
        ];
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("weights", Value::bits_vec(&flat)),
        ]))
    }

    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        let labels = train.labels().to_vec();
        let mask = train.privileged_mask().to_vec();
        let base = train.instance_weights().to_vec();
        let mut out = train.clone();
        let new_weights: Vec<f64> = (0..train.n_rows())
            // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
            .map(|i| base[i] * self.weights[usize::from(mask[i])][usize::from(labels[i] == 1.0)])
            .collect();
        out.set_instance_weights(new_weights)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::test_support::biased_dataset;

    #[test]
    fn weights_remove_group_label_dependence() {
        let ds = biased_dataset(200);
        let fitted = Reweighing.fit(&ds, 0).unwrap();
        let out = fitted.transform_train(&ds).unwrap();
        let w = out.instance_weights();
        let y = out.labels();
        let m = out.privileged_mask();

        // In the weighted distribution, P(y=1 | privileged) must equal
        // P(y=1 | unprivileged) (both equal the overall base rate).
        let weighted_rate = |privileged: bool| -> f64 {
            let (pos, tot) = (0..out.n_rows())
                .filter(|&i| m[i] == privileged)
                .fold((0.0, 0.0), |(p, t), i| (p + w[i] * y[i], t + w[i]));
            pos / tot
        };
        let rp = weighted_rate(true);
        let ru = weighted_rate(false);
        assert!(
            (rp - ru).abs() < 1e-9,
            "weighted rates differ: {rp} vs {ru}"
        );
    }

    #[test]
    fn weighted_total_mass_is_preserved() {
        let ds = biased_dataset(200);
        let out = Reweighing
            .fit(&ds, 0)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let total: f64 = out.instance_weights().iter().sum();
        assert!((total - 200.0).abs() < 1e-6, "total mass {total}");
    }

    #[test]
    fn favored_cells_are_downweighted() {
        // Privileged-positive and unprivileged-negative cells are
        // over-represented in a biased dataset → weight < 1. The other two
        // cells get weight > 1.
        let ds = biased_dataset(200);
        let fitted = Reweighing.fit(&ds, 0).unwrap();
        let out = fitted.transform_train(&ds).unwrap();
        let y = out.labels();
        let m = out.privileged_mask();
        let w = out.instance_weights();
        for i in 0..out.n_rows() {
            match (m[i], y[i] == 1.0) {
                (true, true) | (false, false) => assert!(w[i] < 1.0, "row {i}: {}", w[i]),
                (true, false) | (false, true) => assert!(w[i] > 1.0, "row {i}: {}", w[i]),
            }
        }
    }

    #[test]
    fn evaluation_split_is_untouched() {
        let ds = biased_dataset(50);
        let fitted = Reweighing.fit(&ds, 0).unwrap();
        let eval = fitted.transform_eval(&ds).unwrap();
        assert_eq!(eval.instance_weights(), ds.instance_weights());
        assert_eq!(eval.frame(), ds.frame());
    }

    #[test]
    fn composes_with_existing_weights() {
        let mut ds = biased_dataset(8);
        ds.set_instance_weights(vec![2.0; 8]).unwrap();
        let fitted = Reweighing.fit(&ds, 0).unwrap();
        let out = fitted.transform_train(&ds).unwrap();
        // Every output weight must be exactly 2 × the reweighing factor.
        let fresh = {
            let mut clean = biased_dataset(8);
            clean.set_instance_weights(vec![1.0; 8]).unwrap();
            fitted.transform_train(&clean).unwrap()
        };
        for (a, b) in out.instance_weights().iter().zip(fresh.instance_weights()) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn balanced_data_gets_unit_weights() {
        // Build a dataset where group ⫫ label already holds.
        use fairprep_data::column::{Column, ColumnKind};
        use fairprep_data::frame::DataFrame;
        use fairprep_data::schema::{ProtectedAttribute, Schema};
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64([1.0, 2.0, 3.0, 4.0]))
            .unwrap()
            .with_column("g", Column::from_strs(["a", "a", "b", "b"]))
            .unwrap()
            .with_column("y", Column::from_strs(["p", "n", "p", "n"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap();
        let out = Reweighing
            .fit(&ds, 0)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        for &w in out.instance_weights() {
            assert!((w - 1.0).abs() < 1e-12);
        }
    }
}
