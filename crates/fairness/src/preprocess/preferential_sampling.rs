//! Preferential sampling [Kamiran & Calders, 2012] — the sampling-based
//! sibling of reweighing (an extension intervention, paper future work §7).
//!
//! Instead of attaching weights, the training set is *resampled* so that
//! group and label become independent: over-represented (group, label)
//! cells are shrunk and under-represented cells are grown to the expected
//! size `n · P(group) · P(label)`. Where Kamiran & Calders delete/duplicate
//! the examples closest to the decision boundary of an internal ranker,
//! this implementation ranks with a seeded logistic model — borderline
//! over-represented examples are dropped first, borderline
//! under-represented examples are duplicated first.
//!
//! Useful when the downstream learner ignores instance weights.

// audit: allow-file(index-literal, reason = "the 2x2 (group, label) contingency cells have compile-time size, indexed by bool casts")
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_ml::model::{Classifier, LogisticRegressionSgd};
use fairprep_ml::sealing;
use fairprep_ml::transform::{FittedFeaturizer, ScalerSpec};
use fairprep_trace::json::{obj, Value};

use crate::preprocess::{FittedPreprocessor, Preprocessor};

pub(crate) const KIND: &str = "preferential_sampling";

/// The preferential-sampling intervention.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreferentialSampling;

impl Preprocessor for PreferentialSampling {
    fn name(&self) -> String {
        "preferential_sampling".to_string()
    }

    fn fit(&self, train: &BinaryLabelDataset, seed: u64) -> Result<Box<dyn FittedPreprocessor>> {
        train.guard_fit("PreferentialSampling::fit");
        // Rank all training examples once with an internal model.
        let featurizer = FittedFeaturizer::fit(train, ScalerSpec::Standard)?;
        let x = featurizer.transform(train)?;
        let ranker = LogisticRegressionSgd::default().fit(
            &x,
            train.labels(),
            train.instance_weights(),
            seed,
        )?;
        let scores = ranker.predict_proba(&x)?;
        Ok(Box::new(FittedPreferentialSampling { scores }))
    }
}

pub(crate) struct FittedPreferentialSampling {
    /// Ranker scores for the training set the intervention was fitted on.
    scores: Vec<f64>,
}

/// Reconstructs a fitted preferential-sampling intervention from a sealed
/// record.
pub(crate) fn unseal_preferential_sampling(v: &Value) -> Result<FittedPreferentialSampling> {
    let scores = sealing::req_f64_vec(v, "scores")?;
    if scores.is_empty() {
        return Err(sealing::seal_err(
            "preferential_sampling record has no ranker scores",
        ));
    }
    Ok(FittedPreferentialSampling { scores })
}

impl FittedPreprocessor for FittedPreferentialSampling {
    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        let n = train.n_rows();
        if n != self.scores.len() {
            return Err(Error::LengthMismatch {
                expected: self.scores.len(),
                actual: n,
            });
        }
        let labels = train.labels();
        let mask = train.privileged_mask();

        // Expected (group, label) cell sizes under independence.
        let mut cells: [[Vec<usize>; 2]; 2] = Default::default();
        for i in 0..n {
            // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
            cells[usize::from(mask[i])][usize::from(labels[i] == 1.0)].push(i);
        }
        let group_totals = [
            cells[0][0].len() + cells[0][1].len(),
            cells[1][0].len() + cells[1][1].len(),
        ];
        let label_totals = [
            cells[0][0].len() + cells[1][0].len(),
            cells[0][1].len() + cells[1][1].len(),
        ];
        if group_totals.contains(&0) || label_totals.contains(&0) {
            return Err(Error::EmptyData(
                "preferential sampling needs both groups and both labels".to_string(),
            ));
        }

        let mut keep: Vec<usize> = Vec::with_capacity(n);
        for g in 0..2 {
            for y in 0..2 {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let expected = ((group_totals[g] as f64) * (label_totals[y] as f64) / n as f64)
                    .round() as usize;
                let mut members = cells[g][y].clone();
                if members.is_empty() {
                    continue;
                }
                // Sort by "confidence": positives descending (the most
                // clearly-positive first), negatives ascending — so the
                // borderline examples sit at the END and are dropped first /
                // duplicated first, following Kamiran & Calders.
                members.sort_by(|&a, &b| {
                    if y == 1 {
                        self.scores[b].total_cmp(&self.scores[a])
                    } else {
                        self.scores[a].total_cmp(&self.scores[b])
                    }
                });
                if expected <= members.len() {
                    keep.extend_from_slice(&members[..expected.max(1)]);
                } else {
                    keep.extend_from_slice(&members);
                    // Duplicate borderline examples (tail of the order).
                    let deficit = expected - members.len();
                    for k in 0..deficit {
                        keep.push(members[members.len() - 1 - (k % members.len())]);
                    }
                }
            }
        }
        keep.sort_unstable();
        Ok(train.take(&keep))
    }

    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("scores", Value::bits_vec(&self.scores)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::test_support::biased_dataset;

    #[test]
    fn resampled_training_set_has_equal_group_rates() {
        let ds = biased_dataset(400);
        let before = ds.base_rate(Some(true)) - ds.base_rate(Some(false));
        assert!(before > 0.3);
        let out = PreferentialSampling
            .fit(&ds, 3)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let after = out.base_rate(Some(true)) - out.base_rate(Some(false));
        assert!(after.abs() < 0.05, "rate gap after sampling: {after}");
    }

    #[test]
    fn output_size_close_to_input() {
        let ds = biased_dataset(400);
        let out = PreferentialSampling
            .fit(&ds, 3)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let ratio = out.n_rows() as f64 / 400.0;
        assert!((0.9..=1.1).contains(&ratio), "size ratio {ratio}");
    }

    #[test]
    fn weights_are_not_used_labels_are_not_flipped() {
        let ds = biased_dataset(200);
        let out = PreferentialSampling
            .fit(&ds, 1)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        assert!(out.instance_weights().iter().all(|&w| w == 1.0));
        // Every output row is a copy of some input row (sampling, not
        // editing): each (feature, label) pair must exist in the input.
        let in_scores: Vec<f64> = ds
            .frame()
            .column("score")
            .unwrap()
            .as_numeric()
            .unwrap()
            .iter()
            .map(|v| v.unwrap())
            .collect();
        let out_scores = out.frame().column("score").unwrap();
        for i in 0..out.n_rows() {
            let v = out_scores.get(i).as_numeric().unwrap();
            assert!(in_scores.contains(&v), "row {i} not from the input");
        }
    }

    #[test]
    fn eval_split_untouched() {
        let ds = biased_dataset(100);
        let fitted = PreferentialSampling.fit(&ds, 1).unwrap();
        let eval = fitted.transform_eval(&ds).unwrap();
        assert_eq!(eval.frame(), ds.frame());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = biased_dataset(200);
        let a = PreferentialSampling
            .fit(&ds, 5)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let b = PreferentialSampling
            .fit(&ds, 5)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        assert_eq!(a.frame(), b.frame());
    }

    #[test]
    fn mismatched_input_rejected() {
        let ds = biased_dataset(100);
        let fitted = PreferentialSampling.fit(&ds, 1).unwrap();
        let other = biased_dataset(50);
        assert!(fitted.transform_train(&other).is_err());
    }
}
