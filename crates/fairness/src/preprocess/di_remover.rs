//! Disparate-impact removal [Feldman et al., KDD 2015].
//!
//! "Edits feature values to increase group fairness while preserving the
//! rank-ordering within groups. The repair level parameter represents the
//! repair amount." (§4)
//!
//! For each numeric feature, the repairer learns the per-group empirical
//! quantile functions on the training data. Repairing a value `v` from
//! group `g`: compute its quantile `q` within `g`'s training distribution,
//! look up the *median distribution* value at `q` (with two groups: the
//! mean of both group quantile functions), and blend:
//! `v' = (1 − λ) · v + λ · median(q)` with repair level `λ ∈ [0, 1]`.
//! Monotone per-group maps preserve within-group rank order.

// audit: allow-file(index-literal, reason = "per-group state is a [Vec; 2] pair indexed by bool; the single slice index is guarded by a length check")
use fairprep_data::column::Column;
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value};

use crate::preprocess::{FittedPreprocessor, Preprocessor};

pub(crate) const KIND: &str = "di_remover";

/// The disparate-impact remover with a configurable repair level.
#[derive(Debug, Clone, Copy)]
pub struct DisparateImpactRemover {
    /// Repair amount λ: `0.0` = no change, `1.0` = full repair.
    pub repair_level: f64,
}

impl DisparateImpactRemover {
    /// Creates a remover with the given repair level.
    #[must_use]
    pub fn new(repair_level: f64) -> Self {
        DisparateImpactRemover { repair_level }
    }
}

impl Preprocessor for DisparateImpactRemover {
    fn name(&self) -> String {
        format!("di_remover({})", self.repair_level)
    }

    fn fit(&self, train: &BinaryLabelDataset, _seed: u64) -> Result<Box<dyn FittedPreprocessor>> {
        train.guard_fit("DisparateImpactRemover::fit");
        if !(0.0..=1.0).contains(&self.repair_level) || !self.repair_level.is_finite() {
            return Err(Error::InvalidParameter {
                name: "repair_level",
                message: format!("{} not in [0, 1]", self.repair_level),
            });
        }
        let mask = train.privileged_mask();
        let mut features = Vec::new();
        for name in train.schema().numeric_features() {
            let col = train.frame().column(name)?;
            let values = col.as_numeric()?;
            let mut sorted = [Vec::new(), Vec::new()];
            for (i, v) in values.iter().enumerate() {
                if let Some(v) = v {
                    sorted[usize::from(mask[i])].push(*v);
                }
            }
            for s in &mut sorted {
                s.sort_by(f64::total_cmp);
            }
            if sorted[0].is_empty() || sorted[1].is_empty() {
                return Err(Error::EmptyGroup {
                    privileged: sorted[1].is_empty(),
                });
            }
            features.push(FeatureRepair {
                name: (*name).to_string(),
                sorted,
            });
        }
        Ok(Box::new(FittedDiRemover {
            repair_level: self.repair_level,
            features,
        }))
    }
}

struct FeatureRepair {
    name: String,
    /// Sorted training values, `sorted[0]` = unprivileged, `sorted[1]` =
    /// privileged.
    sorted: [Vec<f64>; 2],
}

impl FeatureRepair {
    /// Empirical quantile of `v` within group `g` (mid-distribution
    /// convention, linear interpolation between order statistics).
    fn quantile_of(&self, g: usize, v: f64) -> f64 {
        let s = &self.sorted[g];
        // rank = (#(x < v) + #(x <= v)) / 2 — robust to ties.
        let below = s.partition_point(|x| *x < v);
        let at_or_below = s.partition_point(|x| *x <= v);
        let rank = (below + at_or_below) as f64 / 2.0;
        (rank / s.len() as f64).clamp(0.0, 1.0)
    }

    /// Value of group `g`'s training distribution at quantile `q` (linear
    /// interpolation).
    fn value_at(&self, g: usize, q: f64) -> f64 {
        let s = &self.sorted[g];
        if s.len() == 1 {
            return s[0];
        }
        let pos = q.clamp(0.0, 1.0) * (s.len() - 1) as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(s.len() - 1);
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }

    /// The median-distribution value at quantile `q`: with two groups, the
    /// mean of the two group quantile functions.
    fn median_value_at(&self, q: f64) -> f64 {
        0.5 * (self.value_at(0, q) + self.value_at(1, q))
    }

    fn repair(&self, g: usize, v: f64, lambda: f64) -> f64 {
        let q = self.quantile_of(g, v);
        (1.0 - lambda) * v + lambda * self.median_value_at(q)
    }
}

pub(crate) struct FittedDiRemover {
    repair_level: f64,
    features: Vec<FeatureRepair>,
}

/// Reconstructs a fitted disparate-impact remover from a sealed record,
/// validating everything the repair math relies on: the per-group training
/// values must be non-empty and sorted (quantile lookups binary-search them).
pub(crate) fn unseal_di_remover(v: &Value) -> Result<FittedDiRemover> {
    let repair_level = sealing::req_f64(v, "repair_level")?;
    if !repair_level.is_finite() || !(0.0..=1.0).contains(&repair_level) {
        return Err(sealing::seal_err("di_remover repair_level not in [0, 1]"));
    }
    let mut features = Vec::new();
    for feature in sealing::req_arr(v, "features")? {
        let name = sealing::req_str(feature, "name")?.to_string();
        let sorted = [
            sealing::req_f64_vec(feature, "unprivileged")?,
            sealing::req_f64_vec(feature, "privileged")?,
        ];
        for group in &sorted {
            if group.is_empty() {
                return Err(sealing::seal_err(
                    "di_remover feature has an empty group distribution",
                ));
            }
            if group.windows(2).any(|w| w[0].total_cmp(&w[1]).is_gt()) {
                return Err(sealing::seal_err(
                    "di_remover group distribution is not sorted",
                ));
            }
        }
        features.push(FeatureRepair { name, sorted });
    }
    Ok(FittedDiRemover {
        repair_level,
        features,
    })
}

impl FittedDiRemover {
    fn repair_dataset(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        // audit: allow(float-eq, reason = "repair level 0.0 is the exact user-supplied no-op configuration")
        if self.repair_level == 0.0 {
            return Ok(data.clone());
        }
        let mask = data.privileged_mask().to_vec();
        let mut out = data.clone();
        for feature in &self.features {
            let col = data.frame().column(&feature.name)?;
            let values = col.as_numeric()?;
            let repaired: Vec<Option<f64>> = values
                .iter()
                .enumerate()
                .map(|(i, v)| v.map(|v| feature.repair(usize::from(mask[i]), v, self.repair_level)))
                .collect();
            out.replace_column(&feature.name, Column::from_optional_f64(repaired))?;
        }
        Ok(out)
    }
}

impl FittedPreprocessor for FittedDiRemover {
    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        self.repair_dataset(train)
    }

    fn transform_eval(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        self.repair_dataset(data)
    }

    fn seal(&self) -> Result<Value> {
        let features: Vec<Value> = self
            .features
            .iter()
            .map(|f| {
                obj(vec![
                    ("name", Value::Str(f.name.clone())),
                    ("unprivileged", Value::bits_vec(&f.sorted[0])),
                    ("privileged", Value::bits_vec(&f.sorted[1])),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("repair_level", Value::bits(self.repair_level)),
            ("features", Value::Arr(features)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::test_support::biased_dataset;

    fn column_values(ds: &BinaryLabelDataset, name: &str) -> Vec<f64> {
        ds.frame()
            .column(name)
            .unwrap()
            .as_numeric()
            .unwrap()
            .iter()
            .map(|v| v.unwrap())
            .collect()
    }

    #[test]
    fn zero_repair_is_identity() {
        let ds = biased_dataset(60);
        let fitted = DisparateImpactRemover::new(0.0).fit(&ds, 0).unwrap();
        let out = fitted.transform_train(&ds).unwrap();
        assert_eq!(out.frame(), ds.frame());
    }

    #[test]
    fn full_repair_aligns_group_distributions() {
        let ds = biased_dataset(200);
        let fitted = DisparateImpactRemover::new(1.0).fit(&ds, 0).unwrap();
        let out = fitted.transform_train(&ds).unwrap();
        let values = column_values(&out, "score");
        let mask = out.privileged_mask();
        let mean = |privileged: bool| -> f64 {
            let xs: Vec<f64> = values
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m == privileged)
                .map(|(&v, _)| v)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let gap_after = (mean(true) - mean(false)).abs();
        // Original gap is 30; full repair must nearly close it.
        assert!(gap_after < 2.0, "gap after full repair: {gap_after}");
    }

    #[test]
    fn partial_repair_is_between() {
        let ds = biased_dataset(200);
        let orig = column_values(&ds, "score");
        let half = DisparateImpactRemover::new(0.5)
            .fit(&ds, 0)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let full = DisparateImpactRemover::new(1.0)
            .fit(&ds, 0)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let half_v = column_values(&half, "score");
        let full_v = column_values(&full, "score");
        for i in 0..orig.len() {
            let expected = 0.5 * (orig[i] + full_v[i]);
            assert!((half_v[i] - expected).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn rank_order_within_groups_is_preserved() {
        let ds = biased_dataset(100);
        let orig = column_values(&ds, "score");
        let out = DisparateImpactRemover::new(1.0)
            .fit(&ds, 0)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        let repaired = column_values(&out, "score");
        let mask = ds.privileged_mask();
        for privileged in [true, false] {
            let idx: Vec<usize> = (0..100).filter(|&i| mask[i] == privileged).collect();
            for a in 0..idx.len() {
                for b in a + 1..idx.len() {
                    let (i, j) = (idx[a], idx[b]);
                    if orig[i] < orig[j] {
                        assert!(
                            repaired[i] <= repaired[j] + 1e-9,
                            "rank inversion at ({i}, {j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn labels_and_weights_are_untouched() {
        let ds = biased_dataset(60);
        let out = DisparateImpactRemover::new(1.0)
            .fit(&ds, 0)
            .unwrap()
            .transform_train(&ds)
            .unwrap();
        assert_eq!(out.labels(), ds.labels());
        assert_eq!(out.instance_weights(), ds.instance_weights());
    }

    #[test]
    fn eval_split_is_repaired_with_train_statistics() {
        let ds = biased_dataset(200);
        let train_idx: Vec<usize> = (0..150).collect();
        let test_idx: Vec<usize> = (150..200).collect();
        let train = ds.take(&train_idx);
        let test = ds.take(&test_idx);
        let fitted = DisparateImpactRemover::new(1.0).fit(&train, 0).unwrap();
        let out = fitted.transform_eval(&test).unwrap();
        // Test rows must change (they carry the group gap).
        assert_ne!(column_values(&out, "score"), column_values(&test, "score"));
        // And labels stay fixed.
        assert_eq!(out.labels(), test.labels());
    }

    #[test]
    fn invalid_repair_level_rejected() {
        let ds = biased_dataset(20);
        assert!(DisparateImpactRemover::new(1.5).fit(&ds, 0).is_err());
        assert!(DisparateImpactRemover::new(-0.1).fit(&ds, 0).is_err());
        assert!(DisparateImpactRemover::new(f64::NAN).fit(&ds, 0).is_err());
    }

    #[test]
    fn name_includes_repair_level() {
        assert_eq!(DisparateImpactRemover::new(0.5).name(), "di_remover(0.5)");
    }
}
