//! Pre-processing fairness interventions.
//!
//! A [`Preprocessor`] is fitted on the training set only; the fitted form
//! then transforms the training set (possibly changing instance weights,
//! labels, or feature values) and — for feature-repairing techniques — the
//! evaluation splits. FairPrep "provides information about protected and
//! unprotected groups in the dataset to the preprocessing intervention"
//! (§4): interventions read the group mask directly off the dataset.

pub mod di_remover;
pub mod massaging;
pub mod preferential_sampling;
pub mod reweighing;

use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::Result;
use fairprep_trace::{Stage, Tracer};

pub use di_remover::DisparateImpactRemover;
pub use massaging::Massaging;
pub use preferential_sampling::PreferentialSampling;
pub use reweighing::Reweighing;

/// A pre-processing fairness-enhancing intervention.
pub trait Preprocessor: Send + Sync {
    /// Stable name (with parameters) for run metadata.
    fn name(&self) -> String;

    /// Learns the intervention's statistics from the **training** set.
    fn fit(&self, train: &BinaryLabelDataset, seed: u64) -> Result<Box<dyn FittedPreprocessor>>;

    /// Like [`Preprocessor::fit`], recording a `preprocess` span on
    /// `tracer`. The default wraps `fit`, so existing interventions
    /// participate in tracing without changes.
    fn fit_traced(
        &self,
        train: &BinaryLabelDataset,
        seed: u64,
        tracer: &Tracer,
    ) -> Result<Box<dyn FittedPreprocessor>> {
        let _span = tracer.span(Stage::Preprocess);
        self.fit(train, seed)
    }
}

/// A fitted pre-processing intervention.
pub trait FittedPreprocessor: Send + Sync {
    /// Transforms the training set. May edit instance weights (reweighing),
    /// labels (massaging), or feature values (disparate-impact removal).
    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset>;

    /// Transforms an evaluation split (validation/test). Only feature
    /// edits are legal here — labels and weights of held-out data must never
    /// change. The default is the identity.
    fn transform_eval(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        Ok(data.clone())
    }
}

/// The no-op intervention (the "no intervention" arm of every figure).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIntervention;

impl Preprocessor for NoIntervention {
    fn name(&self) -> String {
        "no_intervention".to_string()
    }

    fn fit(&self, train: &BinaryLabelDataset, _seed: u64) -> Result<Box<dyn FittedPreprocessor>> {
        train.guard_fit("NoIntervention::fit");
        Ok(Box::new(FittedNoIntervention))
    }
}

struct FittedNoIntervention;

impl FittedPreprocessor for FittedNoIntervention {
    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        Ok(train.clone())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use fairprep_data::column::{Column, ColumnKind};
    use fairprep_data::dataset::BinaryLabelDataset;
    use fairprep_data::frame::DataFrame;
    use fairprep_data::schema::{ProtectedAttribute, Schema};

    /// A biased dataset: the privileged group ("m") has a much higher
    /// positive rate and systematically higher scores.
    pub(crate) fn biased_dataset(n: usize) -> BinaryLabelDataset {
        let mut scores = Vec::with_capacity(n);
        let mut sexes = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let privileged = i % 2 == 0;
            // Deterministic pseudo-noise.
            let noise = ((i * 37) % 13) as f64 / 13.0;
            let score = if privileged {
                60.0 + 30.0 * noise
            } else {
                30.0 + 30.0 * noise
            };
            let positive = if privileged {
                noise > 0.25
            } else {
                noise > 0.75
            };
            scores.push(score);
            sexes.push(if privileged { "m" } else { "f" });
            labels.push(if positive { "yes" } else { "no" });
        }
        let frame = DataFrame::new()
            .with_column("score", Column::from_f64(scores))
            .unwrap()
            .with_column("sex", Column::from_strs(sexes))
            .unwrap()
            .with_column("y", Column::from_strs(labels))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("score")
            .metadata("sex", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("sex", &["m"]),
            "yes",
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::biased_dataset;
    use super::*;

    #[test]
    fn no_intervention_is_identity() {
        let ds = biased_dataset(20);
        let fitted = NoIntervention.fit(&ds, 0).unwrap();
        let train = fitted.transform_train(&ds).unwrap();
        assert_eq!(train.frame(), ds.frame());
        assert_eq!(train.instance_weights(), ds.instance_weights());
        let eval = fitted.transform_eval(&ds).unwrap();
        assert_eq!(eval.frame(), ds.frame());
    }

    #[test]
    fn biased_fixture_is_actually_biased() {
        let ds = biased_dataset(100);
        let priv_rate = ds.base_rate(Some(true));
        let unpriv_rate = ds.base_rate(Some(false));
        assert!(
            priv_rate > unpriv_rate + 0.3,
            "priv {priv_rate} unpriv {unpriv_rate}"
        );
    }
}
