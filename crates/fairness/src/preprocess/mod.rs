//! Pre-processing fairness interventions.
//!
//! A [`Preprocessor`] is fitted on the training set only; the fitted form
//! then transforms the training set (possibly changing instance weights,
//! labels, or feature values) and — for feature-repairing techniques — the
//! evaluation splits. FairPrep "provides information about protected and
//! unprotected groups in the dataset to the preprocessing intervention"
//! (§4): interventions read the group mask directly off the dataset.

pub mod di_remover;
pub mod massaging;
pub mod preferential_sampling;
pub mod reweighing;

use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value};
use fairprep_trace::{Stage, Tracer};

pub use di_remover::DisparateImpactRemover;
pub use massaging::Massaging;
pub use preferential_sampling::PreferentialSampling;
pub use reweighing::Reweighing;

/// A pre-processing fairness-enhancing intervention.
pub trait Preprocessor: Send + Sync {
    /// Stable name (with parameters) for run metadata.
    fn name(&self) -> String;

    /// Learns the intervention's statistics from the **training** set.
    fn fit(&self, train: &BinaryLabelDataset, seed: u64) -> Result<Box<dyn FittedPreprocessor>>;

    /// Like [`Preprocessor::fit`], recording a `preprocess` span on
    /// `tracer`. The default wraps `fit`, so existing interventions
    /// participate in tracing without changes.
    fn fit_traced(
        &self,
        train: &BinaryLabelDataset,
        seed: u64,
        tracer: &Tracer,
    ) -> Result<Box<dyn FittedPreprocessor>> {
        let _span = tracer.span(Stage::Preprocess);
        self.fit(train, seed)
    }
}

/// A fitted pre-processing intervention.
pub trait FittedPreprocessor: Send + Sync {
    /// Transforms the training set. May edit instance weights (reweighing),
    /// labels (massaging), or feature values (disparate-impact removal).
    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset>;

    /// Transforms an evaluation split (validation/test). Only feature
    /// edits are legal here — labels and weights of held-out data must never
    /// change. The default is the identity.
    fn transform_eval(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        Ok(data.clone())
    }

    /// Serializes the fitted intervention into a sealed-pipeline component
    /// record, reloadable via [`unseal_preprocessor`]. The default refuses
    /// with a typed error so experimental interventions stay usable
    /// in-process without silently sealing an unservable pipeline.
    fn seal(&self) -> Result<Value> {
        Err(Error::Seal(
            "this preprocessor does not support sealing".to_string(),
        ))
    }
}

/// Reconstructs a fitted preprocessor from a sealed component record,
/// dispatching on its `"kind"` tag. The inverse of
/// [`FittedPreprocessor::seal`] for every intervention this crate ships.
pub fn unseal_preprocessor(v: &Value) -> Result<Box<dyn FittedPreprocessor>> {
    match sealing::kind_of(v)? {
        "no_intervention" => Ok(Box::new(FittedNoIntervention)),
        reweighing::KIND => Ok(Box::new(reweighing::FittedReweighing::unseal(v)?)),
        di_remover::KIND => Ok(Box::new(di_remover::unseal_di_remover(v)?)),
        massaging::KIND => Ok(Box::new(massaging::unseal_massaging(v)?)),
        preferential_sampling::KIND => Ok(Box::new(
            preferential_sampling::unseal_preferential_sampling(v)?,
        )),
        other => Err(Error::Seal(format!("unknown preprocessor kind {other:?}"))),
    }
}

/// The no-op intervention (the "no intervention" arm of every figure).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIntervention;

impl Preprocessor for NoIntervention {
    fn name(&self) -> String {
        "no_intervention".to_string()
    }

    fn fit(&self, train: &BinaryLabelDataset, _seed: u64) -> Result<Box<dyn FittedPreprocessor>> {
        train.guard_fit("NoIntervention::fit");
        Ok(Box::new(FittedNoIntervention))
    }
}

struct FittedNoIntervention;

impl FittedPreprocessor for FittedNoIntervention {
    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        Ok(train.clone())
    }

    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![(
            "kind",
            Value::Str("no_intervention".to_string()),
        )]))
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use fairprep_data::column::{Column, ColumnKind};
    use fairprep_data::dataset::BinaryLabelDataset;
    use fairprep_data::frame::DataFrame;
    use fairprep_data::schema::{ProtectedAttribute, Schema};

    /// A biased dataset: the privileged group ("m") has a much higher
    /// positive rate and systematically higher scores.
    pub(crate) fn biased_dataset(n: usize) -> BinaryLabelDataset {
        let mut scores = Vec::with_capacity(n);
        let mut sexes = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let privileged = i % 2 == 0;
            // Deterministic pseudo-noise.
            let noise = ((i * 37) % 13) as f64 / 13.0;
            let score = if privileged {
                60.0 + 30.0 * noise
            } else {
                30.0 + 30.0 * noise
            };
            let positive = if privileged {
                noise > 0.25
            } else {
                noise > 0.75
            };
            scores.push(score);
            sexes.push(if privileged { "m" } else { "f" });
            labels.push(if positive { "yes" } else { "no" });
        }
        let frame = DataFrame::new()
            .with_column("score", Column::from_f64(scores))
            .unwrap()
            .with_column("sex", Column::from_strs(sexes))
            .unwrap()
            .with_column("y", Column::from_strs(labels))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("score")
            .metadata("sex", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("sex", &["m"]),
            "yes",
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::biased_dataset;
    use super::*;

    #[test]
    fn no_intervention_is_identity() {
        let ds = biased_dataset(20);
        let fitted = NoIntervention.fit(&ds, 0).unwrap();
        let train = fitted.transform_train(&ds).unwrap();
        assert_eq!(train.frame(), ds.frame());
        assert_eq!(train.instance_weights(), ds.instance_weights());
        let eval = fitted.transform_eval(&ds).unwrap();
        assert_eq!(eval.frame(), ds.frame());
    }

    /// Every shipped preprocessor seals, unseals through the full
    /// serialize → parse cycle, and transforms identically afterwards.
    #[test]
    fn every_preprocessor_seals_and_unseals_identically() {
        let ds = biased_dataset(80);
        let preprocessors: Vec<Box<dyn Preprocessor>> = vec![
            Box::new(NoIntervention),
            Box::new(Reweighing),
            Box::new(DisparateImpactRemover::new(0.7)),
            Box::new(Massaging),
            Box::new(PreferentialSampling),
        ];
        for pre in preprocessors {
            let fitted = pre.fit(&ds, 11).unwrap();
            let sealed = fitted.seal().unwrap();
            let reparsed = fairprep_trace::json::parse(&sealed.to_json()).unwrap();
            let reloaded = unseal_preprocessor(&reparsed).unwrap();
            assert_eq!(
                fitted.transform_train(&ds).unwrap(),
                reloaded.transform_train(&ds).unwrap(),
                "{} train transform drifted",
                pre.name()
            );
            assert_eq!(
                fitted.transform_eval(&ds).unwrap(),
                reloaded.transform_eval(&ds).unwrap(),
                "{} eval transform drifted",
                pre.name()
            );
        }
    }

    #[test]
    fn unseal_rejects_unknown_kind_and_malformed_records() {
        let err_of = |v: &Value| match unseal_preprocessor(v) {
            Ok(_) => panic!("malformed record unsealed"),
            Err(e) => e,
        };
        let unknown = obj(vec![("kind", Value::Str("oversampling".into()))]);
        assert!(matches!(err_of(&unknown), Error::Seal(_)));
        let missing_kind = obj(vec![("weights", Value::bits_vec(&[1.0]))]);
        assert!(matches!(err_of(&missing_kind), Error::Seal(_)));
        // Reweighing with the wrong cell count is a typed error.
        let truncated = obj(vec![
            ("kind", Value::Str("reweighing".into())),
            ("weights", Value::bits_vec(&[1.0, 2.0])),
        ]);
        assert!(matches!(err_of(&truncated), Error::Seal(_)));
        // An unsorted di_remover distribution would corrupt quantile lookups.
        let unsorted = obj(vec![
            ("kind", Value::Str("di_remover".into())),
            ("repair_level", Value::bits(0.5)),
            (
                "features",
                Value::Arr(vec![obj(vec![
                    ("name", Value::Str("score".into())),
                    ("unprivileged", Value::bits_vec(&[3.0, 1.0])),
                    ("privileged", Value::bits_vec(&[1.0, 2.0])),
                ])]),
            ),
        ]);
        assert!(matches!(err_of(&unsorted), Error::Seal(_)));
    }

    #[test]
    fn biased_fixture_is_actually_biased() {
        let ds = biased_dataset(100);
        let priv_rate = ds.base_rate(Some(true));
        let unpriv_rate = ds.base_rate(Some(false));
        assert!(
            priv_rate > unpriv_rate + 0.3,
            "priv {priv_rate} unpriv {unpriv_rate}"
        );
    }
}
