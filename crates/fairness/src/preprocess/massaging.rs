//! Massaging [Kamiran & Calders, 2012] — relabeling-based preprocessing.
//!
//! One of the "additional fairness-enhancing interventions" the paper lists
//! as future work (§7). Massaging flips the labels of carefully-chosen
//! training instances until the training base rates of the two groups are
//! equal: the most promising unprivileged negatives are promoted and the
//! least promising privileged positives are demoted, where "promising" is
//! scored by an internal ranker trained on the training data.
//!
//! Only training labels change; evaluation data is never modified.

// audit: allow-file(float-eq, reason = "group counts are integral f64 casts and labels are exactly 0.0/1.0 by construction")
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_ml::model::{Classifier, LogisticRegressionSgd};
use fairprep_ml::sealing;
use fairprep_ml::transform::{FittedFeaturizer, ScalerSpec};
use fairprep_trace::json::{obj, Value};

use crate::preprocess::{FittedPreprocessor, Preprocessor};

pub(crate) const KIND: &str = "massaging";

/// The massaging intervention.
#[derive(Debug, Clone, Copy, Default)]
pub struct Massaging;

impl Preprocessor for Massaging {
    fn name(&self) -> String {
        "massaging".to_string()
    }

    fn fit(&self, train: &BinaryLabelDataset, seed: u64) -> Result<Box<dyn FittedPreprocessor>> {
        train.guard_fit("Massaging::fit");
        // The ranker is fitted here once; relabeling happens per
        // transform_train call (idempotent for the same input).
        let featurizer = FittedFeaturizer::fit(train, ScalerSpec::Standard)?;
        let x = featurizer.transform(train)?;
        let ranker = LogisticRegressionSgd::default().fit(
            &x,
            train.labels(),
            train.instance_weights(),
            seed,
        )?;
        let scores = ranker.predict_proba(&x)?;
        Ok(Box::new(FittedMassaging { featurizer, scores }))
    }
}

pub(crate) struct FittedMassaging {
    featurizer: FittedFeaturizer,
    /// Ranker scores of the training set the intervention was fitted on.
    scores: Vec<f64>,
}

/// Reconstructs a fitted massaging intervention from a sealed record.
pub(crate) fn unseal_massaging(v: &Value) -> Result<FittedMassaging> {
    let featurizer = FittedFeaturizer::unseal(sealing::req(v, "featurizer")?)?;
    let scores = sealing::req_f64_vec(v, "scores")?;
    if scores.is_empty() {
        return Err(sealing::seal_err("massaging record has no ranker scores"));
    }
    Ok(FittedMassaging { featurizer, scores })
}

impl FittedPreprocessor for FittedMassaging {
    fn transform_train(&self, train: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        // Recompute scores if the caller hands a different (e.g. resampled)
        // training set than the one fitted on.
        let scores = if train.n_rows() == self.scores.len() {
            self.scores.clone()
        } else {
            let x = self.featurizer.transform(train)?;
            // The featurizer is fixed; a fresh linear ranker on the fitted
            // features keeps determinism without re-fitting transforms.
            let ranker = LogisticRegressionSgd::default().fit(
                &x,
                train.labels(),
                train.instance_weights(),
                0,
            )?;
            ranker.predict_proba(&x)?
        };

        let mask = train.privileged_mask();
        let mut labels = train.labels().to_vec();

        // How many flips equalize the base rates?
        // After m promotions (unpriv 0→1) and m demotions (priv 1→0):
        //   (pos_u + m) / n_u = (pos_p − m) / n_p
        // → m = (pos_p · n_u − pos_u · n_p) / (n_u + n_p)
        let n_p = mask.iter().filter(|&&m| m).count() as f64;
        let n_u = mask.len() as f64 - n_p;
        if n_p == 0.0 || n_u == 0.0 {
            return Err(Error::EmptyGroup {
                privileged: n_p == 0.0,
            });
        }
        let pos_p: f64 = labels
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m)
            .map(|(&y, _)| y)
            .sum();
        let pos_u: f64 = labels
            .iter()
            .zip(mask)
            .filter(|(_, &m)| !m)
            .map(|(&y, _)| y)
            .sum();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let m = (((pos_p * n_u - pos_u * n_p) / (n_u + n_p)).round().max(0.0)) as usize;

        if m > 0 {
            // Candidate promotions: unprivileged negatives by descending score.
            let mut promotions: Vec<usize> = (0..labels.len())
                .filter(|&i| !mask[i] && labels[i] == 0.0)
                .collect();
            promotions.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            // Candidate demotions: privileged positives by ascending score.
            let mut demotions: Vec<usize> = (0..labels.len())
                .filter(|&i| mask[i] && labels[i] == 1.0)
                .collect();
            demotions.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

            let flips = m.min(promotions.len()).min(demotions.len());
            for &i in promotions.iter().take(flips) {
                labels[i] = 1.0;
            }
            for &i in demotions.iter().take(flips) {
                labels[i] = 0.0;
            }
        }

        let mut out = train.clone();
        out.set_labels(labels)?;
        Ok(out)
    }

    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("featurizer", self.featurizer.seal()),
            ("scores", Value::bits_vec(&self.scores)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::test_support::biased_dataset;

    #[test]
    fn base_rates_are_equalized() {
        let ds = biased_dataset(200);
        let before_gap = ds.base_rate(Some(true)) - ds.base_rate(Some(false));
        assert!(before_gap > 0.3);

        let out = Massaging.fit(&ds, 1).unwrap().transform_train(&ds).unwrap();
        let after_gap = out.base_rate(Some(true)) - out.base_rate(Some(false));
        assert!(after_gap.abs() < 0.03, "gap after massaging: {after_gap}");
    }

    #[test]
    fn total_positive_count_is_preserved() {
        let ds = biased_dataset(200);
        let out = Massaging.fit(&ds, 1).unwrap().transform_train(&ds).unwrap();
        let before: f64 = ds.labels().iter().sum();
        let after: f64 = out.labels().iter().sum();
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn features_and_weights_are_untouched() {
        let ds = biased_dataset(100);
        let out = Massaging.fit(&ds, 1).unwrap().transform_train(&ds).unwrap();
        assert_eq!(
            out.frame().column("score").unwrap(),
            ds.frame().column("score").unwrap()
        );
        assert_eq!(out.instance_weights(), ds.instance_weights());
    }

    #[test]
    fn eval_split_is_untouched() {
        let ds = biased_dataset(100);
        let fitted = Massaging.fit(&ds, 1).unwrap();
        let eval = fitted.transform_eval(&ds).unwrap();
        assert_eq!(eval.labels(), ds.labels());
    }

    #[test]
    fn already_fair_data_is_unchanged() {
        use fairprep_data::column::{Column, ColumnKind};
        use fairprep_data::frame::DataFrame;
        use fairprep_data::schema::{ProtectedAttribute, Schema};
        let n = 40;
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(|i| f64::from(i % 7))))
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })),
            )
            .unwrap()
            .with_column(
                "y",
                Column::from_strs((0..n).map(|i| if (i / 2) % 2 == 0 { "p" } else { "n" })),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap();
        let out = Massaging.fit(&ds, 0).unwrap().transform_train(&ds).unwrap();
        assert_eq!(out.labels(), ds.labels());
    }
}
