//! Sequence helpers: in-place shuffling and uniform element choice.

use crate::Rng;

/// In-place Fisher–Yates shuffle.
pub trait SliceRandom {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Uniform choice of one element by index.
pub trait IndexedRandom {
    type Output;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
