//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses. The build environment has no registry access, so the workspace
//! resolves `rand` to this path dependency instead of crates.io.
//!
//! Scope: `Rng::random` / `Rng::random_range`, `SeedableRng::seed_from_u64`,
//! [`rngs::StdRng`], and the `seq` slice helpers (`shuffle`, `choose`).
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng`, which is fine because nothing in the
//! workspace asserts golden values, only run-to-run determinism.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (`[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased uniform draw from `[0, bound)` by rejection sampling.
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject the low `2^64 mod bound` values so every residue class is
    // equally likely.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % bound;
        }
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = uniform_below(rng, span);
                (self.start as i128 + i128::from(v)) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let v = match span.checked_add(1) {
                    Some(bound) => uniform_below(rng, bound),
                    None => rng.next_u64(),
                };
                (lo as i128 + i128::from(v)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v = rng.random_range(1..=4);
            assert!((1..=4).contains(&v));
            seen[(v - 1) as usize] = true;
            let u = rng.random_range(0..17usize);
            assert!(u < 17);
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "inclusive range missed a value");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        use crate::seq::{IndexedRandom, SliceRandom};
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        assert!(Vec::<usize>::new().choose(&mut rng).is_none());
    }
}
