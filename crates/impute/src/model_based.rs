//! Learned, per-column imputation — the Datawig substitute.
//!
//! Datawig [Biessmann et al., CIKM'18] "auto-featurizes data and learns a
//! deep learning model tailored to the data for imputation. Its
//! implementation focuses on imputing one column at a time ... We utilize
//! this approach in the fit method to learn an imputation model for each
//! feature using the remaining features (but not the class label) in the
//! training dataset as input. At imputation time ... each of the fitted
//! models is applied on the target data to impute the missing attributes."
//! (§4)
//!
//! This implementation keeps exactly that structure — auto-featurized
//! inputs, one learned model per target column, fit on training data only —
//! but replaces the deep network with linear models (one-vs-rest logistic
//! regression for categorical targets, SGD ridge regression for numeric
//! targets). The paper itself observes that on `adult` "datawig does no
//! worse than mode" because the imputed attributes are highly skewed; a
//! linear learned imputer preserves that finding while exercising the same
//! lifecycle code path.

use fairprep_data::column::{ColumnKind, OwnedValue, Value};
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_data::rng::derive_seed;
use fairprep_ml::matrix::{dot, Matrix};
use fairprep_ml::model::{
    Classifier, FittedClassifier, LogisticRegressionConfig, LogisticRegressionSgd, Penalty,
};
use fairprep_ml::sealing;
use fairprep_ml::transform::OneHotEncoder;
use fairprep_trace::json::{obj, Value as Json};

use crate::{FittedMissingValueHandler, MissingValueHandler};

/// Learned per-column imputer (Datawig substitute).
#[derive(Debug, Clone)]
pub struct ModelBasedImputer {
    /// Columns to learn imputation models for. `None` imputes every feature
    /// column that contains missing values in the training data.
    pub target_columns: Option<Vec<String>>,
    /// Training epochs for the per-column models.
    pub epochs: usize,
}

impl Default for ModelBasedImputer {
    fn default() -> Self {
        ModelBasedImputer {
            target_columns: None,
            epochs: 15,
        }
    }
}

impl ModelBasedImputer {
    /// Imputer for an explicit set of target columns (the `DatawigImputer
    /// ('age')` pattern from the paper's §4 example).
    #[must_use]
    pub fn for_columns(columns: &[&str]) -> Self {
        ModelBasedImputer {
            target_columns: Some(columns.iter().map(ToString::to_string).collect()),
            epochs: 15,
        }
    }
}

impl MissingValueHandler for ModelBasedImputer {
    fn name(&self) -> String {
        "model_based_imputation".to_string()
    }

    fn fit(
        &self,
        train: &BinaryLabelDataset,
        seed: u64,
    ) -> Result<Box<dyn FittedMissingValueHandler>> {
        train.guard_fit("ModelBasedImputer::fit");
        let label = train.schema().label_name()?.to_string();
        let feature_columns: Vec<String> = train
            .frame()
            .column_names()
            .iter()
            .filter(|n| **n != label)
            .cloned()
            .collect();

        let targets: Vec<String> = match &self.target_columns {
            Some(cols) => {
                for c in cols {
                    if !train.frame().has_column(c) {
                        return Err(Error::ColumnNotFound(c.clone()));
                    }
                    if *c == label {
                        return Err(Error::InvalidParameter {
                            name: "target_columns",
                            message: "the class label cannot be an imputation target".to_string(),
                        });
                    }
                }
                cols.clone()
            }
            None => feature_columns
                .iter()
                .filter(|name| {
                    train
                        .frame()
                        .column(name)
                        .map(|c| c.missing_count() > 0)
                        .unwrap_or(false)
                })
                .cloned()
                .collect(),
        };

        let mut models = Vec::with_capacity(targets.len());
        for target in &targets {
            let model = ColumnModel::fit(
                train,
                target,
                &feature_columns,
                self.epochs,
                derive_seed(seed, &format!("imputer/{target}")),
            )?;
            models.push(model);
        }

        // Mode fallback for columns without a learned model, so that a split
        // with unexpected missingness still comes out complete.
        let fallback = crate::column_fills(train, crate::FillStrategy::Mode)?;

        Ok(Box::new(FittedModelBasedImputer { models, fallback }))
    }
}

/// Input featurization for one source column of an imputation model.
#[derive(Debug, Clone)]
enum InputEncoding {
    /// Standardize with train statistics; missing cells map to the mean
    /// (i.e., zero after standardization).
    Numeric { mean: f64, std: f64 },
    /// One-hot with unseen slot; missing cells map to all-zeros.
    Categorical(OneHotEncoder),
}

impl InputEncoding {
    fn width(&self) -> usize {
        match self {
            InputEncoding::Numeric { .. } => 1,
            InputEncoding::Categorical(enc) => enc.width(),
        }
    }

    fn encode_into(&self, value: &Value<'_>, out: &mut [f64]) -> Result<()> {
        match self {
            InputEncoding::Numeric { mean, std } => {
                let x = value.as_numeric().unwrap_or(*mean);
                // audit: allow(index-literal, reason = "Numeric encodings have width 1, so the destination slot always exists")
                out[0] = if *std > 0.0 { (x - mean) / std } else { 0.0 };
                Ok(())
            }
            InputEncoding::Categorical(enc) => enc.encode_into(value.as_categorical(), out),
        }
    }
}

/// The learned predictor for one target column.
enum TargetModel {
    /// One-vs-rest logistic models, one per training category.
    Categorical {
        categories: Vec<String>,
        models: Vec<Box<dyn FittedClassifier>>,
    },
    /// Linear regression on the standardized target.
    Numeric {
        weights: Vec<f64>,
        intercept: f64,
        mean: f64,
        std: f64,
    },
}

struct ColumnModel {
    target: String,
    inputs: Vec<(String, InputEncoding)>,
    width: usize,
    model: TargetModel,
}

impl ColumnModel {
    fn fit(
        train: &BinaryLabelDataset,
        target: &str,
        feature_columns: &[String],
        epochs: usize,
        seed: u64,
    ) -> Result<ColumnModel> {
        // Build the input encoding from all feature columns except the target.
        let mut inputs = Vec::new();
        for name in feature_columns {
            if name == target {
                continue;
            }
            let col = train.frame().column(name)?;
            let encoding = match col.kind() {
                ColumnKind::Numeric => {
                    let values: Vec<f64> = col.as_numeric()?.iter().flatten().copied().collect();
                    if values.is_empty() {
                        // Entirely-missing input: contribute a constant zero.
                        InputEncoding::Numeric {
                            mean: 0.0,
                            std: 0.0,
                        }
                    } else {
                        let n = values.len() as f64;
                        let mean = values.iter().sum::<f64>() / n;
                        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                        InputEncoding::Numeric {
                            mean,
                            std: var.sqrt(),
                        }
                    }
                }
                ColumnKind::Categorical => InputEncoding::Categorical(OneHotEncoder::fit(col)?),
            };
            inputs.push((name.clone(), encoding));
        }
        let width: usize = inputs.iter().map(|(_, e)| e.width()).sum();

        // Rows where the target is observed form the supervised training set.
        let target_col = train.frame().column(target)?;
        let observed: Vec<usize> = (0..train.n_rows())
            .filter(|&i| !target_col.is_missing(i))
            .collect();
        if observed.is_empty() {
            return Err(Error::EmptyData(format!(
                "imputation target {target} has no observed training values"
            )));
        }

        let mut x = Matrix::zeros(observed.len(), width);
        for (r, &i) in observed.iter().enumerate() {
            encode_row(train, &inputs, i, x.row_mut(r))?;
        }

        let model = match target_col.kind() {
            ColumnKind::Categorical => {
                let values: Vec<String> = observed
                    .iter()
                    .map(|&i| {
                        target_col
                            .get(i)
                            .as_categorical()
                            // audit: allow(expect, reason = "rows were filtered to non-missing target cells just above")
                            .expect("observed categorical")
                            .to_string()
                    })
                    .collect();
                let mut categories: Vec<String> = Vec::new();
                for v in &values {
                    if !categories.contains(v) {
                        categories.push(v.clone());
                    }
                }
                let learner = LogisticRegressionSgd::new(LogisticRegressionConfig {
                    penalty: Penalty::L2,
                    alpha: 1e-4,
                    max_epochs: epochs,
                    ..Default::default()
                });
                let weights = vec![1.0; observed.len()];
                let mut models = Vec::with_capacity(categories.len());
                for (c_ix, category) in categories.iter().enumerate() {
                    let y: Vec<f64> = values
                        .iter()
                        .map(|v| f64::from(u8::from(v == category)))
                        .collect();
                    models.push(learner.fit(
                        &x,
                        &y,
                        &weights,
                        derive_seed(seed, &format!("ovr/{c_ix}")),
                    )?);
                }
                TargetModel::Categorical { categories, models }
            }
            ColumnKind::Numeric => {
                let ys: Vec<f64> = observed
                    .iter()
                    // audit: allow(expect, reason = "rows were filtered to non-missing target cells just above")
                    .map(|&i| target_col.get(i).as_numeric().expect("observed numeric"))
                    .collect();
                let n = ys.len() as f64;
                let mean = ys.iter().sum::<f64>() / n;
                let var = ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / n;
                let std = var.sqrt();
                let standardized: Vec<f64> = if std > 0.0 {
                    ys.iter().map(|y| (y - mean) / std).collect()
                } else {
                    vec![0.0; ys.len()]
                };
                let (weights, intercept) = fit_ridge_sgd(&x, &standardized, epochs, 1e-4, seed);
                TargetModel::Numeric {
                    weights,
                    intercept,
                    mean,
                    std,
                }
            }
        };

        Ok(ColumnModel {
            target: target.to_string(),
            inputs,
            width,
            model,
        })
    }

    /// Predicts the target value for row `i` of `data`.
    fn predict(&self, data: &BinaryLabelDataset, i: usize) -> Result<OwnedValue> {
        let mut row = vec![0.0; self.width];
        encode_row(data, &self.inputs, i, &mut row)?;
        match &self.model {
            TargetModel::Categorical { categories, models } => {
                let x = Matrix::from_vec(1, self.width, row)?;
                let mut best = (0usize, f64::NEG_INFINITY);
                for (c_ix, model) in models.iter().enumerate() {
                    let p = model.predict_proba(&x)?[0];
                    if p > best.1 {
                        best = (c_ix, p);
                    }
                }
                Ok(OwnedValue::Categorical(categories[best.0].clone()))
            }
            TargetModel::Numeric {
                weights,
                intercept,
                mean,
                std,
            } => {
                let z = dot(weights, &row) + intercept;
                let v = z * std + mean;
                Ok(OwnedValue::Numeric(if v.is_finite() { v } else { *mean }))
            }
        }
    }
}

/// Encodes the input features of row `i` into `out`.
fn encode_row(
    data: &BinaryLabelDataset,
    inputs: &[(String, InputEncoding)],
    i: usize,
    out: &mut [f64],
) -> Result<()> {
    let mut offset = 0usize;
    for (name, enc) in inputs {
        let col = data.frame().column(name)?;
        let value = col.get(i);
        let w = enc.width();
        enc.encode_into(&value, &mut out[offset..offset + w])?;
        offset += w;
    }
    Ok(())
}

/// Plain SGD ridge regression on a standardized target.
fn fit_ridge_sgd(x: &Matrix, y: &[f64], epochs: usize, alpha: f64, seed: u64) -> (Vec<f64>, f64) {
    use rand::seq::SliceRandom;
    let mut rng = fairprep_data::rng::component_rng(seed, "imputer/ridge");
    let d = x.n_cols();
    let mut w = vec![0.0_f64; d];
    let mut b = 0.0_f64;
    let mut order: Vec<usize> = (0..x.n_rows()).collect();
    let mut t: u64 = 0;
    for _ in 0..epochs.max(1) {
        order.shuffle(&mut rng);
        for &i in &order {
            t += 1;
            #[allow(clippy::cast_precision_loss)]
            let eta = 0.05 / (t as f64).powf(0.25);
            let row = x.row(i);
            let err = dot(&w, row) + b - y[i];
            for (wj, &xj) in w.iter_mut().zip(row) {
                *wj -= eta * (err * xj + alpha * *wj);
            }
            b -= eta * err;
        }
    }
    (w, b)
}

/// The fitted Datawig-substitute imputer.
pub(crate) struct FittedModelBasedImputer {
    models: Vec<ColumnModel>,
    fallback: Vec<(String, OwnedValue)>,
}

/// Sealed-record kind tag for the model-based imputer.
pub(crate) const KIND: &str = "model_based";

fn seal_input_encoding(enc: &InputEncoding) -> Json {
    match enc {
        InputEncoding::Numeric { mean, std } => obj(vec![(
            "num",
            obj(vec![("mean", Json::bits(*mean)), ("std", Json::bits(*std))]),
        )]),
        InputEncoding::Categorical(onehot) => obj(vec![("cat", onehot.seal())]),
    }
}

fn unseal_input_encoding(v: &Json) -> Result<InputEncoding> {
    if let Some(num) = v.get("num") {
        return Ok(InputEncoding::Numeric {
            mean: sealing::req_f64(num, "mean")?,
            std: sealing::req_f64(num, "std")?,
        });
    }
    if let Some(cat) = v.get("cat") {
        return Ok(InputEncoding::Categorical(OneHotEncoder::unseal(cat)?));
    }
    Err(sealing::seal_err("unrecognized input-encoding record"))
}

fn seal_target_model(model: &TargetModel) -> Result<Json> {
    match model {
        TargetModel::Categorical { categories, models } => {
            let sealed_models = models
                .iter()
                .map(|m| m.seal())
                .collect::<Result<Vec<Json>>>()?;
            Ok(obj(vec![
                (
                    "categories",
                    Json::Arr(categories.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
                ("models", Json::Arr(sealed_models)),
            ]))
        }
        TargetModel::Numeric {
            weights,
            intercept,
            mean,
            std,
        } => Ok(obj(vec![
            ("weights", Json::bits_vec(weights)),
            ("intercept", Json::bits(*intercept)),
            ("mean", Json::bits(*mean)),
            ("std", Json::bits(*std)),
        ])),
    }
}

fn unseal_target_model(v: &Json) -> Result<TargetModel> {
    if let Some(categories) = v.get("categories") {
        let categories: Vec<String> = categories
            .as_array()
            .ok_or_else(|| sealing::seal_err("categories is not an array"))?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| sealing::seal_err("category is not a string"))
            })
            .collect::<Result<_>>()?;
        let models = sealing::req_arr(v, "models")?
            .iter()
            .map(fairprep_ml::model::unseal_classifier)
            .collect::<Result<Vec<_>>>()?;
        if models.len() != categories.len() {
            return Err(sealing::seal_err(
                "one-vs-rest model count does not match category count",
            ));
        }
        return Ok(TargetModel::Categorical { categories, models });
    }
    Ok(TargetModel::Numeric {
        weights: sealing::req_f64_vec(v, "weights")?,
        intercept: sealing::req_f64(v, "intercept")?,
        mean: sealing::req_f64(v, "mean")?,
        std: sealing::req_f64(v, "std")?,
    })
}

/// Reconstructs the fitted imputer from a sealed component record.
pub(crate) fn unseal_model_based(v: &Json) -> Result<FittedModelBasedImputer> {
    sealing::expect_kind(v, KIND)?;
    let mut models = Vec::new();
    for record in sealing::req_arr(v, "models")? {
        let target = sealing::req_str(record, "target")?.to_string();
        let mut inputs = Vec::new();
        for input in sealing::req_arr(record, "inputs")? {
            inputs.push((
                sealing::req_str(input, "name")?.to_string(),
                unseal_input_encoding(sealing::req(input, "encoding")?)?,
            ));
        }
        let width: usize = inputs.iter().map(|(_, e)| e.width()).sum();
        let model = unseal_target_model(sealing::req(record, "model")?)?;
        if let TargetModel::Numeric { weights, .. } = &model {
            if weights.len() != width {
                return Err(sealing::seal_err(format!(
                    "imputer for {target}: weight width {} does not match input width {width}",
                    weights.len()
                )));
            }
        }
        models.push(ColumnModel {
            target,
            inputs,
            width,
            model,
        });
    }
    let mut fallback = Vec::new();
    for record in sealing::req_arr(v, "fallback")? {
        fallback.push((
            sealing::req_str(record, "name")?.to_string(),
            crate::unseal_owned_value(sealing::req(record, "value")?)?,
        ));
    }
    Ok(FittedModelBasedImputer { models, fallback })
}

impl FittedMissingValueHandler for FittedModelBasedImputer {
    fn handle_missing(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        let mut out = data.clone();
        // Predict from the *original* data so each column is imputed
        // independently (the Datawig per-column protocol).
        for model in &self.models {
            let col = data.frame().column(&model.target)?;
            let missing: Vec<usize> = (0..col.len()).filter(|&i| col.is_missing(i)).collect();
            for i in missing {
                let value = model.predict(data, i)?;
                out.frame_mut().set_value(i, &model.target, value)?;
            }
        }
        // Mode fallback for residual missingness in columns that had no
        // missing training values (and hence no learned model).
        for (name, fill) in &self.fallback {
            let col = out.frame().column(name)?;
            let missing: Vec<usize> = (0..col.len()).filter(|&i| col.is_missing(i)).collect();
            for i in missing {
                out.frame_mut().set_value(i, name, fill.clone())?;
            }
        }
        out.refresh_caches()?;
        Ok(out)
    }

    fn seal(&self) -> Result<Json> {
        let models = self
            .models
            .iter()
            .map(|m| {
                let inputs = m
                    .inputs
                    .iter()
                    .map(|(name, enc)| {
                        obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("encoding", seal_input_encoding(enc)),
                        ])
                    })
                    .collect();
                Ok(obj(vec![
                    ("target", Json::Str(m.target.clone())),
                    ("inputs", Json::Arr(inputs)),
                    ("model", seal_target_model(&m.model)?),
                ]))
            })
            .collect::<Result<Vec<Json>>>()?;
        let fallback = self
            .fallback
            .iter()
            .map(|(name, fill)| {
                obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("value", crate::seal_owned_value(fill)),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("kind", Json::Str(KIND.to_string())),
            ("models", Json::Arr(models)),
            ("fallback", Json::Arr(fallback)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairprep_data::column::Column;
    use fairprep_data::frame::DataFrame;
    use fairprep_data::schema::{ProtectedAttribute, Schema};

    /// Dataset where `job` is perfectly predictable from `dept`:
    /// dept=kitchen → chef, dept=office → clerk.
    fn predictable_dataset(n: usize, missing_every: usize) -> BinaryLabelDataset {
        let depts: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "kitchen" } else { "office" })
            .collect();
        let jobs: Vec<Option<&str>> = (0..n)
            .map(|i| {
                if i % missing_every == 0 {
                    None
                } else if i % 2 == 0 {
                    Some("chef")
                } else {
                    Some("clerk")
                }
            })
            .collect();
        let ages: Vec<Option<f64>> = (0..n)
            .map(|i| {
                if (i + 1) % missing_every == 0 {
                    None
                } else {
                    // age strongly depends on dept
                    Some(if i % 2 == 0 { 30.0 } else { 50.0 })
                }
            })
            .collect();
        let frame = DataFrame::new()
            .with_column("dept", Column::from_strs(depts))
            .unwrap()
            .with_column("job", Column::from_optional_strs(jobs))
            .unwrap()
            .with_column("age", Column::from_optional_f64(ages))
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 3 == 0 { "a" } else { "b" })),
            )
            .unwrap()
            .with_column(
                "y",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "p" } else { "n" })),
            )
            .unwrap();
        let schema = Schema::new()
            .categorical_feature("dept")
            .categorical_feature("job")
            .numeric_feature("age")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap()
    }

    #[test]
    fn learns_categorical_imputation_from_other_columns() {
        let ds = predictable_dataset(60, 6);
        let fitted = ModelBasedImputer::default().fit(&ds, 7).unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        assert_eq!(out.frame().missing_cells(), 0);
        // Every imputed job must match the dept-determined value.
        for i in (0..60).step_by(6) {
            let dept = ds.frame().value(i, "dept").unwrap();
            let expected = if dept == Value::Categorical("kitchen") {
                "chef"
            } else {
                "clerk"
            };
            assert_eq!(
                out.frame().value(i, "job").unwrap(),
                Value::Categorical(expected),
                "row {i}"
            );
        }
    }

    #[test]
    fn learns_numeric_imputation_from_other_columns() {
        let ds = predictable_dataset(60, 6);
        let fitted = ModelBasedImputer::default().fit(&ds, 7).unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        for i in 0..60 {
            if ds.frame().column("age").unwrap().is_missing(i) {
                let v = out.frame().value(i, "age").unwrap().as_numeric().unwrap();
                let expected = if i % 2 == 0 { 30.0 } else { 50.0 };
                assert!(
                    (v - expected).abs() < 8.0,
                    "row {i}: imputed {v}, expected near {expected}"
                );
            }
        }
    }

    #[test]
    fn explicit_target_columns_respected() {
        let ds = predictable_dataset(30, 5);
        let fitted = ModelBasedImputer::for_columns(&["job"])
            .fit(&ds, 1)
            .unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        // job is imputed by the model; age is covered by the mode fallback,
        // so the result is still complete.
        assert_eq!(out.frame().missing_cells(), 0);
    }

    #[test]
    fn label_cannot_be_target() {
        let ds = predictable_dataset(30, 5);
        assert!(ModelBasedImputer::for_columns(&["y"]).fit(&ds, 0).is_err());
    }

    #[test]
    fn unknown_target_is_error() {
        let ds = predictable_dataset(30, 5);
        assert!(ModelBasedImputer::for_columns(&["nope"])
            .fit(&ds, 0)
            .is_err());
    }

    #[test]
    fn imputation_is_seed_deterministic() {
        let ds = predictable_dataset(40, 4);
        let a = ModelBasedImputer::default()
            .fit(&ds, 9)
            .unwrap()
            .handle_missing(&ds)
            .unwrap();
        let b = ModelBasedImputer::default()
            .fit(&ds, 9)
            .unwrap()
            .handle_missing(&ds)
            .unwrap();
        assert_eq!(a.frame(), b.frame());
    }

    #[test]
    fn fit_on_train_applies_to_unseen_split() {
        let ds = predictable_dataset(60, 6);
        let train_idx: Vec<usize> = (0..40).collect();
        let test_idx: Vec<usize> = (40..60).collect();
        let train = ds.take(&train_idx);
        let test = ds.take(&test_idx);
        let fitted = ModelBasedImputer::default().fit(&train, 3).unwrap();
        let out = fitted.handle_missing(&test).unwrap();
        assert_eq!(out.frame().missing_cells(), 0);
        assert_eq!(out.n_rows(), 20);
        assert_eq!(out.labels(), test.labels());
    }

    #[test]
    fn complete_dataset_passes_through_unchanged() {
        // Row 0 of the generator is always incomplete; drop it to obtain a
        // fully-complete dataset.
        let base = predictable_dataset(21, 1_000_000);
        let ds = base.take(&(1..21).collect::<Vec<_>>());
        assert_eq!(ds.frame().missing_cells(), 0);
        let fitted = ModelBasedImputer::default().fit(&ds, 0).unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        assert_eq!(out.frame(), ds.frame());
    }
}
