//! Missingness injection: turn a complete dataset into one with controlled
//! missing-value patterns.
//!
//! The paper criticizes previous studies for being "unable to investigate
//! the effects of fairness enhancing interventions on records with missing
//! values" (§2.4). Injection closes the loop: any complete dataset (real or
//! synthetic) can be endowed with MCAR (missing completely at random) or
//! MAR-by-group (the documented adult pattern: missingness depends on the
//! protected attribute) missingness, enabling controlled imputation studies
//! and failure-injection tests.

use rand::Rng;

use fairprep_data::column::OwnedValue;
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_data::rng::component_rng;

/// The missingness mechanism to inject.
#[derive(Debug, Clone, PartialEq)]
pub enum Mechanism {
    /// Missing completely at random: every cell of the target columns is
    /// blanked independently with probability `rate`.
    Mcar {
        /// Per-cell missingness probability in `[0, 1]`.
        rate: f64,
    },
    /// Missing at random conditioned on group membership: privileged rows
    /// lose a cell with probability `privileged_rate`, unprivileged rows
    /// with `unprivileged_rate`. Setting `unprivileged_rate` to four times
    /// `privileged_rate` reproduces the adult `native-country` disparity
    /// (§2.4).
    MarByGroup {
        /// Missingness probability for privileged rows.
        privileged_rate: f64,
        /// Missingness probability for unprivileged rows.
        unprivileged_rate: f64,
    },
    /// Missing *not* at random: cells whose own (numeric) value is at or
    /// above `threshold` are blanked with `rate_above`, others with
    /// `rate_below` — the mechanism where missingness depends on the very
    /// value that disappears (e.g. high incomes unreported). Only valid for
    /// numeric target columns.
    MnarByValue {
        /// Value threshold.
        threshold: f64,
        /// Missingness probability for cells `>= threshold`.
        rate_above: f64,
        /// Missingness probability for cells `< threshold`.
        rate_below: f64,
    },
}

/// Injects missing values into the named feature columns of a dataset.
#[derive(Debug, Clone)]
pub struct MissingnessInjector {
    /// Columns to inject into.
    pub columns: Vec<String>,
    /// The mechanism.
    pub mechanism: Mechanism,
}

impl MissingnessInjector {
    /// Creates an injector.
    #[must_use]
    pub fn new(columns: &[&str], mechanism: Mechanism) -> Self {
        MissingnessInjector {
            columns: columns.iter().map(ToString::to_string).collect(),
            mechanism,
        }
    }

    fn validate(&self, dataset: &BinaryLabelDataset) -> Result<()> {
        let label = dataset.schema().label_name()?;
        for c in &self.columns {
            if !dataset.frame().has_column(c) {
                return Err(Error::ColumnNotFound(c.clone()));
            }
            if c == label {
                return Err(Error::InvalidParameter {
                    name: "columns",
                    message: "cannot inject missingness into the label".to_string(),
                });
            }
            if c == &dataset.protected().name {
                return Err(Error::InvalidParameter {
                    name: "columns",
                    message: "cannot inject missingness into the protected attribute".to_string(),
                });
            }
        }
        let rates = match self.mechanism {
            Mechanism::Mcar { rate } => vec![rate],
            Mechanism::MarByGroup {
                privileged_rate,
                unprivileged_rate,
            } => {
                vec![privileged_rate, unprivileged_rate]
            }
            Mechanism::MnarByValue {
                rate_above,
                rate_below,
                ..
            } => {
                vec![rate_above, rate_below]
            }
        };
        if matches!(self.mechanism, Mechanism::MnarByValue { .. }) {
            for c in &self.columns {
                if dataset.frame().column(c)?.as_numeric().is_err() {
                    return Err(Error::ColumnTypeMismatch {
                        column: c.clone(),
                        expected: "numeric (MNAR-by-value targets)",
                    });
                }
            }
        }
        for r in rates {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(Error::InvalidParameter {
                    name: "rate",
                    message: format!("{r} not in [0, 1]"),
                });
            }
        }
        Ok(())
    }

    /// Returns a copy of `dataset` with injected missing cells; randomness
    /// is fully determined by `seed`.
    pub fn inject(&self, dataset: &BinaryLabelDataset, seed: u64) -> Result<BinaryLabelDataset> {
        self.validate(dataset)?;
        let mut rng = component_rng(seed, "missingness_injector");
        let mask = dataset.privileged_mask().to_vec();
        let mut out = dataset.clone();
        for column in &self.columns {
            for (i, &privileged) in mask.iter().enumerate() {
                let p = match self.mechanism {
                    Mechanism::Mcar { rate } => rate,
                    Mechanism::MarByGroup {
                        privileged_rate,
                        unprivileged_rate,
                    } => {
                        if privileged {
                            privileged_rate
                        } else {
                            unprivileged_rate
                        }
                    }
                    Mechanism::MnarByValue {
                        threshold,
                        rate_above,
                        rate_below,
                    } => {
                        match dataset.frame().column(column)?.get(i) {
                            fairprep_data::column::Value::Numeric(v) => {
                                if v >= threshold {
                                    rate_above
                                } else {
                                    rate_below
                                }
                            }
                            _ => 0.0, // already missing or non-numeric
                        }
                    }
                };
                if rng.random::<f64>() < p {
                    out.frame_mut().set_value(i, column, OwnedValue::Missing)?;
                }
            }
        }
        out.refresh_caches()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairprep_data::column::{Column, ColumnKind};
    use fairprep_data::frame::DataFrame;
    use fairprep_data::schema::{ProtectedAttribute, Schema};
    use fairprep_data::stats::group_missingness;

    fn complete_dataset(n: usize) -> BinaryLabelDataset {
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(|i| i as f64)))
            .unwrap()
            .with_column(
                "c",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "u" } else { "v" })),
            )
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 4 == 0 { "b" } else { "a" })),
            )
            .unwrap()
            .with_column(
                "y",
                Column::from_strs((0..n).map(|i| if i % 3 == 0 { "p" } else { "n" })),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .categorical_feature("c")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap()
    }

    #[test]
    fn mcar_rate_is_approximately_respected() {
        let ds = complete_dataset(2000);
        let inj = MissingnessInjector::new(&["x"], Mechanism::Mcar { rate: 0.25 });
        let out = inj.inject(&ds, 11).unwrap();
        let missing = out.frame().column("x").unwrap().missing_count();
        let rate = missing as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.04, "observed rate {rate}");
    }

    #[test]
    fn mcar_zero_and_one_edge_rates() {
        let ds = complete_dataset(100);
        let none = MissingnessInjector::new(&["x"], Mechanism::Mcar { rate: 0.0 })
            .inject(&ds, 0)
            .unwrap();
        assert_eq!(none.frame().missing_cells(), 0);
        let all = MissingnessInjector::new(&["x"], Mechanism::Mcar { rate: 1.0 })
            .inject(&ds, 0)
            .unwrap();
        assert_eq!(all.frame().column("x").unwrap().missing_count(), 100);
    }

    #[test]
    fn mar_by_group_reproduces_disparity() {
        let ds = complete_dataset(4000);
        let inj = MissingnessInjector::new(
            &["c"],
            Mechanism::MarByGroup {
                privileged_rate: 0.05,
                unprivileged_rate: 0.20,
            },
        );
        let out = inj.inject(&ds, 5).unwrap();
        let gm = group_missingness(&out, "c").unwrap();
        assert!(
            gm.disparity_ratio() > 2.5 && gm.disparity_ratio() < 6.0,
            "disparity {}",
            gm.disparity_ratio()
        );
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let ds = complete_dataset(200);
        let inj = MissingnessInjector::new(&["x", "c"], Mechanism::Mcar { rate: 0.3 });
        let a = inj.inject(&ds, 3).unwrap();
        let b = inj.inject(&ds, 3).unwrap();
        assert_eq!(a.frame(), b.frame());
        let c = inj.inject(&ds, 4).unwrap();
        assert_ne!(a.frame(), c.frame());
    }

    #[test]
    fn label_and_protected_attribute_are_protected() {
        let ds = complete_dataset(10);
        let label = MissingnessInjector::new(&["y"], Mechanism::Mcar { rate: 0.5 });
        assert!(label.inject(&ds, 0).is_err());
        let protected = MissingnessInjector::new(&["g"], Mechanism::Mcar { rate: 0.5 });
        assert!(protected.inject(&ds, 0).is_err());
    }

    #[test]
    fn invalid_rate_rejected() {
        let ds = complete_dataset(10);
        let inj = MissingnessInjector::new(&["x"], Mechanism::Mcar { rate: 1.5 });
        assert!(inj.inject(&ds, 0).is_err());
    }

    #[test]
    fn mnar_blanks_high_values_preferentially() {
        let ds = complete_dataset(3000);
        let inj = MissingnessInjector::new(
            &["x"],
            Mechanism::MnarByValue {
                threshold: 1500.0,
                rate_above: 0.5,
                rate_below: 0.02,
            },
        );
        let out = inj.inject(&ds, 9).unwrap();
        let col = out.frame().column("x").unwrap().as_numeric().unwrap();
        let missing_high = (1500..3000).filter(|&i| col[i].is_none()).count() as f64 / 1500.0;
        let missing_low = (0..1500).filter(|&i| col[i].is_none()).count() as f64 / 1500.0;
        assert!(missing_high > 0.4, "high-value missingness {missing_high}");
        assert!(missing_low < 0.06, "low-value missingness {missing_low}");
    }

    #[test]
    fn mnar_rejects_categorical_targets() {
        let ds = complete_dataset(20);
        let inj = MissingnessInjector::new(
            &["c"],
            Mechanism::MnarByValue {
                threshold: 0.0,
                rate_above: 0.5,
                rate_below: 0.0,
            },
        );
        assert!(inj.inject(&ds, 0).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let ds = complete_dataset(10);
        let inj = MissingnessInjector::new(&["zzz"], Mechanism::Mcar { rate: 0.5 });
        assert!(inj.inject(&ds, 0).is_err());
    }
}
