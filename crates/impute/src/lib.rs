//! # fairprep-impute
//!
//! Missing-value handling for the FairPrep lifecycle.
//!
//! "FairPrep offers a set of predefined strategies such as 'complete case
//! analysis' (removal of records with missing values) or different
//! imputation algorithms, ranging from simple strategies that fill in the
//! most frequent value of an attribute, to more sophisticated strategies
//! that learn a model tailored to the data for imputation. Note that
//! FairPrep enforces that imputation models are learned on the training
//! data only." (§3)
//!
//! The strategies:
//!
//! * [`CompleteCaseAnalysis`] — drop incomplete records (what previous
//!   studies did implicitly, §2.4),
//! * [`ModeImputer`] — fill with the most frequent training value,
//! * [`MeanModeImputer`] — mean for numeric, mode for categorical,
//! * [`ModelBasedImputer`] — the Datawig substitute: one learned model per
//!   target column, trained on the remaining feature columns (never the
//!   class label).
//!
//! [`inject`] provides MCAR/MAR missingness injection so any complete
//! dataset can participate in imputation studies.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod inject;
pub mod model_based;

use fairprep_data::column::{Column, OwnedValue};
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_data::profile::GROUP_BALANCE_WARN_THRESHOLD;
use fairprep_ml::sealing;
use fairprep_trace::json::{obj, Value as Json};
use fairprep_trace::{Counter, Stage, Tracer};

pub use model_based::ModelBasedImputer;

/// A strategy for treating records with missing values.
///
/// Mirrors the paper's `MissingValueHandler` interface (§4): `fit` sees only
/// the training data; the fitted handler is later applied by the framework
/// to the validation and test sets.
pub trait MissingValueHandler: Send + Sync {
    /// Stable strategy name for run metadata.
    fn name(&self) -> String;

    /// Learns any statistics/models required for imputation from the
    /// **training** dataset only.
    fn fit(
        &self,
        train: &BinaryLabelDataset,
        seed: u64,
    ) -> Result<Box<dyn FittedMissingValueHandler>>;

    /// Like [`MissingValueHandler::fit`], recording an `impute` span on
    /// `tracer`. The default simply wraps `fit`, so existing strategies
    /// participate in tracing without any changes.
    fn fit_traced(
        &self,
        train: &BinaryLabelDataset,
        seed: u64,
        tracer: &Tracer,
    ) -> Result<Box<dyn FittedMissingValueHandler>> {
        let _span = tracer.span(Stage::Impute);
        self.fit(train, seed)
    }
}

/// A fitted missing-value handler, applicable to any split.
pub trait FittedMissingValueHandler: Send + Sync {
    /// Produces a dataset without missing feature values. Depending on the
    /// strategy this either completes records (imputation) or removes them
    /// (complete-case analysis).
    fn handle_missing(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset>;

    /// `true` when the strategy removes records instead of completing them
    /// (the lifecycle uses this to keep imputed-vs-complete bookkeeping
    /// meaningful).
    fn removes_records(&self) -> bool {
        false
    }

    /// Like [`FittedMissingValueHandler::handle_missing`], counting the
    /// work performed: rows removed by record-dropping strategies
    /// (`rows_dropped`) or cells filled in by imputing ones
    /// (`cells_imputed`). Both are pure functions of the data, so they
    /// are safe for the canonical manifest.
    ///
    /// Record-dropping strategies additionally compare per-group drop
    /// rates and record a manifest warning when they diverge by at least
    /// [`GROUP_BALANCE_WARN_THRESHOLD`] — the §2.4 failure mode where
    /// complete-case analysis silently erodes one protected group.
    fn handle_missing_traced(
        &self,
        data: &BinaryLabelDataset,
        tracer: &Tracer,
    ) -> Result<BinaryLabelDataset> {
        let missing_before = data.frame().missing_cells();
        let rows_before = data.n_rows();
        let out = self.handle_missing(data)?;
        if self.removes_records() {
            let dropped = rows_before.saturating_sub(out.n_rows()) as u64;
            tracer.add(Counter::RowsDropped, dropped);
            if dropped > 0 {
                warn_on_disproportionate_drop(data, &out, tracer);
            }
        } else {
            tracer.add(
                Counter::CellsImputed,
                missing_before.saturating_sub(out.frame().missing_cells()) as u64,
            );
        }
        Ok(out)
    }

    /// Serializes the fitted handler into a sealed-pipeline component
    /// record reloadable via [`unseal_handler`]. The default refuses with
    /// a typed error so experimental handlers stay usable in-process
    /// without silently producing unservable artifacts.
    fn seal(&self) -> Result<Json> {
        Err(Error::Seal(
            "this missing-value handler does not support sealing".to_string(),
        ))
    }
}

/// Reconstructs a fitted missing-value handler from a sealed component
/// record, dispatching on its `"kind"` tag.
pub fn unseal_handler(v: &Json) -> Result<Box<dyn FittedMissingValueHandler>> {
    match sealing::kind_of(v)? {
        "complete_case" => Ok(Box::new(FittedCompleteCase)),
        "fill" => {
            let mut fills = Vec::new();
            for record in sealing::req_arr(v, "fills")? {
                fills.push((
                    sealing::req_str(record, "name")?.to_string(),
                    unseal_owned_value(sealing::req(record, "value")?)?,
                ));
            }
            Ok(Box::new(FittedFillImputer { fills }))
        }
        model_based::KIND => Ok(Box::new(model_based::unseal_model_based(v)?)),
        other => Err(Error::Seal(format!(
            "unknown missing-value handler kind {other:?}"
        ))),
    }
}

/// Serializes an [`OwnedValue`] fill constant (numeric values travel as
/// bit patterns, categories as strings, missing as `null`).
pub(crate) fn seal_owned_value(v: &OwnedValue) -> Json {
    match v {
        OwnedValue::Numeric(x) => obj(vec![("num", Json::bits(*x))]),
        OwnedValue::Categorical(s) => obj(vec![("cat", Json::Str(s.clone()))]),
        OwnedValue::Missing => Json::Null,
    }
}

/// Inverse of [`seal_owned_value`].
pub(crate) fn unseal_owned_value(v: &Json) -> Result<OwnedValue> {
    if matches!(v, Json::Null) {
        return Ok(OwnedValue::Missing);
    }
    if let Some(num) = v.get("num") {
        return num
            .as_f64_bits()
            .map(OwnedValue::Numeric)
            .ok_or_else(|| sealing::seal_err("numeric fill is not a float bit pattern"));
    }
    if let Some(cat) = v.get("cat") {
        return cat
            .as_str()
            .map(|s| OwnedValue::Categorical(s.to_string()))
            .ok_or_else(|| sealing::seal_err("categorical fill is not a string"));
    }
    Err(sealing::seal_err("unrecognized fill value record"))
}

/// Records a tracer warning when record removal hits one protected group
/// at a rate at least [`GROUP_BALANCE_WARN_THRESHOLD`] apart from the
/// other's.
fn warn_on_disproportionate_drop(
    before: &BinaryLabelDataset,
    after: &BinaryLabelDataset,
    tracer: &Tracer,
) {
    let count = |mask: &[bool], privileged: bool| mask.iter().filter(|&&p| p == privileged).count();
    let priv_before = count(before.privileged_mask(), true);
    let unpriv_before = count(before.privileged_mask(), false);
    if priv_before == 0 || unpriv_before == 0 {
        return;
    }
    let priv_rate = priv_before.saturating_sub(count(after.privileged_mask(), true)) as f64
        / priv_before as f64;
    let unpriv_rate = unpriv_before.saturating_sub(count(after.privileged_mask(), false)) as f64
        / unpriv_before as f64;
    if (priv_rate - unpriv_rate).abs() >= GROUP_BALANCE_WARN_THRESHOLD {
        tracer.record_warning(format!(
            "record dropping is group-disproportionate: privileged drop rate \
             {priv_rate:.3} vs unprivileged {unpriv_rate:.3}"
        ));
    }
}

/// Removal of records with missing values ("complete case analysis").
#[derive(Debug, Clone, Copy, Default)]
pub struct CompleteCaseAnalysis;

impl MissingValueHandler for CompleteCaseAnalysis {
    fn name(&self) -> String {
        "complete_case_analysis".to_string()
    }

    fn fit(
        &self,
        train: &BinaryLabelDataset,
        _seed: u64,
    ) -> Result<Box<dyn FittedMissingValueHandler>> {
        train.guard_fit("CompleteCaseAnalysis::fit");
        Ok(Box::new(FittedCompleteCase))
    }
}

struct FittedCompleteCase;

impl FittedMissingValueHandler for FittedCompleteCase {
    fn handle_missing(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        let keep: Vec<usize> = (0..data.n_rows())
            .filter(|&i| !data.frame().row_has_missing(i))
            .collect();
        if keep.is_empty() {
            return Err(Error::EmptyData(
                "complete-case analysis removed every record".to_string(),
            ));
        }
        Ok(data.take(&keep))
    }

    fn removes_records(&self) -> bool {
        true
    }

    fn seal(&self) -> Result<Json> {
        Ok(obj(vec![("kind", Json::Str("complete_case".to_string()))]))
    }
}

/// Fills every missing value with the most frequent training value of its
/// attribute (scikit-learn's most-frequent `SimpleImputer`, the paper's
/// `ModeImputer`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ModeImputer;

impl MissingValueHandler for ModeImputer {
    fn name(&self) -> String {
        "mode_imputation".to_string()
    }

    fn fit(
        &self,
        train: &BinaryLabelDataset,
        _seed: u64,
    ) -> Result<Box<dyn FittedMissingValueHandler>> {
        train.guard_fit("ModeImputer::fit");
        Ok(Box::new(FittedFillImputer {
            fills: column_fills(train, FillStrategy::Mode)?,
        }))
    }
}

/// Mean imputation for numeric attributes, mode for categorical ones (the
/// scikit-learn default interpolation Ann starts with in §1.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanModeImputer;

impl MissingValueHandler for MeanModeImputer {
    fn name(&self) -> String {
        "mean_mode_imputation".to_string()
    }

    fn fit(
        &self,
        train: &BinaryLabelDataset,
        _seed: u64,
    ) -> Result<Box<dyn FittedMissingValueHandler>> {
        train.guard_fit("MeanModeImputer::fit");
        Ok(Box::new(FittedFillImputer {
            fills: column_fills(train, FillStrategy::MeanMode)?,
        }))
    }
}

#[derive(Clone, Copy)]
pub(crate) enum FillStrategy {
    Mode,
    MeanMode,
}

/// Computes the per-feature-column fill values on the training data.
pub(crate) fn column_fills(
    train: &BinaryLabelDataset,
    strategy: FillStrategy,
) -> Result<Vec<(String, OwnedValue)>> {
    let label = train.schema().label_name()?.to_string();
    let mut fills = Vec::new();
    for name in train.frame().column_names() {
        if *name == label {
            continue;
        }
        let col = train.frame().column(name)?;
        if col.missing_count() == col.len() {
            return Err(Error::EmptyData(format!(
                "column {name} is entirely missing in the training data"
            )));
        }
        let fill = match (strategy, col) {
            (FillStrategy::MeanMode, Column::Numeric(_)) => {
                // audit: allow(expect, reason = "the all-missing check above guarantees at least one present value, so mean exists")
                OwnedValue::Numeric(col.mean().expect("non-empty numeric column"))
            }
            // audit: allow(expect, reason = "the all-missing check above guarantees at least one present value, so mode exists")
            _ => col.mode().expect("non-empty column"),
        };
        fills.push((name.clone(), fill));
    }
    Ok(fills)
}

/// A fitted constant-fill imputer (mode or mean/mode).
struct FittedFillImputer {
    fills: Vec<(String, OwnedValue)>,
}

impl FittedMissingValueHandler for FittedFillImputer {
    fn handle_missing(&self, data: &BinaryLabelDataset) -> Result<BinaryLabelDataset> {
        let mut out = data.clone();
        for (name, fill) in &self.fills {
            let col = out.frame().column(name)?;
            let missing_rows: Vec<usize> = (0..col.len()).filter(|&i| col.is_missing(i)).collect();
            if missing_rows.is_empty() {
                continue;
            }
            let frame = out.frame_mut();
            for i in missing_rows {
                frame.set_value(i, name, fill.clone())?;
            }
        }
        out.refresh_caches()?;
        Ok(out)
    }

    fn seal(&self) -> Result<Json> {
        let fills = self
            .fills
            .iter()
            .map(|(name, fill)| {
                obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("value", seal_owned_value(fill)),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("kind", Json::Str("fill".to_string())),
            ("fills", Json::Arr(fills)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairprep_data::column::{ColumnKind, Value};
    use fairprep_data::frame::DataFrame;
    use fairprep_data::schema::{ProtectedAttribute, Schema};

    pub(crate) fn dataset_with_missing() -> BinaryLabelDataset {
        let frame = DataFrame::new()
            .with_column(
                "age",
                Column::from_optional_f64([Some(20.0), None, Some(40.0), Some(60.0), None]),
            )
            .unwrap()
            .with_column(
                "job",
                Column::from_optional_strs([
                    Some("clerk"),
                    Some("clerk"),
                    None,
                    Some("chef"),
                    Some("clerk"),
                ]),
            )
            .unwrap()
            .with_column("g", Column::from_strs(["a", "b", "a", "b", "a"]))
            .unwrap()
            .with_column("y", Column::from_strs(["p", "n", "p", "n", "p"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("age")
            .categorical_feature("job")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap()
    }

    #[test]
    fn complete_case_removes_incomplete_rows() {
        let ds = dataset_with_missing();
        let fitted = CompleteCaseAnalysis.fit(&ds, 0).unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        assert_eq!(out.n_rows(), 2); // rows 0 and 3 are complete
        assert_eq!(out.frame().missing_cells(), 0);
        assert!(fitted.removes_records());
        assert_eq!(out.labels(), &[1.0, 0.0]);
    }

    #[test]
    fn complete_case_errors_when_nothing_survives() {
        let ds = dataset_with_missing();
        let all_incomplete = ds.take(&[1, 2, 4]);
        let fitted = CompleteCaseAnalysis.fit(&all_incomplete, 0).unwrap();
        assert!(fitted.handle_missing(&all_incomplete).is_err());
    }

    #[test]
    fn mode_imputation_fills_with_train_modes() {
        let ds = dataset_with_missing();
        let fitted = ModeImputer.fit(&ds, 0).unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        assert_eq!(out.n_rows(), 5);
        assert_eq!(out.frame().missing_cells(), 0);
        assert!(!fitted.removes_records());
        assert_eq!(
            out.frame().value(2, "job").unwrap(),
            Value::Categorical("clerk")
        );
    }

    #[test]
    fn mean_mode_uses_mean_for_numeric() {
        let ds = dataset_with_missing();
        let fitted = MeanModeImputer.fit(&ds, 0).unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        // Mean of {20, 40, 60} = 40.
        assert_eq!(out.frame().value(1, "age").unwrap(), Value::Numeric(40.0));
        assert_eq!(out.frame().value(4, "age").unwrap(), Value::Numeric(40.0));
        // Categorical still mode-filled.
        assert_eq!(
            out.frame().value(2, "job").unwrap(),
            Value::Categorical("clerk")
        );
    }

    #[test]
    fn fitted_on_train_applies_train_statistics_to_test() {
        // Train mean is 40; missing test cells must receive the *train*
        // mean (isolation, §2.1).
        let ds = dataset_with_missing();
        let train = ds.take(&[0, 2, 3]); // ages 20, 40, 60 → mean 40
        let test = ds.take(&[1, 4]); // both missing age
        let fitted = MeanModeImputer.fit(&train, 0).unwrap();
        let out = fitted.handle_missing(&test).unwrap();
        assert_eq!(out.frame().value(0, "age").unwrap(), Value::Numeric(40.0));
        assert_eq!(out.frame().value(1, "age").unwrap(), Value::Numeric(40.0));
    }

    #[test]
    fn label_column_is_never_touched() {
        let ds = dataset_with_missing();
        let fitted = ModeImputer.fit(&ds, 0).unwrap();
        let out = fitted.handle_missing(&ds).unwrap();
        assert_eq!(out.labels(), ds.labels());
        assert_eq!(out.favorable_label(), ds.favorable_label());
    }

    #[test]
    fn all_missing_training_column_is_error() {
        let frame = DataFrame::new()
            .with_column("x", Column::from_optional_f64([None, None]))
            .unwrap()
            .with_column("g", Column::from_strs(["a", "b"]))
            .unwrap()
            .with_column("y", Column::from_strs(["p", "n"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap();
        assert!(ModeImputer.fit(&ds, 0).is_err());
        assert!(MeanModeImputer.fit(&ds, 0).is_err());
    }

    #[test]
    fn disproportionate_drop_records_a_warning() {
        use fairprep_trace::Tracer;
        // All missingness sits in the unprivileged group "b": dropping
        // incomplete rows erases it at rate 1.0 vs 0.0 for "a".
        let frame = DataFrame::new()
            .with_column(
                "age",
                Column::from_optional_f64([Some(20.0), None, Some(40.0), None, Some(30.0)]),
            )
            .unwrap()
            .with_column("g", Column::from_strs(["a", "b", "a", "b", "a"]))
            .unwrap()
            .with_column("y", Column::from_strs(["p", "n", "p", "n", "p"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("age")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap();
        let tracer = Tracer::enabled();
        let fitted = CompleteCaseAnalysis.fit(&ds, 0).unwrap();
        let out = fitted.handle_missing_traced(&ds, &tracer).unwrap();
        assert_eq!(out.n_rows(), 3);
        let warnings = tracer.warnings();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("group-disproportionate"),
            "unexpected warning: {}",
            warnings[0]
        );
        assert!(warnings[0].contains("1.000") && warnings[0].contains("0.000"));
    }

    #[test]
    fn balanced_drop_stays_silent() {
        use fairprep_trace::Tracer;
        // One incomplete row per two-row group: both drop rates are 0.5.
        let frame = DataFrame::new()
            .with_column(
                "age",
                Column::from_optional_f64([None, None, Some(40.0), Some(50.0)]),
            )
            .unwrap()
            .with_column("g", Column::from_strs(["a", "b", "a", "b"]))
            .unwrap()
            .with_column("y", Column::from_strs(["p", "n", "p", "n"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("age")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap();
        let tracer = Tracer::enabled();
        let fitted = CompleteCaseAnalysis.fit(&ds, 0).unwrap();
        fitted.handle_missing_traced(&ds, &tracer).unwrap();
        assert!(tracer.warnings().is_empty());
    }

    #[test]
    fn names() {
        assert_eq!(CompleteCaseAnalysis.name(), "complete_case_analysis");
        assert_eq!(ModeImputer.name(), "mode_imputation");
        assert_eq!(MeanModeImputer.name(), "mean_mode_imputation");
    }

    /// Every shipped handler seals, reloads through the serialize → parse
    /// cycle, and produces an identical completed dataset.
    #[test]
    fn handlers_seal_and_unseal_identically() {
        let ds = dataset_with_missing();
        let handlers: Vec<Box<dyn MissingValueHandler>> = vec![
            Box::new(CompleteCaseAnalysis),
            Box::new(ModeImputer),
            Box::new(MeanModeImputer),
            Box::new(ModelBasedImputer::default()),
        ];
        for handler in handlers {
            let fitted = handler.fit(&ds, 11).unwrap();
            let sealed = fitted.seal().unwrap();
            let reparsed = fairprep_trace::json::parse(&sealed.to_json()).unwrap();
            let reloaded = unseal_handler(&reparsed).unwrap();
            assert_eq!(
                reloaded.removes_records(),
                fitted.removes_records(),
                "{}",
                handler.name()
            );
            let a = fitted.handle_missing(&ds).unwrap();
            let b = reloaded.handle_missing(&ds).unwrap();
            assert_eq!(a, b, "{} drifted through seal/unseal", handler.name());
        }
    }

    #[test]
    fn unseal_handler_rejects_unknown_and_malformed_records() {
        let unknown = obj(vec![("kind", Json::Str("quantile_fill".into()))]);
        assert!(matches!(
            unseal_handler(&unknown).map(|_| ()).unwrap_err(),
            Error::Seal(_)
        ));
        // fill record with a broken value entry
        let broken = obj(vec![
            ("kind", Json::Str("fill".into())),
            (
                "fills",
                Json::Arr(vec![obj(vec![("name", Json::Str("age".into()))])]),
            ),
        ]);
        assert!(matches!(
            unseal_handler(&broken).map(|_| ()).unwrap_err(),
            Error::Seal(_)
        ));
    }
}
