//! Property tests: the explicit-width kernels are bit-identical to the
//! scalar reference reductions on every tail length. The widened `dot`
//! keeps the seed's frozen 4-accumulator reduction tree, so goldens and
//! manifests cannot move; these tests are the referee for that claim on
//! random inputs, with lengths biased to straddle the 8-lane boundary
//! (0..=17 covers zero, sub-lane, one-lane, and lane+tail shapes).

use fairprep_ml::kernels::{axpy, dot, dot_ref, gather, gather_vec, matvec_into};
use fairprep_ml::matrix::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// `dot` == the seed's interleaved 4-accumulator loop, bit for bit,
    /// on every length that exercises the widened main loop, the 4-wide
    /// leftover group, and the scalar tail.
    #[test]
    fn dot_is_bit_identical_to_reference(
        n in 0_usize..=17,
        xs in prop::collection::vec(-1.0e6_f64..1.0e6, 64),
        ys in prop::collection::vec(-1.0e6_f64..1.0e6, 64),
    ) {
        let a = &xs[..n];
        let b = &ys[..n];
        prop_assert_eq!(dot(a, b).to_bits(), dot_ref(a, b).to_bits());
    }

    /// Long vectors too: many widened iterations followed by every tail.
    #[test]
    fn dot_is_bit_identical_on_long_vectors(
        tail in 0_usize..=17,
        xs in prop::collection::vec(-1.0e3_f64..1.0e3, 256),
        ys in prop::collection::vec(-1.0e3_f64..1.0e3, 256),
    ) {
        let n = 128 + tail;
        let a = &xs[..n];
        let b = &ys[..n];
        prop_assert_eq!(dot(a, b).to_bits(), dot_ref(a, b).to_bits());
    }

    /// `matvec_into` equals a per-row reference dot for every column-count
    /// tail shape.
    #[test]
    fn matvec_is_bit_identical_to_per_row_dots(
        cols in 1_usize..=17,
        rows in 1_usize..=6,
        data in prop::collection::vec(-1.0e4_f64..1.0e4, 128),
        w in prop::collection::vec(-1.0e4_f64..1.0e4, 17),
    ) {
        let data = &data[..rows * cols];
        let w = &w[..cols];
        let mut out = vec![0.0; rows];
        matvec_into(data, cols, w, &mut out);
        for (r, got) in out.iter().enumerate() {
            let want = dot_ref(&data[r * cols..(r + 1) * cols], w);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "row {}", r);
        }
    }

    /// `axpy` equals the plain element loop bitwise — elementwise kernels
    /// are order-free, so any width is safe, but the bits must still match.
    #[test]
    fn axpy_is_bit_identical_to_plain_loop(
        n in 0_usize..=17,
        alpha in -10.0_f64..10.0,
        xs in prop::collection::vec(-1.0e4_f64..1.0e4, 17),
        ys in prop::collection::vec(-1.0e4_f64..1.0e4, 17),
    ) {
        let mut got = ys[..n].to_vec();
        axpy(alpha, &xs[..n], &mut got);
        let mut want = ys[..n].to_vec();
        for (w, x) in want.iter_mut().zip(&xs[..n]) {
            *w += alpha * x;
        }
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Gathers are pure data movement: every output element is exactly the
    /// addressed input element.
    #[test]
    fn gather_moves_exact_elements(
        src in prop::collection::vec(-1.0e6_f64..1.0e6, 1..40),
        picks in prop::collection::vec(0_usize..1000, 0..30),
    ) {
        let idx: Vec<usize> = picks.iter().map(|p| p % src.len()).collect();
        let naive: Vec<f64> = idx.iter().map(|&i| src[i]).collect();
        prop_assert_eq!(&gather_vec(&src, &idx), &naive);
        let mut out = vec![0.0; idx.len()];
        gather(&src, &idx, &mut out);
        prop_assert_eq!(&out, &naive);
    }
}

/// The matrix row/column gathers must return exactly what the old
/// per-row `Vec`-collecting implementations returned.
#[test]
fn matrix_gathers_match_naive_row_collection() {
    let rows: Vec<Vec<f64>> = (0..7)
        .map(|i| (0..5).map(|j| (i * 5 + j) as f64 * 1.25).collect())
        .collect();
    let m = Matrix::from_rows(&rows).unwrap();

    let take = m.take_rows(&[6, 0, 3, 3]);
    assert_eq!(take.n_rows(), 4);
    for (r, &i) in [6_usize, 0, 3, 3].iter().enumerate() {
        assert_eq!(take.row(r), &rows[i][..], "take_rows row {r}");
    }

    let sel = m.select_columns(&[4, 0, 2]);
    assert_eq!((sel.n_rows(), sel.n_cols()), (7, 3));
    for (r, src) in rows.iter().enumerate() {
        assert_eq!(sel.row(r), &[src[4], src[0], src[2]]);
    }

    let g = m.gather(&[1, 1, 5], &[3, 0]);
    assert_eq!((g.n_rows(), g.n_cols()), (3, 2));
    assert_eq!(g.row(0), &[rows[1][3], rows[1][0]]);
    assert_eq!(g.row(1), &[rows[1][3], rows[1][0]]);
    assert_eq!(g.row(2), &[rows[5][3], rows[5][0]]);
}

/// Zero-column edge cases must preserve row counts without touching data.
#[test]
fn zero_width_gathers_keep_shape() {
    let m = Matrix::zeros(4, 0);
    assert_eq!(m.take_rows(&[0, 2]).n_rows(), 2);
    assert_eq!(m.select_columns(&[]).n_rows(), 4);
    assert_eq!(m.gather(&[1, 3], &[]).n_rows(), 2);
}
