//! Core prediction-quality metrics (accuracy and friends).
//!
//! These are the "standard accuracy metrics" of the §1.1 walkthrough. The
//! fairness-specific metrics (group differences, disparate impact, …) live
//! in `fairprep-fairness`; this module only knows about labels and
//! predictions.

// audit: allow-file(float-eq, reason = "labels and hard predictions are exactly 0.0 or 1.0 by construction; comparisons partition, they do not approximate")
use fairprep_data::error::{Error, Result};

/// A weighted binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfusionMatrix {
    /// Weighted true positives.
    pub tp: f64,
    /// Weighted false positives.
    pub fp: f64,
    /// Weighted true negatives.
    pub tn: f64,
    /// Weighted false negatives.
    pub fn_: f64,
}

impl ConfusionMatrix {
    /// Computes the confusion matrix from labels, hard predictions, and
    /// optional weights (uniform when `None`).
    pub fn compute(y_true: &[f64], y_pred: &[f64], weights: Option<&[f64]>) -> Result<Self> {
        if y_true.len() != y_pred.len() {
            return Err(Error::LengthMismatch {
                expected: y_true.len(),
                actual: y_pred.len(),
            });
        }
        if let Some(w) = weights {
            if w.len() != y_true.len() {
                return Err(Error::LengthMismatch {
                    expected: y_true.len(),
                    actual: w.len(),
                });
            }
        }
        let mut cm = ConfusionMatrix::default();
        for i in 0..y_true.len() {
            let w = weights.map_or(1.0, |w| w[i]);
            let t = y_true[i] == 1.0;
            let p = y_pred[i] == 1.0;
            match (t, p) {
                (true, true) => cm.tp += w,
                (false, true) => cm.fp += w,
                (false, false) => cm.tn += w,
                (true, false) => cm.fn_ += w,
            }
        }
        Ok(cm)
    }

    /// Total weighted count.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy `(TP + TN) / total`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        safe_div(self.tp + self.tn, self.total())
    }

    /// Error rate `1 - accuracy`.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// True positive rate (recall, sensitivity) `TP / (TP + FN)`.
    #[must_use]
    pub fn tpr(&self) -> f64 {
        safe_div(self.tp, self.tp + self.fn_)
    }

    /// False negative rate `FN / (TP + FN)`.
    #[must_use]
    pub fn fnr(&self) -> f64 {
        safe_div(self.fn_, self.tp + self.fn_)
    }

    /// False positive rate `FP / (FP + TN)`.
    #[must_use]
    pub fn fpr(&self) -> f64 {
        safe_div(self.fp, self.fp + self.tn)
    }

    /// True negative rate (specificity) `TN / (FP + TN)`.
    #[must_use]
    pub fn tnr(&self) -> f64 {
        safe_div(self.tn, self.fp + self.tn)
    }

    /// Positive predictive value (precision) `TP / (TP + FP)`.
    #[must_use]
    pub fn precision(&self) -> f64 {
        safe_div(self.tp, self.tp + self.fp)
    }

    /// Negative predictive value `TN / (TN + FN)`.
    #[must_use]
    pub fn npv(&self) -> f64 {
        safe_div(self.tn, self.tn + self.fn_)
    }

    /// False discovery rate `FP / (TP + FP)`.
    #[must_use]
    pub fn fdr(&self) -> f64 {
        safe_div(self.fp, self.tp + self.fp)
    }

    /// False omission rate `FN / (TN + FN)`.
    #[must_use]
    pub fn for_(&self) -> f64 {
        safe_div(self.fn_, self.tn + self.fn_)
    }

    /// F1 score, the harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        safe_div(2.0 * p * r, p + r)
    }

    /// Balanced accuracy `(TPR + TNR) / 2`.
    #[must_use]
    pub fn balanced_accuracy(&self) -> f64 {
        0.5 * (self.tpr() + self.tnr())
    }

    /// Selection rate `(TP + FP) / total` — the fraction predicted positive.
    #[must_use]
    pub fn selection_rate(&self) -> f64 {
        safe_div(self.tp + self.fp, self.total())
    }

    /// Base rate `(TP + FN) / total` — the fraction actually positive.
    #[must_use]
    pub fn base_rate(&self) -> f64 {
        safe_div(self.tp + self.fn_, self.total())
    }
}

/// Division returning `NaN` on an empty denominator (the AIF360 convention
/// for undefined metrics).
#[must_use]
pub fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        f64::NAN
    } else {
        num / den
    }
}

/// Unweighted accuracy convenience function.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    Ok(ConfusionMatrix::compute(y_true, y_pred, None)?.accuracy())
}

/// Area under the ROC curve computed from scores via the rank statistic
/// (ties handled by midranks). Returns `NaN` when one class is absent.
pub fn roc_auc(y_true: &[f64], scores: &[f64]) -> Result<f64> {
    if y_true.len() != scores.len() {
        return Err(Error::LengthMismatch {
            expected: y_true.len(),
            actual: scores.len(),
        });
    }
    let n_pos = y_true.iter().filter(|&&y| y == 1.0).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Ok(f64::NAN);
    }
    // Midrank computation.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0_f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[order[k]] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y == 1.0)
        .map(|(_, &r)| r)
        .sum();
    let n_pos_f = n_pos as f64;
    let n_neg_f = n_neg as f64;
    Ok((rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0) / (n_pos_f * n_neg_f))
}

/// Binary log loss (cross-entropy) with probability clipping.
pub fn log_loss(y_true: &[f64], probas: &[f64]) -> Result<f64> {
    if y_true.len() != probas.len() {
        return Err(Error::LengthMismatch {
            expected: y_true.len(),
            actual: probas.len(),
        });
    }
    if y_true.is_empty() {
        return Err(Error::EmptyData("log loss input".to_string()));
    }
    let eps = 1e-15;
    let sum: f64 = y_true
        .iter()
        .zip(probas)
        .map(|(&y, &p)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum();
    Ok(sum / y_true.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> ConfusionMatrix {
        // tp=3, fp=1, tn=4, fn=2
        ConfusionMatrix::compute(
            &[1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            None,
        )
        .unwrap()
    }

    #[test]
    fn confusion_cells() {
        let c = cm();
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (3.0, 1.0, 4.0, 2.0));
        assert_eq!(c.total(), 10.0);
    }

    #[test]
    fn derived_rates() {
        let c = cm();
        assert!((c.accuracy() - 0.7).abs() < 1e-12);
        assert!((c.error_rate() - 0.3).abs() < 1e-12);
        assert!((c.tpr() - 0.6).abs() < 1e-12);
        assert!((c.fnr() - 0.4).abs() < 1e-12);
        assert!((c.fpr() - 0.2).abs() < 1e-12);
        assert!((c.tnr() - 0.8).abs() < 1e-12);
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.selection_rate() - 0.4).abs() < 1e-12);
        assert!((c.base_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rate_identities() {
        let c = cm();
        assert!((c.tpr() + c.fnr() - 1.0).abs() < 1e-12);
        assert!((c.fpr() + c.tnr() - 1.0).abs() < 1e-12);
        assert!((c.precision() + c.fdr() - 1.0).abs() < 1e-12);
        assert!((c.npv() + c.for_() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_confusion() {
        let c = ConfusionMatrix::compute(&[1.0, 0.0], &[1.0, 1.0], Some(&[2.0, 3.0])).unwrap();
        assert_eq!(c.tp, 2.0);
        assert_eq!(c.fp, 3.0);
        assert!((c.accuracy() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_denominators_are_nan() {
        let all_neg = ConfusionMatrix::compute(&[0.0, 0.0], &[0.0, 0.0], None).unwrap();
        assert!(all_neg.tpr().is_nan());
        assert!(all_neg.precision().is_nan());
        assert!((all_neg.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let y = [0.0, 0.0, 1.0, 1.0];
        assert!((roc_auc(&y, &[0.1, 0.2, 0.8, 0.9]).unwrap() - 1.0).abs() < 1e-12);
        assert!((roc_auc(&y, &[0.9, 0.8, 0.2, 0.1]).unwrap() - 0.0).abs() < 1e-12);
        assert!((roc_auc(&y, &[0.5, 0.5, 0.5, 0.5]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_nan() {
        assert!(roc_auc(&[1.0, 1.0], &[0.2, 0.8]).unwrap().is_nan());
    }

    #[test]
    fn log_loss_basics() {
        let perfect = log_loss(&[1.0, 0.0], &[1.0, 0.0]).unwrap();
        assert!(perfect < 1e-10);
        let coin = log_loss(&[1.0, 0.0], &[0.5, 0.5]).unwrap();
        assert!((coin - (2.0_f64).ln().abs()).abs() < 1e-9);
        assert!(log_loss(&[], &[]).is_err());
    }

    #[test]
    fn length_mismatches_rejected() {
        assert!(ConfusionMatrix::compute(&[1.0], &[1.0, 0.0], None).is_err());
        assert!(roc_auc(&[1.0], &[0.5, 0.5]).is_err());
        assert!(log_loss(&[1.0], &[0.5, 0.5]).is_err());
    }
}

/// Brier score: mean squared error of probabilistic predictions.
/// Lower is better; a perfectly calibrated, perfectly sharp predictor
/// scores 0.
pub fn brier_score(y_true: &[f64], probas: &[f64]) -> Result<f64> {
    if y_true.len() != probas.len() {
        return Err(Error::LengthMismatch {
            expected: y_true.len(),
            actual: probas.len(),
        });
    }
    if y_true.is_empty() {
        return Err(Error::EmptyData("brier score input".to_string()));
    }
    let sum: f64 = y_true
        .iter()
        .zip(probas)
        .map(|(&y, &p)| (p - y).powi(2))
        .sum();
    Ok(sum / y_true.len() as f64)
}

/// One bin of a reliability (calibration) curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Lower edge of the probability bin (inclusive).
    pub lower: f64,
    /// Upper edge (exclusive; the final bin includes 1.0).
    pub upper: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted probability inside the bin.
    pub mean_predicted: f64,
    /// Observed positive rate inside the bin — equals `mean_predicted` for
    /// a perfectly calibrated model.
    pub observed_rate: f64,
}

/// Computes an equal-width reliability curve with `n_bins` bins. Empty bins
/// are omitted. Also returns the expected calibration error (ECE): the
/// count-weighted mean of `|observed − predicted|` over the bins.
pub fn calibration_curve(
    y_true: &[f64],
    probas: &[f64],
    n_bins: usize,
) -> Result<(Vec<CalibrationBin>, f64)> {
    if y_true.len() != probas.len() {
        return Err(Error::LengthMismatch {
            expected: y_true.len(),
            actual: probas.len(),
        });
    }
    if n_bins == 0 {
        return Err(Error::InvalidParameter {
            name: "n_bins",
            message: "need at least one bin".to_string(),
        });
    }
    if y_true.is_empty() {
        return Err(Error::EmptyData("calibration input".to_string()));
    }
    let mut counts = vec![0usize; n_bins];
    let mut pred_sums = vec![0.0_f64; n_bins];
    let mut pos_sums = vec![0.0_f64; n_bins];
    for (&y, &p) in y_true.iter().zip(probas) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let bin = ((p.clamp(0.0, 1.0) * n_bins as f64) as usize).min(n_bins - 1);
        counts[bin] += 1;
        pred_sums[bin] += p;
        pos_sums[bin] += y;
    }
    let mut bins = Vec::new();
    let mut ece = 0.0;
    let width = 1.0 / n_bins as f64;
    for b in 0..n_bins {
        if counts[b] == 0 {
            continue;
        }
        let mean_predicted = pred_sums[b] / counts[b] as f64;
        let observed_rate = pos_sums[b] / counts[b] as f64;
        ece += counts[b] as f64 / y_true.len() as f64 * (observed_rate - mean_predicted).abs();
        bins.push(CalibrationBin {
            lower: b as f64 * width,
            upper: if b == n_bins - 1 {
                1.0
            } else {
                (b + 1) as f64 * width
            },
            count: counts[b],
            mean_predicted,
            observed_rate,
        });
    }
    Ok((bins, ece))
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    #[test]
    fn brier_score_extremes() {
        assert!(brier_score(&[1.0, 0.0], &[1.0, 0.0]).unwrap() < 1e-12);
        assert!((brier_score(&[1.0, 0.0], &[0.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((brier_score(&[1.0, 0.0], &[0.5, 0.5]).unwrap() - 0.25).abs() < 1e-12);
        assert!(brier_score(&[], &[]).is_err());
        assert!(brier_score(&[1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // 100 predictions at 0.3 with exactly 30 positives, and 100 at 0.8
        // with exactly 80 positives.
        let mut y = Vec::new();
        let mut p = Vec::new();
        for i in 0..100 {
            y.push(f64::from(u8::from(i < 30)));
            p.push(0.3);
        }
        for i in 0..100 {
            y.push(f64::from(u8::from(i < 80)));
            p.push(0.8);
        }
        let (bins, ece) = calibration_curve(&y, &p, 10).unwrap();
        assert_eq!(bins.len(), 2);
        assert!(ece < 1e-12, "ece {ece}");
        for bin in &bins {
            assert!((bin.observed_rate - bin.mean_predicted).abs() < 1e-12);
        }
    }

    #[test]
    fn miscalibration_is_measured() {
        // Predicts 0.9 but only half are positive.
        let y: Vec<f64> = (0..100).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let p = vec![0.9; 100];
        let (bins, ece) = calibration_curve(&y, &p, 10).unwrap();
        assert_eq!(bins.len(), 1);
        assert!((ece - 0.4).abs() < 1e-9, "ece {ece}");
    }

    #[test]
    fn bin_edges_cover_unit_interval() {
        let y = vec![1.0, 0.0, 1.0, 0.0];
        let p = vec![0.0, 0.49, 0.51, 1.0];
        let (bins, _) = calibration_curve(&y, &p, 4).unwrap();
        assert!(bins.iter().all(|b| b.lower >= 0.0 && b.upper <= 1.0));
        // Probability 1.0 lands in the final bin, not out of range.
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), 4);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(calibration_curve(&[1.0], &[0.5], 0).is_err());
        assert!(calibration_curve(&[], &[], 5).is_err());
        assert!(calibration_curve(&[1.0], &[0.5, 0.5], 5).is_err());
    }
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Score threshold; predictions are positive when `score >= threshold`.
    pub threshold: f64,
    /// False positive rate at this threshold.
    pub fpr: f64,
    /// True positive rate at this threshold.
    pub tpr: f64,
}

/// Computes the full ROC curve: one point per distinct score threshold,
/// from the all-negative corner `(0, 0)` to the all-positive corner
/// `(1, 1)`. Requires both classes to be present.
pub fn roc_curve(y_true: &[f64], scores: &[f64]) -> Result<Vec<RocPoint>> {
    if y_true.len() != scores.len() {
        return Err(Error::LengthMismatch {
            expected: y_true.len(),
            actual: scores.len(),
        });
    }
    let n_pos = y_true.iter().filter(|&&y| y == 1.0).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(Error::EmptyData("ROC curve needs both classes".to_string()));
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a])); // descending

    let mut points = vec![RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume the whole tie group.
        while i < order.len() && scores[order[i]] == threshold {
            if y_true[order[i]] == 1.0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold,
            fpr: fp as f64 / n_neg as f64,
            tpr: tp as f64 / n_pos as f64,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod roc_curve_tests {
    use super::*;

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let y = [1.0, 0.0, 1.0, 0.0, 1.0];
        let s = [0.9, 0.8, 0.7, 0.3, 0.2];
        let curve = roc_curve(&y, &s).unwrap();
        assert_eq!(curve.first().unwrap().tpr, 0.0);
        assert_eq!(curve.first().unwrap().fpr, 0.0);
        assert_eq!(curve.last().unwrap().tpr, 1.0);
        assert_eq!(curve.last().unwrap().fpr, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn curve_area_matches_roc_auc() {
        let y = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0];
        let s = [0.9, 0.8, 0.75, 0.4, 0.65, 0.2, 0.3, 0.85];
        let curve = roc_curve(&y, &s).unwrap();
        // Trapezoidal integration of the curve.
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
        }
        let auc = roc_auc(&y, &s).unwrap();
        assert!((area - auc).abs() < 1e-12, "area {area} vs auc {auc}");
    }

    #[test]
    fn ties_are_grouped() {
        let y = [1.0, 0.0, 1.0, 0.0];
        let s = [0.5, 0.5, 0.5, 0.5];
        let curve = roc_curve(&y, &s).unwrap();
        // Single threshold group: (0,0) then (1,1).
        assert_eq!(curve.len(), 2);
    }

    #[test]
    fn single_class_rejected() {
        assert!(roc_curve(&[1.0, 1.0], &[0.5, 0.6]).is_err());
    }
}
