//! # fairprep-ml
//!
//! The learning substrate of the FairPrep workspace — a scikit-learn
//! substitute scoped to what the FairPrep lifecycle needs:
//!
//! * a dense [`matrix::Matrix`] (the "numpy view" of a dataset),
//! * feature transforms with fit-on-train-only semantics
//!   ([`transform::ScalerSpec`], [`transform::OneHotEncoder`],
//!   [`transform::FittedFeaturizer`]),
//! * weighted classifiers behind the [`model::Classifier`] trait
//!   (SGD logistic regression, CART decision tree, Gaussian naive Bayes),
//! * seeded k-fold cross-validation and grid search
//!   ([`selection::GridSearchCv`]) including the paper's exact §4/§5.1
//!   hyperparameter grids, and
//! * prediction-quality metrics ([`eval::ConfusionMatrix`], ROC-AUC,
//!   log loss).
//!
//! ## Example
//!
//! ```
//! use fairprep_ml::matrix::Matrix;
//! use fairprep_ml::model::{Classifier, DecisionTree};
//!
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![0.0], vec![1.0]]).unwrap();
//! let y = vec![0.0, 1.0, 0.0, 1.0];
//! let model = DecisionTree::default().fit(&x, &y, &[1.0; 4], 42).unwrap();
//! assert_eq!(model.predict(&x).unwrap(), y);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod eval;
pub mod kernels;
pub mod matrix;
pub mod model;
pub mod sealing;
pub mod selection;
pub mod transform;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::eval::{accuracy, roc_auc, ConfusionMatrix};
    pub use crate::matrix::Matrix;
    pub use crate::model::{
        Classifier, DecisionTree, DecisionTreeConfig, FittedClassifier, GaussianNaiveBayes,
        KNearestNeighbors, LogisticRegressionConfig, LogisticRegressionSgd, Penalty, RandomForest,
        RandomForestConfig, SplitCriterion,
    };
    pub use crate::selection::{
        decision_tree_grid, logistic_regression_grid, GridSearchCv, GridSearchOutcome,
    };
    pub use crate::transform::{FittedFeaturizer, OneHotEncoder, ScalerSpec};
}
