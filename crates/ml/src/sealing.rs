//! Shared accessors for sealed-pipeline component records.
//!
//! Every fitted component serializes to a [`Value`] object tagged with a
//! `"kind"` member; floats travel as authoritative `%016x` bit patterns
//! (see [`Value::bits`]) so a sealed artifact reloads **bit-identically**,
//! NaN payloads included. These helpers turn the `Option`-shaped `Value`
//! accessors into typed [`Error::Seal`] failures with field names, so a
//! corrupted or truncated artifact reports *which* field broke instead of
//! panicking. They are used by the seal/unseal impls in `fairprep-ml`,
//! `fairprep-impute`, `fairprep-fairness`, and `fairprep-core`.

use fairprep_data::error::{Error, Result};
use fairprep_trace::json::Value;

/// A typed sealed-artifact error.
pub fn seal_err(msg: impl Into<String>) -> Error {
    Error::Seal(msg.into())
}

/// The object member at `key`, or a typed error naming the missing field.
pub fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value> {
    v.get(key)
        .ok_or_else(|| seal_err(format!("missing field {key:?}")))
}

/// A required string member.
pub fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| seal_err(format!("field {key:?} is not a string")))
}

/// A required float member stored as a [`Value::bits`] bit pattern.
pub fn req_f64(v: &Value, key: &str) -> Result<f64> {
    req(v, key)?
        .as_f64_bits()
        .ok_or_else(|| seal_err(format!("field {key:?} is not a float bit pattern")))
}

/// A required array of [`Value::bits`] floats.
pub fn req_f64_vec(v: &Value, key: &str) -> Result<Vec<f64>> {
    req(v, key)?
        .as_f64_bits_vec()
        .ok_or_else(|| seal_err(format!("field {key:?} is not a float-bits array")))
}

/// A required unsigned integer member (decimal string or JSON number).
pub fn req_u64(v: &Value, key: &str) -> Result<u64> {
    req(v, key)?
        .as_u64_any()
        .ok_or_else(|| seal_err(format!("field {key:?} is not an unsigned integer")))
}

/// A required `usize` member.
pub fn req_usize(v: &Value, key: &str) -> Result<usize> {
    usize::try_from(req_u64(v, key)?)
        .map_err(|_| seal_err(format!("field {key:?} overflows usize")))
}

/// A required boolean member.
pub fn req_bool(v: &Value, key: &str) -> Result<bool> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| seal_err(format!("field {key:?} is not a boolean")))
}

/// A required array member.
pub fn req_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value]> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| seal_err(format!("field {key:?} is not an array")))
}

/// A required array of strings.
pub fn req_str_vec(v: &Value, key: &str) -> Result<Vec<String>> {
    req_arr(v, key)?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| seal_err(format!("field {key:?} holds a non-string element")))
        })
        .collect()
}

/// The component discriminator: the `"kind"` member every sealed record
/// carries so per-crate unseal dispatchers can route to the right type.
pub fn kind_of(v: &Value) -> Result<&str> {
    req_str(v, "kind")
}

/// Checks a record's `"kind"` tag against the expected component name.
pub fn expect_kind(v: &Value, expected: &str) -> Result<()> {
    let kind = kind_of(v)?;
    if kind == expected {
        Ok(())
    } else {
        Err(seal_err(format!(
            "expected component kind {expected:?}, found {kind:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairprep_trace::json::obj;

    #[test]
    fn accessors_report_the_offending_field() {
        let v = obj(vec![
            ("kind", Value::Str("logistic".into())),
            ("intercept", Value::bits(0.25)),
            ("weights", Value::bits_vec(&[1.0, f64::NAN])),
            ("n", Value::from_u64(7)),
            ("flag", Value::Bool(true)),
        ]);
        assert_eq!(kind_of(&v).unwrap(), "logistic");
        assert_eq!(req_f64(&v, "intercept").unwrap(), 0.25);
        let ws = req_f64_vec(&v, "weights").unwrap();
        assert!(ws[1].is_nan());
        assert_eq!(req_usize(&v, "n").unwrap(), 7);
        assert!(req_bool(&v, "flag").unwrap());

        let err = req_f64(&v, "absent").unwrap_err();
        assert!(err.to_string().contains("absent"), "{err}");
        let err = req_f64(&v, "kind").unwrap_err();
        assert!(err.to_string().contains("bit pattern"), "{err}");
        assert!(expect_kind(&v, "tree").is_err());
        assert!(expect_kind(&v, "logistic").is_ok());
    }
}
