//! Learning algorithms: the classifier interface and its implementations.
//!
//! FairPrep "exposes a simple interface for learning algorithms, to allow
//! the integration of many different models with low effort" (§4). A
//! [`Classifier`] receives the feature matrix, binary labels, per-instance
//! weights (so that reweighing-style interventions work with every model),
//! and the run's random seed (so that training is reproducible).

use fairprep_data::error::{Error, Result};

use crate::matrix::Matrix;

pub mod forest;
pub mod knn;
pub mod logistic;
pub mod naive_bayes;
pub mod tree;

pub use forest::{RandomForest, RandomForestConfig};
pub use knn::KNearestNeighbors;
pub use logistic::{LogisticRegressionConfig, LogisticRegressionSgd, Penalty};
pub use naive_bayes::GaussianNaiveBayes;
pub use tree::{DecisionTree, DecisionTreeConfig, SplitCriterion};

/// An unfitted classifier configuration.
pub trait Classifier: Send + Sync {
    /// Stable algorithm name for run metadata.
    fn name(&self) -> &'static str;

    /// A short description of the configuration (hyperparameter values),
    /// used to label grid-search candidates.
    fn describe(&self) -> String;

    /// Trains on `(x, y)` with per-instance `weights`, deriving all
    /// randomness from `seed`.
    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>>;
}

/// A trained model.
pub trait FittedClassifier: Send + Sync {
    /// Probability of the favorable class for every row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Hard predictions at the 0.5 threshold.
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| f64::from(u8::from(p > 0.5)))
            .collect())
    }

    /// Serializes the fitted model into a sealed-pipeline component
    /// record (a `"kind"`-tagged JSON object with bit-exact floats),
    /// reloadable via [`unseal_classifier`].
    ///
    /// The default refuses: test doubles and experimental models are
    /// usable in-process without being deployable, and the error names
    /// the gap instead of silently sealing an unservable pipeline.
    fn seal(&self) -> Result<fairprep_trace::json::Value> {
        Err(Error::Seal(
            "this classifier does not support sealing".to_string(),
        ))
    }
}

/// Reconstructs a fitted classifier from a sealed component record,
/// dispatching on its `"kind"` tag. The inverse of
/// [`FittedClassifier::seal`] for every model this crate ships.
pub fn unseal_classifier(v: &fairprep_trace::json::Value) -> Result<Box<dyn FittedClassifier>> {
    match crate::sealing::kind_of(v)? {
        logistic::KIND => Ok(Box::new(logistic::FittedLogisticRegression::unseal(v)?)),
        tree::KIND => Ok(Box::new(tree::FittedDecisionTree::unseal(v)?)),
        forest::KIND => Ok(Box::new(forest::FittedRandomForest::unseal(v)?)),
        knn::KIND => Ok(Box::new(knn::FittedKnn::unseal(v)?)),
        naive_bayes::KIND => Ok(Box::new(naive_bayes::FittedGaussianNb::unseal(v)?)),
        other => Err(Error::Seal(format!("unknown classifier kind {other:?}"))),
    }
}

/// Validates the common `(x, y, weights)` training inputs. Every
/// [`Classifier::fit`] implementation calls this first, so the provenance
/// leak guard here covers all models.
pub(crate) fn validate_training_inputs(x: &Matrix, y: &[f64], weights: &[f64]) -> Result<()> {
    fairprep_data::provenance::guard_fit(x.provenance(), "Classifier::fit");
    if x.n_rows() == 0 {
        return Err(Error::EmptyData("training matrix".to_string()));
    }
    if y.len() != x.n_rows() {
        return Err(Error::LengthMismatch {
            expected: x.n_rows(),
            actual: y.len(),
        });
    }
    if weights.len() != x.n_rows() {
        return Err(Error::LengthMismatch {
            expected: x.n_rows(),
            actual: weights.len(),
        });
    }
    // audit: allow(float-eq, reason = "label validity means exactly 0.0 or 1.0; approximate comparison would accept bad labels")
    if let Some(bad) = y.iter().find(|v| **v != 0.0 && **v != 1.0) {
        return Err(Error::InvalidLabel(*bad));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(Error::InvalidParameter {
            name: "weights",
            message: "weights must be finite and non-negative".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstantModel(f64);
    impl FittedClassifier for ConstantModel {
        fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
            Ok(vec![self.0; x.n_rows()])
        }
    }

    #[test]
    fn default_predict_thresholds_at_half() {
        let x = Matrix::zeros(3, 1);
        assert_eq!(ConstantModel(0.7).predict(&x).unwrap(), vec![1.0, 1.0, 1.0]);
        assert_eq!(ConstantModel(0.5).predict(&x).unwrap(), vec![0.0, 0.0, 0.0]);
        assert_eq!(ConstantModel(0.2).predict(&x).unwrap(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn input_validation() {
        let x = Matrix::zeros(2, 1);
        assert!(validate_training_inputs(&x, &[0.0, 1.0], &[1.0, 1.0]).is_ok());
        assert!(validate_training_inputs(&x, &[0.0], &[1.0, 1.0]).is_err());
        assert!(validate_training_inputs(&x, &[0.0, 2.0], &[1.0, 1.0]).is_err());
        assert!(validate_training_inputs(&x, &[0.0, 1.0], &[1.0, -1.0]).is_err());
        assert!(validate_training_inputs(&Matrix::zeros(0, 1), &[], &[]).is_err());
    }

    #[test]
    fn unsealable_models_report_a_typed_error() {
        let err = ConstantModel(0.5).seal().unwrap_err();
        assert!(matches!(err, Error::Seal(_)), "{err}");
    }

    /// Every shipped model seals, unseals via the dispatcher, and then
    /// predicts **bit-identically** on data it has never seen.
    #[test]
    fn every_model_seals_and_unseals_bit_identically() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![
                    f64::from(u8::from(i % 2 == 0)) + (i % 7) as f64 * 0.03,
                    ((i * 5) % 11) as f64 * 0.2,
                    ((i * 3) % 13) as f64 * -0.1,
                ]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..40).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let w = vec![1.0; 40];
        let probe_rows: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![(i as f64) * 0.37 - 1.0, (i as f64) * 0.11, 0.5 - i as f64])
            .collect();
        let probe = Matrix::from_rows(&probe_rows).unwrap();

        let learners: Vec<Box<dyn Classifier>> = vec![
            Box::new(LogisticRegressionSgd::default()),
            Box::new(DecisionTree::default()),
            Box::new(RandomForest::default()),
            Box::new(KNearestNeighbors::default()),
            Box::new(GaussianNaiveBayes::default()),
        ];
        for learner in learners {
            let fitted = learner.fit(&x, &y, &w, 17).unwrap();
            let sealed = fitted.seal().unwrap();
            // Through the full serialize → parse cycle, not just the tree.
            let reparsed = fairprep_trace::json::parse(&sealed.to_json()).unwrap();
            let reloaded = unseal_classifier(&reparsed).unwrap();
            let a = fitted.predict_proba(&probe).unwrap();
            let b = reloaded.predict_proba(&probe).unwrap();
            let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&a), bits(&b), "{} drifted", learner.name());
        }
    }

    #[test]
    fn unseal_rejects_unknown_kind_and_malformed_records() {
        use fairprep_trace::json::{obj, Value};
        let err_of = |v: &Value| match unseal_classifier(v) {
            Ok(_) => panic!("malformed record unsealed"),
            Err(e) => e,
        };
        let unknown = obj(vec![("kind", Value::Str("perceptron".into()))]);
        assert!(matches!(err_of(&unknown), Error::Seal(_)));
        let missing_kind = obj(vec![("weights", Value::bits_vec(&[1.0]))]);
        assert!(matches!(err_of(&missing_kind), Error::Seal(_)));
        // A logistic record with a truncated field is a typed error.
        let broken = obj(vec![
            ("kind", Value::Str("logistic".into())),
            ("weights", Value::bits_vec(&[1.0, 2.0])),
        ]);
        assert!(matches!(err_of(&broken), Error::Seal(_)));
    }
}
