//! Learning algorithms: the classifier interface and its implementations.
//!
//! FairPrep "exposes a simple interface for learning algorithms, to allow
//! the integration of many different models with low effort" (§4). A
//! [`Classifier`] receives the feature matrix, binary labels, per-instance
//! weights (so that reweighing-style interventions work with every model),
//! and the run's random seed (so that training is reproducible).

use fairprep_data::error::{Error, Result};

use crate::matrix::Matrix;

pub mod forest;
pub mod knn;
pub mod logistic;
pub mod naive_bayes;
pub mod tree;

pub use forest::{RandomForest, RandomForestConfig};
pub use knn::KNearestNeighbors;
pub use logistic::{LogisticRegressionConfig, LogisticRegressionSgd, Penalty};
pub use naive_bayes::GaussianNaiveBayes;
pub use tree::{DecisionTree, DecisionTreeConfig, SplitCriterion};

/// An unfitted classifier configuration.
pub trait Classifier: Send + Sync {
    /// Stable algorithm name for run metadata.
    fn name(&self) -> &'static str;

    /// A short description of the configuration (hyperparameter values),
    /// used to label grid-search candidates.
    fn describe(&self) -> String;

    /// Trains on `(x, y)` with per-instance `weights`, deriving all
    /// randomness from `seed`.
    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>>;
}

/// A trained model.
pub trait FittedClassifier: Send + Sync {
    /// Probability of the favorable class for every row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Hard predictions at the 0.5 threshold.
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| f64::from(u8::from(p > 0.5)))
            .collect())
    }
}

/// Validates the common `(x, y, weights)` training inputs. Every
/// [`Classifier::fit`] implementation calls this first, so the provenance
/// leak guard here covers all models.
pub(crate) fn validate_training_inputs(x: &Matrix, y: &[f64], weights: &[f64]) -> Result<()> {
    fairprep_data::provenance::guard_fit(x.provenance(), "Classifier::fit");
    if x.n_rows() == 0 {
        return Err(Error::EmptyData("training matrix".to_string()));
    }
    if y.len() != x.n_rows() {
        return Err(Error::LengthMismatch {
            expected: x.n_rows(),
            actual: y.len(),
        });
    }
    if weights.len() != x.n_rows() {
        return Err(Error::LengthMismatch {
            expected: x.n_rows(),
            actual: weights.len(),
        });
    }
    // audit: allow(float-eq, reason = "label validity means exactly 0.0 or 1.0; approximate comparison would accept bad labels")
    if let Some(bad) = y.iter().find(|v| **v != 0.0 && **v != 1.0) {
        return Err(Error::InvalidLabel(*bad));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(Error::InvalidParameter {
            name: "weights",
            message: "weights must be finite and non-negative".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstantModel(f64);
    impl FittedClassifier for ConstantModel {
        fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
            Ok(vec![self.0; x.n_rows()])
        }
    }

    #[test]
    fn default_predict_thresholds_at_half() {
        let x = Matrix::zeros(3, 1);
        assert_eq!(ConstantModel(0.7).predict(&x).unwrap(), vec![1.0, 1.0, 1.0]);
        assert_eq!(ConstantModel(0.5).predict(&x).unwrap(), vec![0.0, 0.0, 0.0]);
        assert_eq!(ConstantModel(0.2).predict(&x).unwrap(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn input_validation() {
        let x = Matrix::zeros(2, 1);
        assert!(validate_training_inputs(&x, &[0.0, 1.0], &[1.0, 1.0]).is_ok());
        assert!(validate_training_inputs(&x, &[0.0], &[1.0, 1.0]).is_err());
        assert!(validate_training_inputs(&x, &[0.0, 2.0], &[1.0, 1.0]).is_err());
        assert!(validate_training_inputs(&x, &[0.0, 1.0], &[1.0, -1.0]).is_err());
        assert!(validate_training_inputs(&Matrix::zeros(0, 1), &[], &[]).is_err());
    }
}
