//! Logistic regression trained with stochastic gradient descent.
//!
//! This mirrors the paper's baseline "logistic regression
//! (`SGDClassifier` with logistic loss function)" (§4): per-example SGD on
//! the log loss with optional L1 / L2 / elastic-net regularization, an
//! inverse-scaling learning-rate schedule, per-instance sample weights, and
//! a seeded per-epoch shuffle.
//!
//! Like its scikit-learn counterpart, the optimizer is *deliberately* not
//! protected against unscaled features: gradient magnitudes grow with the
//! feature scale, and wildly-scaled inputs make training diverge. This is
//! exactly the failure mode §5.2 / Figure 3 of the paper studies.

use rand::seq::SliceRandom;

use fairprep_data::error::{Error, Result};
use fairprep_data::rng::component_rng;

use fairprep_trace::json::{obj, Value};

use crate::kernels::sgd_step;
use crate::matrix::{dot, sigmoid, Matrix};
use crate::model::{validate_training_inputs, Classifier, FittedClassifier};
use crate::sealing;

/// Regularization penalty for [`LogisticRegressionSgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Penalty {
    /// No regularization.
    None,
    /// L2 (ridge) penalty.
    L2,
    /// L1 (lasso) penalty.
    L1,
    /// Elastic net: `l1_ratio * L1 + (1 - l1_ratio) * L2`.
    ElasticNet {
        /// Mixing parameter in `[0, 1]`.
        l1_ratio: f64,
    },
}

impl Penalty {
    /// Stable name for metadata / grid descriptions.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Penalty::None => "none",
            Penalty::L2 => "l2",
            Penalty::L1 => "l1",
            Penalty::ElasticNet { .. } => "elasticnet",
        }
    }
}

/// Hyperparameters of the SGD logistic regression.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegressionConfig {
    /// Regularization kind.
    pub penalty: Penalty,
    /// Regularization strength (scikit-learn's `alpha`).
    pub alpha: f64,
    /// Initial learning rate (scikit-learn's `eta0` for the `invscaling`
    /// schedule; the effective rate at step `t` is `eta0 / t^power_t`).
    pub eta0: f64,
    /// Learning-rate decay exponent.
    pub power_t: f64,
    /// Number of passes over the data.
    pub max_epochs: usize,
    /// Whether to learn an intercept term.
    pub fit_intercept: bool,
}

impl Default for LogisticRegressionConfig {
    /// scikit-learn-like defaults: L2, `alpha = 1e-4`, `eta0 = 0.1` with
    /// inverse scaling, 20 epochs.
    fn default() -> Self {
        LogisticRegressionConfig {
            penalty: Penalty::L2,
            alpha: 1e-4,
            eta0: 0.1,
            power_t: 0.25,
            max_epochs: 20,
            fit_intercept: true,
        }
    }
}

/// SGD logistic regression (the paper's baseline linear model).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogisticRegressionSgd {
    /// Hyperparameter configuration.
    pub config: LogisticRegressionConfig,
}

impl LogisticRegressionSgd {
    /// Creates a learner with the given configuration.
    #[must_use]
    pub fn new(config: LogisticRegressionConfig) -> Self {
        LogisticRegressionSgd { config }
    }

    fn validate(&self) -> Result<()> {
        let c = &self.config;
        if !(c.alpha.is_finite() && c.alpha >= 0.0) {
            return Err(Error::InvalidParameter {
                name: "alpha",
                message: format!("{} must be finite and >= 0", c.alpha),
            });
        }
        if !(c.eta0.is_finite() && c.eta0 > 0.0) {
            return Err(Error::InvalidParameter {
                name: "eta0",
                message: format!("{} must be finite and > 0", c.eta0),
            });
        }
        if c.max_epochs == 0 {
            return Err(Error::InvalidParameter {
                name: "max_epochs",
                message: "must be >= 1".to_string(),
            });
        }
        if let Penalty::ElasticNet { l1_ratio } = c.penalty {
            if !(0.0..=1.0).contains(&l1_ratio) {
                return Err(Error::InvalidParameter {
                    name: "l1_ratio",
                    message: format!("{l1_ratio} not in [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

impl Classifier for LogisticRegressionSgd {
    fn name(&self) -> &'static str {
        "logistic_regression_sgd"
    }

    fn describe(&self) -> String {
        let c = &self.config;
        format!(
            "penalty={} alpha={} eta0={} epochs={}",
            c.penalty.name(),
            c.alpha,
            c.eta0,
            c.max_epochs
        )
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        self.validate()?;
        validate_training_inputs(x, y, weights)?;
        let n = x.n_rows();
        let d = x.n_cols();
        let c = &self.config;

        let mut w = vec![0.0_f64; d];
        let mut b = 0.0_f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = component_rng(seed, "learner/logistic_sgd");
        let mut t: u64 = 0;

        let (l1, l2) = match c.penalty {
            Penalty::None => (0.0, 0.0),
            Penalty::L1 => (c.alpha, 0.0),
            Penalty::L2 => (0.0, c.alpha),
            Penalty::ElasticNet { l1_ratio } => (c.alpha * l1_ratio, c.alpha * (1.0 - l1_ratio)),
        };

        for _epoch in 0..c.max_epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                #[allow(clippy::cast_precision_loss)]
                let eta = c.eta0 / (t as f64).powf(c.power_t);
                let row = x.row(i);
                let z = dot(&w, row) + b;
                let p = sigmoid(z);
                // Gradient of the weighted log loss wrt z: weight * (p - y).
                let g = weights[i] * (p - y[i]);
                // Element-wise fused update; bit-identical to the former
                // inline loop (see kernels::sgd_step's contract).
                sgd_step(&mut w, row, g, eta, l1, l2);
                if c.fit_intercept {
                    b -= eta * g;
                }
            }
        }

        Ok(Box::new(FittedLogisticRegression {
            weights: w,
            intercept: b,
        }))
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedLogisticRegression {
    /// Learned feature weights.
    pub weights: Vec<f64>,
    /// Learned intercept.
    pub intercept: f64,
}

/// Sealed-record kind tag for logistic regression.
pub(crate) const KIND: &str = "logistic";

impl FittedLogisticRegression {
    /// Reconstructs the model from a sealed component record.
    pub(crate) fn unseal(v: &Value) -> Result<FittedLogisticRegression> {
        sealing::expect_kind(v, KIND)?;
        Ok(FittedLogisticRegression {
            weights: sealing::req_f64_vec(v, "weights")?,
            intercept: sealing::req_f64(v, "intercept")?,
        })
    }
}

impl FittedClassifier for FittedLogisticRegression {
    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("weights", Value::bits_vec(&self.weights)),
            ("intercept", Value::bits(self.intercept)),
        ]))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        let mut scores = x.matvec(&self.weights)?;
        for z in &mut scores {
            *z += self.intercept;
            *z = if z.is_finite() {
                sigmoid(*z)
            } else {
                // A diverged model (unscaled features, §5.2) produces
                // non-finite scores; report an uninformative 0.5 rather
                // than poisoning downstream metrics with NaN.
                0.5
            };
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy problem: y = 1 iff x0 > 0.
    fn separable(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let v = if i % 2 == 0 { 1.0 } else { -1.0 };
                vec![v, 0.5]
            })
            .collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_separable_problem() {
        let (x, y) = separable(100);
        let model = LogisticRegressionSgd::default()
            .fit(&x, &y, &vec![1.0; 100], 7)
            .unwrap();
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 98, "only {correct}/100 correct");
    }

    #[test]
    fn training_is_seed_deterministic() {
        let (x, y) = separable(60);
        let w = vec![1.0; 60];
        let lr = LogisticRegressionSgd::default();
        let a = lr.fit(&x, &y, &w, 3).unwrap().predict_proba(&x).unwrap();
        let b = lr.fit(&x, &y, &w, 3).unwrap().predict_proba(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_weight_examples_are_ignored() {
        // Half the data is mislabeled but has zero weight: the model should
        // still learn the clean half.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut y: Vec<f64> = (0..100).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let mut w = vec![1.0; 100];
        for i in 50..100 {
            y[i] = 1.0 - y[i]; // flip labels
            w[i] = 0.0; // but remove influence
        }
        let model = LogisticRegressionSgd::default()
            .fit(&x, &y, &w, 11)
            .unwrap();
        let preds = model.predict(&x).unwrap();
        let clean_correct = (0..50).filter(|&i| preds[i] == y[i]).count();
        assert!(clean_correct >= 48, "{clean_correct}/50");
    }

    #[test]
    fn l1_produces_sparser_weights_than_none() {
        // Feature 1 is pure noise; L1 should shrink it harder.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                    ((i * 37) % 11) as f64 / 11.0,
                ]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..200).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let w = vec![1.0; 200];
        let dense = LogisticRegressionSgd::new(LogisticRegressionConfig {
            penalty: Penalty::None,
            ..Default::default()
        });
        let sparse = LogisticRegressionSgd::new(LogisticRegressionConfig {
            penalty: Penalty::L1,
            alpha: 0.01,
            ..Default::default()
        });
        let d = dense.fit(&x, &y, &w, 5).unwrap();
        let s = sparse.fit(&x, &y, &w, 5).unwrap();
        let d = d.predict_proba(&x).unwrap();
        let s = s.predict_proba(&x).unwrap();
        // Both should still classify well; this is a smoke test that the
        // penalty path runs and does not destroy the signal.
        let acc = |p: &Vec<f64>| {
            p.iter()
                .zip(&y)
                .filter(|(pi, yi)| (**pi > 0.5) == (**yi == 1.0))
                .count()
        };
        assert!(acc(&d) > 190);
        assert!(acc(&s) > 190);
    }

    #[test]
    fn diverged_model_reports_half_probability() {
        let model = FittedLogisticRegression {
            weights: vec![f64::INFINITY],
            intercept: 0.0,
        };
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert_eq!(model.predict_proba(&x).unwrap(), vec![0.5]);
    }

    #[test]
    fn predict_checks_dimensionality() {
        let model = FittedLogisticRegression {
            weights: vec![1.0, 2.0],
            intercept: 0.0,
        };
        let x = Matrix::zeros(1, 3);
        assert!(model.predict_proba(&x).is_err());
    }

    #[test]
    fn config_validation() {
        let w = vec![1.0; 4];
        let (x, y) = separable(4);
        let bad_alpha = LogisticRegressionSgd::new(LogisticRegressionConfig {
            alpha: -1.0,
            ..Default::default()
        });
        assert!(bad_alpha.fit(&x, &y, &w, 0).is_err());
        let bad_ratio = LogisticRegressionSgd::new(LogisticRegressionConfig {
            penalty: Penalty::ElasticNet { l1_ratio: 2.0 },
            ..Default::default()
        });
        assert!(bad_ratio.fit(&x, &y, &w, 0).is_err());
        let bad_epochs = LogisticRegressionSgd::new(LogisticRegressionConfig {
            max_epochs: 0,
            ..Default::default()
        });
        assert!(bad_epochs.fit(&x, &y, &w, 0).is_err());
    }

    #[test]
    fn describe_mentions_hyperparameters() {
        let lr = LogisticRegressionSgd::default();
        let d = lr.describe();
        assert!(d.contains("penalty=l2"));
        assert!(d.contains("alpha=0.0001"));
    }
}
