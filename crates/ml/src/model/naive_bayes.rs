//! Gaussian naive Bayes — an additional baseline model.
//!
//! The paper lists "integrating additional ... models" as future work (§7);
//! this learner extends the baseline pool beyond logistic regression and
//! decision trees. It models each feature as a per-class Gaussian with
//! weighted maximum-likelihood estimates, which works well on the one-hot +
//! scaled-numeric matrices the featurizer produces.

// audit: allow-file(index-literal, reason = "per-class state lives in [_; 2] arrays indexed by bool casts of the binary label")
use fairprep_data::error::Result;
use fairprep_trace::json::{obj, Value};

use crate::matrix::Matrix;
use crate::model::{validate_training_inputs, Classifier, FittedClassifier};
use crate::sealing;

/// Gaussian naive Bayes learner.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaussianNaiveBayes {
    /// Additive variance smoothing (relative to the largest feature
    /// variance), guarding against zero-variance features. `0.0` uses the
    /// default `1e-9`.
    pub var_smoothing: f64,
}

impl Classifier for GaussianNaiveBayes {
    fn name(&self) -> &'static str {
        "gaussian_naive_bayes"
    }

    fn describe(&self) -> String {
        format!("var_smoothing={}", self.effective_smoothing())
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        _seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        validate_training_inputs(x, y, weights)?;
        let d = x.n_cols();

        let mut stats = [ClassStats::new(d), ClassStats::new(d)];
        for (i, row) in x.rows_iter().enumerate() {
            // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
            let c = usize::from(y[i] == 1.0);
            stats[c].accumulate(row, weights[i]);
        }
        let total_weight: f64 = stats[0].weight + stats[1].weight;
        // A class with no training mass gets a vanishing prior and neutral
        // Gaussians — the model then always predicts the observed class.
        let mut params = Vec::with_capacity(2);
        let mut max_var = 0.0_f64;
        for s in &stats {
            let (means, vars) = s.finalize();
            for &v in &vars {
                max_var = max_var.max(v);
            }
            params.push((means, vars));
        }
        let eps = self.effective_smoothing() * max_var.max(1.0);
        for (_, vars) in &mut params {
            for v in vars {
                *v += eps;
            }
        }

        Ok(Box::new(FittedGaussianNb {
            log_prior: [
                ((stats[0].weight / total_weight).max(1e-300)).ln(),
                ((stats[1].weight / total_weight).max(1e-300)).ln(),
            ],
            params,
            n_features: d,
        }))
    }
}

impl GaussianNaiveBayes {
    fn effective_smoothing(&self) -> f64 {
        if self.var_smoothing > 0.0 {
            self.var_smoothing
        } else {
            1e-9
        }
    }
}

struct ClassStats {
    weight: f64,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl ClassStats {
    fn new(d: usize) -> Self {
        ClassStats {
            weight: 0.0,
            sum: vec![0.0; d],
            sum_sq: vec![0.0; d],
        }
    }

    fn accumulate(&mut self, row: &[f64], w: f64) {
        self.weight += w;
        for ((s, ss), &v) in self.sum.iter_mut().zip(&mut self.sum_sq).zip(row) {
            *s += w * v;
            *ss += w * v * v;
        }
    }

    fn finalize(&self) -> (Vec<f64>, Vec<f64>) {
        let w = self.weight.max(1e-12);
        let means: Vec<f64> = self.sum.iter().map(|s| s / w).collect();
        let vars: Vec<f64> = self
            .sum_sq
            .iter()
            .zip(&means)
            .map(|(ss, m)| (ss / w - m * m).max(0.0))
            .collect();
        (means, vars)
    }
}

/// A trained Gaussian naive Bayes model.
pub(crate) struct FittedGaussianNb {
    log_prior: [f64; 2],
    params: Vec<(Vec<f64>, Vec<f64>)>,
    n_features: usize,
}

/// Sealed-record kind tag for Gaussian naive Bayes.
pub(crate) const KIND: &str = "gaussian_nb";

impl FittedGaussianNb {
    /// Reconstructs the model from a sealed component record.
    pub(crate) fn unseal(v: &Value) -> Result<FittedGaussianNb> {
        sealing::expect_kind(v, KIND)?;
        let n_features = sealing::req_usize(v, "n_features")?;
        let log_prior = sealing::req_f64_vec(v, "log_prior")?;
        let [p0, p1] = log_prior.as_slice() else {
            return Err(sealing::seal_err("log_prior must hold exactly two values"));
        };
        let mut params = Vec::with_capacity(2);
        for class in ["class0", "class1"] {
            let record = sealing::req(v, class)?;
            let means = sealing::req_f64_vec(record, "means")?;
            let vars = sealing::req_f64_vec(record, "vars")?;
            if means.len() != n_features || vars.len() != n_features {
                return Err(sealing::seal_err(format!(
                    "{class} parameters do not match feature width {n_features}"
                )));
            }
            params.push((means, vars));
        }
        Ok(FittedGaussianNb {
            log_prior: [*p0, *p1],
            params,
            n_features,
        })
    }
}

impl FittedClassifier for FittedGaussianNb {
    fn seal(&self) -> Result<Value> {
        let class = |c: usize| {
            obj(vec![
                ("means", Value::bits_vec(&self.params[c].0)),
                ("vars", Value::bits_vec(&self.params[c].1)),
            ])
        };
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("n_features", Value::from_u64(self.n_features as u64)),
            ("log_prior", Value::bits_vec(&self.log_prior)),
            ("class0", class(0)),
            ("class1", class(1)),
        ]))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.n_cols() != self.n_features {
            return Err(fairprep_data::error::Error::LengthMismatch {
                expected: self.n_features,
                actual: x.n_cols(),
            });
        }
        Ok(x.rows_iter()
            .map(|row| {
                let mut log_like = [self.log_prior[0], self.log_prior[1]];
                for (c, ll) in log_like.iter_mut().enumerate() {
                    let (means, vars) = &self.params[c];
                    for ((&v, &m), &var) in row.iter().zip(means).zip(vars) {
                        *ll += -0.5 * ((v - m).powi(2) / var + var.ln());
                    }
                }
                // P(y=1 | x) via a stable log-sum-exp over the two classes.
                let m = log_like[0].max(log_like[1]);
                let e0 = (log_like[0] - m).exp();
                let e1 = (log_like[1] - m).exp();
                e1 / (e0 + e1)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> (Matrix, Vec<f64>) {
        // Class 0 around -2, class 1 around +2, small deterministic jitter.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let jitter = ((i * 13) % 7) as f64 / 10.0 - 0.3;
            if i % 2 == 0 {
                rows.push(vec![-2.0 + jitter, 0.0]);
                y.push(0.0);
            } else {
                rows.push(vec![2.0 + jitter, 0.0]);
                y.push(1.0);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = gaussian_blobs();
        let model = GaussianNaiveBayes::default()
            .fit(&x, &y, &vec![1.0; y.len()], 0)
            .unwrap();
        assert_eq!(model.predict(&x).unwrap(), y);
    }

    #[test]
    fn constant_feature_is_safe() {
        // Second feature has zero variance in both classes; smoothing must
        // prevent division by zero.
        let (x, y) = gaussian_blobs();
        let model = GaussianNaiveBayes::default()
            .fit(&x, &y, &vec![1.0; y.len()], 0)
            .unwrap();
        let probas = model.predict_proba(&x).unwrap();
        assert!(probas.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn weights_shift_the_prior() {
        // Identical features, conflicting labels: prediction follows the
        // heavier class.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        let y = vec![1.0, 0.0];
        let heavy_pos = GaussianNaiveBayes::default()
            .fit(&x, &y, &[9.0, 1.0], 0)
            .unwrap();
        let p = heavy_pos.predict_proba(&x).unwrap();
        assert!(p[0] > 0.5);
        let heavy_neg = GaussianNaiveBayes::default()
            .fit(&x, &y, &[1.0, 9.0], 0)
            .unwrap();
        let q = heavy_neg.predict_proba(&x).unwrap();
        assert!(q[0] < 0.5);
    }

    #[test]
    fn predict_checks_dimensionality() {
        let (x, y) = gaussian_blobs();
        let model = GaussianNaiveBayes::default()
            .fit(&x, &y, &vec![1.0; y.len()], 0)
            .unwrap();
        assert!(model.predict_proba(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn describe_and_name() {
        let nb = GaussianNaiveBayes::default();
        assert_eq!(nb.name(), "gaussian_naive_bayes");
        assert!(nb.describe().contains("var_smoothing"));
    }
}
