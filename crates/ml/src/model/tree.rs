//! CART-style decision-tree classifier.
//!
//! The paper's second baseline model ("decision trees from scikit-learn",
//! §4), with the hyperparameters its §5.1 grid sweeps: split criterion
//! (gini / entropy), maximum depth, minimum samples per leaf, and minimum
//! samples per split. Supports per-instance weights so that reweighing-style
//! interventions influence tree construction, and is — like all tree
//! learners — insensitive to monotone feature scaling (the §5.2 / Figure 3
//! contrast with logistic regression).

use fairprep_data::error::{Error, Result};
use fairprep_trace::json::{obj, Value};

use crate::matrix::Matrix;
use crate::model::{validate_training_inputs, Classifier, FittedClassifier};
use crate::sealing;

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitCriterion {
    /// Gini impurity.
    Gini,
    /// Shannon entropy.
    Entropy,
}

impl SplitCriterion {
    /// Stable name for metadata.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SplitCriterion::Gini => "gini",
            SplitCriterion::Entropy => "entropy",
        }
    }

    /// Impurity of a node with weighted positive mass `pos` out of total
    /// weighted mass `total`.
    fn impurity(self, pos: f64, total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        let p = (pos / total).clamp(0.0, 1.0);
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let mut h = 0.0;
                for q in [p, 1.0 - p] {
                    if q > 0.0 {
                        h -= q * q.log2();
                    }
                }
                h
            }
        }
    }
}

/// Hyperparameters of [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTreeConfig {
    /// Split-quality criterion.
    pub criterion: SplitCriterion,
    /// Maximum tree depth (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Minimum number of samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            criterion: SplitCriterion::Gini,
            max_depth: None,
            min_samples_leaf: 1,
            min_samples_split: 2,
        }
    }
}

/// CART decision-tree learner.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecisionTree {
    /// Hyperparameter configuration.
    pub config: DecisionTreeConfig,
}

impl DecisionTree {
    /// Creates a learner with the given configuration.
    #[must_use]
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTree { config }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained decision tree (nodes stored in an arena; index 0 is the root).
#[derive(Debug, Clone, PartialEq)]
pub struct FittedDecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl FittedDecisionTree {
    /// Number of nodes (splits + leaves).
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Feature width the tree was trained on.
    pub(crate) fn n_features(&self) -> usize {
        self.n_features
    }

    /// Depth of the tree (a lone leaf has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    fn proba_one(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Leaf probability for a full-width `row` when the tree was trained on
    /// the feature subset `features` (tree feature `f` reads
    /// `row[features[f]]`). Lets subspace ensembles predict straight off
    /// the original matrix without materializing per-member column
    /// selections.
    pub(crate) fn proba_one_mapped(&self, row: &[f64], features: &[usize]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[features[*feature]] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Sealed-record kind tag for CART decision trees.
pub(crate) const KIND: &str = "decision_tree";

impl FittedDecisionTree {
    /// Reconstructs the tree from a sealed component record.
    ///
    /// The arena invariant — a split's children sit at *strictly larger*
    /// indices than the split itself (the builder reserves the parent slot
    /// before recursing) — is re-validated here, so a corrupted artifact
    /// cannot smuggle in an out-of-bounds child (panic in `proba_one`) or
    /// a back-edge (infinite traversal loop).
    pub(crate) fn unseal(v: &Value) -> Result<FittedDecisionTree> {
        sealing::expect_kind(v, KIND)?;
        let n_features = sealing::req_usize(v, "n_features")?;
        let raw = sealing::req_arr(v, "nodes")?;
        if raw.is_empty() {
            return Err(sealing::seal_err("decision tree has no nodes"));
        }
        let mut nodes = Vec::with_capacity(raw.len());
        for (i, node) in raw.iter().enumerate() {
            if let Some(leaf) = node.get("leaf") {
                let proba = leaf
                    .as_f64_bits()
                    .ok_or_else(|| sealing::seal_err("leaf proba is not a float bit pattern"))?;
                nodes.push(Node::Leaf { proba });
            } else {
                let feature = sealing::req_usize(node, "feature")?;
                let threshold = sealing::req_f64(node, "threshold")?;
                let left = sealing::req_usize(node, "left")?;
                let right = sealing::req_usize(node, "right")?;
                if feature >= n_features {
                    return Err(sealing::seal_err(format!(
                        "split node {i} reads feature {feature} of {n_features}"
                    )));
                }
                if left <= i || right <= i || left >= raw.len() || right >= raw.len() {
                    return Err(sealing::seal_err(format!(
                        "split node {i} has invalid children ({left}, {right}) in arena of {}",
                        raw.len()
                    )));
                }
                nodes.push(Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                });
            }
        }
        Ok(FittedDecisionTree { nodes, n_features })
    }
}

impl FittedClassifier for FittedDecisionTree {
    fn seal(&self) -> Result<Value> {
        let nodes = self
            .nodes
            .iter()
            .map(|node| match node {
                Node::Leaf { proba } => obj(vec![("leaf", Value::bits(*proba))]),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => obj(vec![
                    ("feature", Value::from_u64(*feature as u64)),
                    ("threshold", Value::bits(*threshold)),
                    ("left", Value::from_u64(*left as u64)),
                    ("right", Value::from_u64(*right as u64)),
                ]),
            })
            .collect();
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("n_features", Value::from_u64(self.n_features as u64)),
            ("nodes", Value::Arr(nodes)),
        ]))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.n_cols() != self.n_features {
            return Err(Error::LengthMismatch {
                expected: self.n_features,
                actual: x.n_cols(),
            });
        }
        Ok(x.rows_iter().map(|row| self.proba_one(row)).collect())
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    w: &'a [f64],
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl Builder<'_> {
    fn build(&mut self, indices: &mut [usize], depth: usize) -> usize {
        let (pos, total) = self.weighted_counts(indices);
        let node_impurity = self.config.criterion.impurity(pos, total);
        let proba = if total > 0.0 { pos / total } else { 0.5 };

        let depth_ok = self.config.max_depth.is_none_or(|d| depth < d);
        let can_split = depth_ok
            && indices.len() >= self.config.min_samples_split
            && indices.len() >= 2 * self.config.min_samples_leaf
            && node_impurity > 1e-12;

        let best = if can_split {
            self.best_split(indices, node_impurity, total)
        } else {
            None
        };

        match best {
            None => {
                self.nodes.push(Node::Leaf { proba });
                self.nodes.len() - 1
            }
            Some(split) => {
                // Partition indices in place around the threshold.
                let mid = partition(indices, |i| self.x.get(i, split.feature) <= split.threshold);
                // Reserve our slot before recursing so the root is node 0.
                self.nodes.push(Node::Leaf { proba });
                let me = self.nodes.len() - 1;
                let (left_ix, right_ix) = indices.split_at_mut(mid);
                let left = self.build(left_ix, depth + 1);
                let right = self.build(right_ix, depth + 1);
                self.nodes[me] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                me
            }
        }
    }

    fn weighted_counts(&self, indices: &[usize]) -> (f64, f64) {
        let mut pos = 0.0;
        let mut total = 0.0;
        for &i in indices {
            total += self.w[i];
            pos += self.w[i] * self.y[i];
        }
        (pos, total)
    }

    fn best_split(
        &self,
        indices: &[usize],
        node_impurity: f64,
        total_weight: f64,
    ) -> Option<BestSplit> {
        let min_leaf = self.config.min_samples_leaf;
        let mut best: Option<BestSplit> = None;
        let mut order: Vec<usize> = Vec::with_capacity(indices.len());

        for feature in 0..self.x.n_cols() {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_unstable_by(|&a, &b| {
                self.x.get(a, feature).total_cmp(&self.x.get(b, feature))
            });

            let mut left_pos = 0.0;
            let mut left_total = 0.0;
            let (all_pos, all_total) = self.weighted_counts(indices);
            for k in 0..order.len() - 1 {
                let i = order[k];
                left_pos += self.w[i] * self.y[i];
                left_total += self.w[i];
                let xv = self.x.get(i, feature);
                let xn = self.x.get(order[k + 1], feature);
                if xv == xn {
                    continue; // cannot split between equal values
                }
                let n_left = k + 1;
                let n_right = order.len() - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let right_pos = all_pos - left_pos;
                let right_total = all_total - left_total;
                let imp_l = self.config.criterion.impurity(left_pos, left_total);
                let imp_r = self.config.criterion.impurity(right_pos, right_total);
                let weighted_child =
                    (left_total * imp_l + right_total * imp_r) / total_weight.max(1e-12);
                // Like scikit-learn with `min_impurity_decrease = 0`, zero-gain
                // splits are admissible (this is what lets greedy CART solve
                // XOR-shaped problems); ties keep the first (lowest-feature)
                // candidate for determinism.
                let gain = node_impurity - weighted_child;
                if gain >= 0.0 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestSplit {
                        feature,
                        threshold: midpoint(xv, xn),
                        gain,
                    });
                }
            }
        }
        best
    }
}

/// Midpoint that is guaranteed to satisfy `lo <= mid < hi` for `lo < hi`.
fn midpoint(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) / 2.0;
    if mid >= hi {
        lo
    } else {
        mid
    }
}

/// Stable-ish partition: moves elements satisfying `pred` to the front,
/// returns the boundary index.
fn partition(indices: &mut [usize], pred: impl Fn(usize) -> bool) -> usize {
    let mut store = 0usize;
    for k in 0..indices.len() {
        if pred(indices[k]) {
            indices.swap(store, k);
            store += 1;
        }
    }
    store
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "decision_tree"
    }

    fn describe(&self) -> String {
        let c = &self.config;
        format!(
            "criterion={} max_depth={} min_leaf={} min_split={}",
            c.criterion.name(),
            c.max_depth
                .map_or_else(|| "none".to_string(), |d| d.to_string()),
            c.min_samples_leaf,
            c.min_samples_split
        )
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        Ok(Box::new(self.fit_tree(x, y, weights, seed)?))
    }
}

impl DecisionTree {
    /// Fits and returns the concrete tree type (no trait-object box) —
    /// ensembles store members concretely and traverse them inline.
    pub fn fit_tree(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        _seed: u64,
    ) -> Result<FittedDecisionTree> {
        validate_training_inputs(x, y, weights)?;
        if self.config.min_samples_leaf == 0 || self.config.min_samples_split < 2 {
            return Err(Error::InvalidParameter {
                name: "decision_tree",
                message: "min_samples_leaf >= 1 and min_samples_split >= 2 required".to_string(),
            });
        }
        let mut indices: Vec<usize> = (0..x.n_rows()).collect();
        let mut builder = Builder {
            x,
            y,
            w: weights,
            config: self.config,
            nodes: Vec::new(),
        };
        builder.build(&mut indices, 0);
        Ok(FittedDecisionTree {
            nodes: builder.nodes,
            n_features: x.n_cols(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<f64>) {
        // XOR needs depth >= 2 — not linearly separable.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..10 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push(vec![a, b]);
                y.push(f64::from(u8::from((a == 1.0) != (b == 1.0))));
            }
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let model = DecisionTree::default()
            .fit(&x, &y, &vec![1.0; y.len()], 0)
            .unwrap();
        let preds = model.predict(&x).unwrap();
        assert_eq!(preds, y);
    }

    #[test]
    fn max_depth_limits_tree() {
        let (x, y) = xor_data();
        let tree = DecisionTree::new(DecisionTreeConfig {
            max_depth: Some(1),
            ..Default::default()
        });
        let model = tree.fit(&x, &y, &vec![1.0; y.len()], 0).unwrap();
        // With depth 1, XOR cannot be solved: accuracy stays at 50%.
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct <= y.len() / 2 + 4);
    }

    #[test]
    fn depth_zero_is_single_leaf_base_rate() {
        let (x, y) = xor_data();
        let tree = DecisionTree::new(DecisionTreeConfig {
            max_depth: Some(0),
            ..Default::default()
        });
        let model = tree.fit(&x, &y, &vec![1.0; y.len()], 0).unwrap();
        let probas = model.predict_proba(&x).unwrap();
        for p in probas {
            assert!((p - 0.5).abs() < 1e-12); // XOR base rate
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..10).map(|i| f64::from(u8::from(i >= 9))).collect();
        let tree = DecisionTree::new(DecisionTreeConfig {
            min_samples_leaf: 3,
            ..Default::default()
        });
        let x = Matrix::from_rows(&rows).unwrap();
        let model = tree.fit(&x, &y, &[1.0; 10], 0).unwrap();
        // The pure split (9 vs 1) is forbidden; the tree must compromise.
        // Verify no leaf captured fewer than 3 samples by checking the split
        // structure indirectly: prediction for the lone positive cannot be
        // fully confident.
        let proba = model.predict_proba(&x).unwrap();
        assert!(proba[9] < 1.0);
    }

    #[test]
    fn weights_shift_leaf_probabilities() {
        // Same feature value, conflicting labels: leaf probability must be
        // the weighted positive fraction.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let y = vec![1.0, 0.0];
        let model = DecisionTree::default().fit(&x, &y, &[3.0, 1.0], 0).unwrap();
        let proba = model.predict_proba(&x).unwrap();
        assert!((proba[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance_of_predictions() {
        // Multiply a feature by 1000: the tree's predictions are unchanged
        // (the §5.2 robustness property).
        let (x, y) = xor_data();
        let scaled_rows: Vec<Vec<f64>> = x
            .rows_iter()
            .map(|r| vec![r[0] * 1000.0, r[1] * 1000.0])
            .collect();
        let xs = Matrix::from_rows(&scaled_rows).unwrap();
        let w = vec![1.0; y.len()];
        let m1 = DecisionTree::default().fit(&x, &y, &w, 0).unwrap();
        let m2 = DecisionTree::default().fit(&xs, &y, &w, 0).unwrap();
        assert_eq!(m1.predict(&x).unwrap(), m2.predict(&xs).unwrap());
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let (x, y) = xor_data();
        let tree = DecisionTree::new(DecisionTreeConfig {
            criterion: SplitCriterion::Entropy,
            ..Default::default()
        });
        let model = tree.fit(&x, &y, &vec![1.0; y.len()], 0).unwrap();
        assert_eq!(model.predict(&x).unwrap(), y);
    }

    #[test]
    fn predict_checks_dimensionality() {
        let (x, y) = xor_data();
        let model = DecisionTree::default()
            .fit(&x, &y, &vec![1.0; y.len()], 0)
            .unwrap();
        assert!(model.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let (x, y) = xor_data();
        let w = vec![1.0; y.len()];
        let bad = DecisionTree::new(DecisionTreeConfig {
            min_samples_leaf: 0,
            ..Default::default()
        });
        assert!(bad.fit(&x, &y, &w, 0).is_err());
        let bad2 = DecisionTree::new(DecisionTreeConfig {
            min_samples_split: 1,
            ..Default::default()
        });
        assert!(bad2.fit(&x, &y, &w, 0).is_err());
    }

    #[test]
    fn impurity_functions() {
        assert_eq!(SplitCriterion::Gini.impurity(0.0, 10.0), 0.0);
        assert_eq!(SplitCriterion::Gini.impurity(10.0, 10.0), 0.0);
        assert!((SplitCriterion::Gini.impurity(5.0, 10.0) - 0.5).abs() < 1e-12);
        assert!((SplitCriterion::Entropy.impurity(5.0, 10.0) - 1.0).abs() < 1e-12);
        assert_eq!(SplitCriterion::Entropy.impurity(0.0, 10.0), 0.0);
    }

    #[test]
    fn tree_structure_accessors() {
        let (x, y) = xor_data();
        let boxed = DecisionTree::default()
            .fit(&x, &y, &vec![1.0; y.len()], 0)
            .unwrap();
        // Downcast via re-fit to the concrete type for structural checks.
        let mut indices: Vec<usize> = (0..x.n_rows()).collect();
        let mut b = Builder {
            x: &x,
            y: &y,
            w: &vec![1.0; y.len()],
            config: DecisionTreeConfig::default(),
            nodes: Vec::new(),
        };
        b.build(&mut indices, 0);
        let tree = FittedDecisionTree {
            nodes: b.nodes,
            n_features: 2,
        };
        assert!(tree.depth() >= 2);
        assert!(tree.n_nodes() >= 5);
        assert_eq!(tree.predict(&x).unwrap(), boxed.predict(&x).unwrap());
    }
}
