//! Random forest — bagged decision trees with random feature subspaces.
//!
//! An extension model (the paper lists "additional models" as future work,
//! §7). Each tree trains on a seeded bootstrap sample of the rows and a
//! seeded random subset of the features (the random-subspace method);
//! predictions average the per-tree leaf probabilities. Instance weights
//! flow into both the bootstrap draw (via weighted sampling) and the tree
//! construction, so reweighing-style interventions affect the ensemble.

use rand::Rng;

use fairprep_data::error::{Error, Result};
use fairprep_data::rng::{component_rng, derive_seed};
use fairprep_trace::json::{obj, Value};

use crate::matrix::Matrix;
use crate::model::tree::{DecisionTree, DecisionTreeConfig, FittedDecisionTree};
use crate::model::{validate_training_inputs, Classifier, FittedClassifier};
use crate::sealing;

/// Hyperparameters of [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: DecisionTreeConfig,
    /// Number of features each tree sees (`None` = `ceil(sqrt(d))`).
    pub max_features: Option<usize>,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 50,
            tree: DecisionTreeConfig {
                min_samples_leaf: 2,
                ..Default::default()
            },
            max_features: None,
        }
    }
}

/// Random-forest learner.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RandomForest {
    /// Hyperparameter configuration.
    pub config: RandomForestConfig,
}

impl RandomForest {
    /// Creates a learner with the given configuration.
    #[must_use]
    pub fn new(config: RandomForestConfig) -> Self {
        RandomForest { config }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "random_forest"
    }

    fn describe(&self) -> String {
        format!(
            "n_trees={} max_depth={} max_features={}",
            self.config.n_trees,
            self.config
                .tree
                .max_depth
                .map_or_else(|| "none".to_string(), |d| d.to_string()),
            self.config
                .max_features
                .map_or_else(|| "sqrt".to_string(), |f| f.to_string()),
        )
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        validate_training_inputs(x, y, weights)?;
        if self.config.n_trees == 0 {
            return Err(Error::InvalidParameter {
                name: "n_trees",
                message: "a forest needs at least one tree".to_string(),
            });
        }
        let n = x.n_rows();
        let d = x.n_cols();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let n_features = self
            .config
            .max_features
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d);

        // Weighted cumulative distribution for the bootstrap draw.
        let total_weight: f64 = weights.iter().sum();
        if total_weight <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "weights",
                message: "total weight must be positive".to_string(),
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cdf.push(acc);
        }

        let tree_learner = DecisionTree::new(self.config.tree);
        let mut members = Vec::with_capacity(self.config.n_trees);
        for t in 0..self.config.n_trees {
            let tree_seed = derive_seed(seed, &format!("forest/tree/{t}"));
            let mut rng = component_rng(tree_seed, "bootstrap");

            // Weighted bootstrap of the rows.
            let rows: Vec<usize> = (0..n)
                .map(|_| {
                    let draw = rng.random::<f64>() * total_weight;
                    cdf.partition_point(|&c| c < draw).min(n - 1)
                })
                .collect();

            // Random feature subspace.
            let mut features: Vec<usize> = (0..d).collect();
            for i in 0..n_features {
                let j = rng.random_range(i..d);
                features.swap(i, j);
            }
            features.truncate(n_features);
            features.sort_unstable();

            // Single-pass bootstrap×subspace gather — no intermediate
            // full-width bootstrap copy.
            let x_sub = x.gather(&rows, &features);
            let y_sub = crate::kernels::gather_vec(y, &rows);
            // Bootstrap already accounts for the weights.
            let w_sub = vec![1.0; rows.len()];
            let model = tree_learner.fit_tree(&x_sub, &y_sub, &w_sub, tree_seed)?;
            members.push(ForestMember { features, model });
        }
        Ok(Box::new(FittedRandomForest {
            members,
            n_features: d,
        }))
    }
}

struct ForestMember {
    features: Vec<usize>,
    model: FittedDecisionTree,
}

/// A trained random forest.
pub struct FittedRandomForest {
    members: Vec<ForestMember>,
    n_features: usize,
}

/// Sealed-record kind tag for random forests.
pub(crate) const KIND: &str = "random_forest";

impl FittedRandomForest {
    /// Reconstructs the forest from a sealed component record. Each
    /// member's subspace indices are validated against the full feature
    /// width (the mapped predict path indexes `row[features[f]]`
    /// unchecked), and every member tree re-runs its own arena checks.
    pub(crate) fn unseal(v: &Value) -> Result<FittedRandomForest> {
        sealing::expect_kind(v, KIND)?;
        let n_features = sealing::req_usize(v, "n_features")?;
        let mut members = Vec::new();
        for member in sealing::req_arr(v, "members")? {
            let features = sealing::req_arr(member, "features")?
                .iter()
                .map(|f| {
                    f.as_u64_any()
                        .map(|f| f as usize)
                        .ok_or_else(|| sealing::seal_err("member feature index is not an integer"))
                })
                .collect::<Result<Vec<usize>>>()?;
            if let Some(&bad) = features.iter().find(|&&f| f >= n_features) {
                return Err(sealing::seal_err(format!(
                    "member subspace index {bad} exceeds feature width {n_features}"
                )));
            }
            let model = FittedDecisionTree::unseal(sealing::req(member, "tree")?)?;
            if model.n_features() != features.len() {
                return Err(sealing::seal_err(format!(
                    "member tree width {} does not match its subspace of {}",
                    model.n_features(),
                    features.len()
                )));
            }
            members.push(ForestMember { features, model });
        }
        if members.is_empty() {
            return Err(sealing::seal_err("random forest has no members"));
        }
        Ok(FittedRandomForest {
            members,
            n_features,
        })
    }
}

impl FittedClassifier for FittedRandomForest {
    fn seal(&self) -> Result<Value> {
        let members = self
            .members
            .iter()
            .map(|member| {
                Ok(obj(vec![
                    (
                        "features",
                        Value::Arr(
                            member
                                .features
                                .iter()
                                .map(|&f| Value::from_u64(f as u64))
                                .collect(),
                        ),
                    ),
                    ("tree", member.model.seal()?),
                ]))
            })
            .collect::<Result<Vec<Value>>>()?;
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("n_features", Value::from_u64(self.n_features as u64)),
            ("members", Value::Arr(members)),
        ]))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.n_cols() != self.n_features {
            return Err(Error::LengthMismatch {
                expected: self.n_features,
                actual: x.n_cols(),
            });
        }
        // Trees read their subspace straight off the full-width rows — no
        // per-member column selection or per-member probability vector.
        let mut sums = vec![0.0_f64; x.n_rows()];
        for member in &self.members {
            for (s, row) in sums.iter_mut().zip(x.rows_iter()) {
                *s += member.model.proba_one_mapped(row, &member.features);
            }
        }
        let k = self.members.len() as f64;
        Ok(sums.into_iter().map(|s| s / k).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy majority problem: y depends on feature 0, features 1–3 are
    /// uninformative.
    fn data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    f64::from(u8::from(i % 2 == 0)),
                    ((i * 7) % 13) as f64,
                    ((i * 3) % 5) as f64,
                    ((i * 11) % 17) as f64,
                ]
            })
            .collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_with_feature_subspaces() {
        let (x, y) = data(200);
        let forest = RandomForest::default();
        let model = forest.fit(&x, &y, &vec![1.0; 200], 5).unwrap();
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 190, "{correct}/200");
    }

    #[test]
    fn training_is_seed_deterministic() {
        let (x, y) = data(100);
        let w = vec![1.0; 100];
        let forest = RandomForest::new(RandomForestConfig {
            n_trees: 11,
            ..Default::default()
        });
        let a = forest
            .fit(&x, &y, &w, 9)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        let b = forest
            .fit(&x, &y, &w, 9)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        assert_eq!(a, b);
        let c = forest
            .fit(&x, &y, &w, 10)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn probabilities_are_ensemble_averages() {
        let (x, y) = data(80);
        let model = RandomForest::default()
            .fit(&x, &y, &vec![1.0; 80], 2)
            .unwrap();
        for p in model.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn weights_bias_the_bootstrap() {
        // Conflicting labels at the same point; heavy weight decides.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        let y = vec![1.0, 0.0];
        let forest = RandomForest::new(RandomForestConfig {
            n_trees: 30,
            ..Default::default()
        });
        let heavy_pos = forest.fit(&x, &y, &[20.0, 1.0], 3).unwrap();
        assert!(heavy_pos.predict_proba(&x).unwrap()[0] > 0.5);
        let heavy_neg = forest.fit(&x, &y, &[1.0, 20.0], 3).unwrap();
        assert!(heavy_neg.predict_proba(&x).unwrap()[0] < 0.5);
    }

    #[test]
    fn invalid_config_rejected() {
        let (x, y) = data(10);
        let forest = RandomForest::new(RandomForestConfig {
            n_trees: 0,
            ..Default::default()
        });
        assert!(forest.fit(&x, &y, &[1.0; 10], 0).is_err());
    }

    #[test]
    fn predict_checks_dimensionality() {
        let (x, y) = data(20);
        let model = RandomForest::default().fit(&x, &y, &[1.0; 20], 0).unwrap();
        assert!(model.predict_proba(&Matrix::zeros(1, 9)).is_err());
    }

    #[test]
    fn max_features_clamped_and_respected() {
        let (x, y) = data(60);
        let forest = RandomForest::new(RandomForestConfig {
            n_trees: 5,
            max_features: Some(100), // clamps to d = 4
            ..Default::default()
        });
        let model = forest.fit(&x, &y, &vec![1.0; 60], 1).unwrap();
        assert_eq!(model.predict(&x).unwrap().len(), 60);
    }

    #[test]
    fn describe_mentions_parameters() {
        let d = RandomForest::default().describe();
        assert!(d.contains("n_trees=50"));
        assert!(d.contains("max_features=sqrt"));
    }
}
