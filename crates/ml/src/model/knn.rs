//! k-nearest-neighbours classifier — an additional baseline model
//! (paper future work §7).
//!
//! Predicts the weighted positive fraction among the `k` nearest training
//! examples (Euclidean distance on the featurized matrix). Instance
//! weights act as vote weights, so reweighing-style interventions shift
//! the neighbourhood votes. Like decision trees, kNN on *standardized*
//! features behaves sensibly; on unscaled features the largest-magnitude
//! attribute dominates the distance — another §5.2-style scaling
//! sensitivity.

use fairprep_data::error::{Error, Result};
use fairprep_trace::json::{obj, Value};

use crate::matrix::Matrix;
use crate::model::{validate_training_inputs, Classifier, FittedClassifier};
use crate::sealing;

/// k-nearest-neighbours learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KNearestNeighbors {
    /// Number of neighbours.
    pub k: usize,
}

impl Default for KNearestNeighbors {
    fn default() -> Self {
        KNearestNeighbors { k: 5 }
    }
}

impl Classifier for KNearestNeighbors {
    fn name(&self) -> &'static str {
        "k_nearest_neighbors"
    }

    fn describe(&self) -> String {
        format!("k={}", self.k)
    }

    fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        _seed: u64,
    ) -> Result<Box<dyn FittedClassifier>> {
        validate_training_inputs(x, y, weights)?;
        if self.k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                message: "k must be at least 1".to_string(),
            });
        }
        Ok(Box::new(FittedKnn {
            k: self.k.min(x.n_rows()),
            x: x.clone(),
            y: y.to_vec(),
            weights: weights.to_vec(),
        }))
    }
}

/// A "trained" kNN model (memorizes the training set).
pub struct FittedKnn {
    k: usize,
    x: Matrix,
    y: Vec<f64>,
    weights: Vec<f64>,
}

/// Sealed-record kind tag for k-nearest-neighbors.
pub(crate) const KIND: &str = "knn";

impl FittedKnn {
    /// Reconstructs the memorized training set from a sealed record.
    pub(crate) fn unseal(v: &Value) -> Result<FittedKnn> {
        sealing::expect_kind(v, KIND)?;
        let k = sealing::req_usize(v, "k")?;
        let rows = sealing::req_usize(v, "rows")?;
        let cols = sealing::req_usize(v, "cols")?;
        let data = sealing::req_f64_vec(v, "x")?;
        let y = sealing::req_f64_vec(v, "y")?;
        let weights = sealing::req_f64_vec(v, "weights")?;
        if data.len() != rows.saturating_mul(cols)
            || y.len() != rows
            || weights.len() != rows
            || k == 0
            || k > rows
        {
            return Err(sealing::seal_err(
                "knn record has inconsistent dimensions".to_string(),
            ));
        }
        let x = Matrix::from_vec(rows, cols, data)?;
        Ok(FittedKnn { k, x, y, weights })
    }
}

impl FittedClassifier for FittedKnn {
    fn seal(&self) -> Result<Value> {
        Ok(obj(vec![
            ("kind", Value::Str(KIND.to_string())),
            ("k", Value::from_u64(self.k as u64)),
            ("rows", Value::from_u64(self.x.n_rows() as u64)),
            ("cols", Value::from_u64(self.x.n_cols() as u64)),
            ("x", Value::bits_vec(self.x.data())),
            ("y", Value::bits_vec(&self.y)),
            ("weights", Value::bits_vec(&self.weights)),
        ]))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.n_cols() != self.x.n_cols() {
            return Err(Error::LengthMismatch {
                expected: self.x.n_cols(),
                actual: x.n_cols(),
            });
        }
        let mut out = Vec::with_capacity(x.n_rows());
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(self.x.n_rows());
        for query in x.rows_iter() {
            dists.clear();
            for (j, train_row) in self.x.rows_iter().enumerate() {
                let d: f64 = query
                    .iter()
                    .zip(train_row)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                dists.push((d, j));
            }
            // Partial selection of the k nearest (deterministic tie-break by
            // training index).
            dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut pos = 0.0;
            let mut total = 0.0;
            for &(_, j) in &dists[..self.k] {
                total += self.weights[j];
                pos += self.weights[j] * self.y[j];
            }
            out.push(if total > 0.0 { pos / total } else { 0.5 });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let offset = (i % 5) as f64 * 0.01;
            if i % 2 == 0 {
                rows.push(vec![0.0 + offset, 0.0]);
                y.push(0.0);
            } else {
                rows.push(vec![5.0 + offset, 5.0]);
                y.push(1.0);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn classifies_separated_clusters() {
        let (x, y) = clusters();
        let model = KNearestNeighbors::default()
            .fit(&x, &y, &vec![1.0; 30], 0)
            .unwrap();
        assert_eq!(model.predict(&x).unwrap(), y);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let (x, y) = clusters();
        let model = KNearestNeighbors { k: 1000 }
            .fit(&x, &y, &vec![1.0; 30], 0)
            .unwrap();
        // Equivalent to predicting the (weighted) base rate everywhere.
        for p in model.predict_proba(&x).unwrap() {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_shift_votes() {
        // Two equidistant neighbours with opposing labels; weight decides.
        let x_train = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        let y_train = vec![1.0, 0.0];
        let query = Matrix::from_rows(&[vec![0.0]]).unwrap();
        let heavy_pos = KNearestNeighbors { k: 2 }
            .fit(&x_train, &y_train, &[3.0, 1.0], 0)
            .unwrap();
        assert!(heavy_pos.predict_proba(&query).unwrap()[0] > 0.5);
        let heavy_neg = KNearestNeighbors { k: 2 }
            .fit(&x_train, &y_train, &[1.0, 3.0], 0)
            .unwrap();
        assert!(heavy_neg.predict_proba(&query).unwrap()[0] < 0.5);
    }

    #[test]
    fn invalid_k_rejected() {
        let (x, y) = clusters();
        assert!(KNearestNeighbors { k: 0 }
            .fit(&x, &y, &vec![1.0; 30], 0)
            .is_err());
    }

    #[test]
    fn predict_checks_dimensionality() {
        let (x, y) = clusters();
        let model = KNearestNeighbors::default()
            .fit(&x, &y, &vec![1.0; 30], 0)
            .unwrap();
        assert!(model.predict_proba(&Matrix::zeros(1, 7)).is_err());
    }

    #[test]
    fn scaling_sensitivity_mirrors_section_5_2() {
        // A noise feature on a huge scale swamps the informative feature.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let informative = if i % 2 == 0 { 0.0 } else { 1.0 };
            let noise = ((i * librarian(i)) % 1000) as f64 * 100.0;
            rows.push(vec![informative, noise]);
            y.push(informative);
        }
        fn librarian(i: usize) -> usize {
            (i * 2654435761) % 97
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let model = KNearestNeighbors { k: 3 }
            .fit(&x, &y, &vec![1.0; 40], 0)
            .unwrap();
        let preds = model.predict(&x).unwrap();
        // Leave-self-in nearest neighbour saves exact matches, but overall
        // accuracy suffers — just confirm the model runs and is imperfect on
        // held-out-like noise (not a strict bound, a smoke signal).
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct <= 40);
    }
}
