//! Model selection: hyperparameter grids and cross-validated grid search.

pub mod cv;
pub mod grid;

pub use cv::{CandidateScore, GridSearchCv, GridSearchOutcome, RandomizedSearchCv};
pub use grid::{decision_tree_grid, logistic_regression_grid, ParamGrid, ParamPoint, ParamValue};
