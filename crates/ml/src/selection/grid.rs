//! Hyperparameter grids.
//!
//! The §4 code listing defines the paper's logistic-regression grid
//! (3 penalties × 4 alphas, "60 different settings" with 5-fold CV) and the
//! §5.1 setup defines the decision-tree grid (2 criteria × 3 depths ×
//! 4 min-samples-leaf × 3 min-samples-split). [`ParamGrid`] provides the
//! generic cartesian-product machinery and this module ships both paper
//! grids as ready-made candidate lists.

use std::collections::BTreeMap;

use crate::model::{
    Classifier, DecisionTree, DecisionTreeConfig, LogisticRegressionConfig, LogisticRegressionSgd,
    Penalty, SplitCriterion,
};

/// A single hyperparameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Floating-point parameter.
    Float(f64),
    /// Integer parameter.
    Int(i64),
    /// String/enumeration parameter.
    Str(String),
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One point of a hyperparameter grid: parameter name → value.
pub type ParamPoint = BTreeMap<String, ParamValue>;

/// A named hyperparameter grid (parameter name → candidate values).
#[derive(Debug, Clone, Default)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<ParamValue>)>,
}

impl ParamGrid {
    /// Creates an empty grid (its product is the single empty point).
    #[must_use]
    pub fn new() -> Self {
        ParamGrid::default()
    }

    /// Adds an axis with its candidate values.
    #[must_use]
    pub fn axis(mut self, name: &str, values: Vec<ParamValue>) -> Self {
        self.axes.push((name.to_string(), values));
        self
    }

    /// Number of points in the cartesian product.
    #[must_use]
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// `true` when the product is empty (an axis with no values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cartesian product in a stable order.
    #[must_use]
    pub fn points(&self) -> Vec<ParamPoint> {
        let mut out: Vec<ParamPoint> = vec![BTreeMap::new()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(out.len() * values.len());
            for point in &out {
                for v in values {
                    let mut p = point.clone();
                    p.insert(name.clone(), v.clone());
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }
}

/// The paper's logistic-regression grid (§4 listing): penalties
/// {l2, l1, elasticnet} × alphas {5e-5, 1e-4, 5e-3, 1e-3}, yielding the
/// 12 parameter combinations which, with 5-fold cross-validation, produce
/// the "60 different settings" of the paper.
#[must_use]
pub fn logistic_regression_grid() -> Vec<Box<dyn Classifier>> {
    let penalties = [
        Penalty::L2,
        Penalty::L1,
        Penalty::ElasticNet { l1_ratio: 0.5 },
    ];
    let alphas = [5e-5, 1e-4, 5e-3, 1e-3];
    let mut out: Vec<Box<dyn Classifier>> = Vec::with_capacity(penalties.len() * alphas.len());
    for &penalty in &penalties {
        for &alpha in &alphas {
            out.push(Box::new(LogisticRegressionSgd::new(
                LogisticRegressionConfig {
                    penalty,
                    alpha,
                    ..Default::default()
                },
            )));
        }
    }
    out
}

/// The paper's decision-tree grid (§5.1): 2 split criteria × 3 depth
/// parameters × 4 min-samples-per-leaf parameters × 3 min-samples-per-split
/// parameters = 72 candidates.
#[must_use]
pub fn decision_tree_grid() -> Vec<Box<dyn Classifier>> {
    let criteria = [SplitCriterion::Gini, SplitCriterion::Entropy];
    let depths = [Some(3), Some(5), Some(10)];
    let min_leaves = [1usize, 2, 5, 10];
    let min_splits = [2usize, 5, 10];
    let mut out: Vec<Box<dyn Classifier>> = Vec::with_capacity(72);
    for &criterion in &criteria {
        for &max_depth in &depths {
            for &min_samples_leaf in &min_leaves {
                for &min_samples_split in &min_splits {
                    out.push(Box::new(DecisionTree::new(DecisionTreeConfig {
                        criterion,
                        max_depth,
                        min_samples_leaf,
                        min_samples_split,
                    })));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_product_counts() {
        let grid = ParamGrid::new()
            .axis("a", vec![ParamValue::Int(1), ParamValue::Int(2)])
            .axis(
                "b",
                vec![
                    ParamValue::Str("x".into()),
                    ParamValue::Str("y".into()),
                    ParamValue::Str("z".into()),
                ],
            );
        assert_eq!(grid.len(), 6);
        let points = grid.points();
        assert_eq!(points.len(), 6);
        // All points distinct.
        for (i, p) in points.iter().enumerate() {
            for q in &points[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn empty_grid_has_one_point() {
        let grid = ParamGrid::new();
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.points(), vec![BTreeMap::new()]);
    }

    #[test]
    fn axis_with_no_values_empties_product() {
        let grid = ParamGrid::new().axis("a", vec![]);
        assert!(grid.is_empty());
        assert!(grid.points().is_empty());
    }

    #[test]
    fn paper_lr_grid_is_12_times_5fold_60() {
        let grid = logistic_regression_grid();
        assert_eq!(grid.len(), 12);
        assert_eq!(grid.len() * 5, 60); // the paper's "60 different settings"
                                        // All descriptions distinct.
        let descs: Vec<String> = grid.iter().map(|c| c.describe()).collect();
        for (i, d) in descs.iter().enumerate() {
            assert!(!descs[i + 1..].contains(d), "duplicate candidate {d}");
        }
    }

    #[test]
    fn paper_dt_grid_is_72() {
        let grid = decision_tree_grid();
        assert_eq!(grid.len(), 72);
        let descs: Vec<String> = grid.iter().map(|c| c.describe()).collect();
        for (i, d) in descs.iter().enumerate() {
            assert!(!descs[i + 1..].contains(d), "duplicate candidate {d}");
        }
    }

    #[test]
    fn param_value_display() {
        assert_eq!(ParamValue::Float(0.5).to_string(), "0.5");
        assert_eq!(ParamValue::Int(3).to_string(), "3");
        assert_eq!(ParamValue::Str("gini".into()).to_string(), "gini");
    }
}
