//! Seeded k-fold cross-validation and grid search.
//!
//! §2.1 of the paper documents that the study of Friedler et al. selected
//! hyperparameters *on the test set* — a strong isolation violation. Here,
//! cross-validated grid search operates strictly on the data it is given
//! (the lifecycle hands it the training partition only), scores candidates
//! by mean validation-fold accuracy, and refits the winning candidate on
//! the full training data.
//!
//! Two properties make the search fast without changing its results:
//!
//! * **Shared fold cache.** Folds are derived from the seed alone, so every
//!   candidate sees identical folds. [`FoldCache`] materializes each fold's
//!   `(x_train, y_train, w_train, x_val, y_val)` exactly once instead of
//!   once per candidate (~60× fewer row-gather allocations on the paper's
//!   decision-tree grid).
//! * **Deterministic parallel fan-out.** Candidate×fold fit jobs run on
//!   [`fairprep_data::parallel::parallel_map`], which returns results in
//!   submission order; every fit derives its randomness from the search
//!   seed, so any thread budget produces bit-identical scores and the same
//!   winner as the sequential path.

use std::cmp::Ordering;

use fairprep_data::error::{Error, Result};
use fairprep_data::parallel::parallel_map;
use fairprep_data::split::k_fold_indices;
use fairprep_trace::{Counter, Stage, Tracer};

use crate::eval::ConfusionMatrix;
use crate::matrix::Matrix;
use crate::model::{Classifier, FittedClassifier};

/// Per-candidate cross-validation outcome.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// Index into the candidate list.
    pub candidate: usize,
    /// The candidate's `describe()` string.
    pub description: String,
    /// Mean accuracy across validation folds.
    pub mean_score: f64,
    /// Standard deviation of the fold accuracies — k-fold CV quantifies
    /// "the variability of the estimated prediction error" (§2.2).
    pub std_score: f64,
    /// The individual fold accuracies.
    pub fold_scores: Vec<f64>,
}

/// The outcome of a grid search: the refitted best model plus the full
/// score table.
pub struct GridSearchOutcome {
    /// The winning candidate refitted on all training data.
    pub best_model: Box<dyn FittedClassifier>,
    /// Index of the winning candidate.
    pub best_candidate: usize,
    /// `describe()` of the winning candidate.
    pub best_description: String,
    /// Scores for every candidate (same order as the candidate list).
    pub scores: Vec<CandidateScore>,
}

/// One materialized cross-validation fold.
struct Fold {
    x_train: Matrix,
    y_train: Vec<f64>,
    w_train: Vec<f64>,
    x_val: Matrix,
    y_val: Vec<f64>,
}

/// Materialized k-fold partitions, built once per search and shared by
/// every candidate. Folds depend only on `(n_rows, k, seed)`, so caching
/// them cannot change any candidate's score.
pub struct FoldCache {
    folds: Vec<Fold>,
}

impl FoldCache {
    /// Materializes all `k` folds of `(x, y, weights)` for `seed`.
    pub fn build(x: &Matrix, y: &[f64], weights: &[f64], k: usize, seed: u64) -> Result<Self> {
        let folds = k_fold_indices(x.n_rows(), k, seed)?
            .iter()
            .map(|(train_ix, val_ix)| Fold {
                x_train: x.take_rows(train_ix),
                y_train: train_ix.iter().map(|&i| y[i]).collect(),
                w_train: train_ix.iter().map(|&i| weights[i]).collect(),
                x_val: x.take_rows(val_ix),
                y_val: val_ix.iter().map(|&i| y[i]).collect(),
            })
            .collect();
        Ok(FoldCache { folds })
    }

    /// Number of materialized folds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.folds.len()
    }

    /// Whether the cache holds no folds.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// Fits `candidate` on one fold's training part and returns its
    /// validation accuracy.
    fn score_fold(&self, candidate: &dyn Classifier, fold: usize, seed: u64) -> Result<f64> {
        let fold = &self.folds[fold];
        let model = candidate.fit(&fold.x_train, &fold.y_train, &fold.w_train, seed)?;
        let preds = model.predict(&fold.x_val)?;
        Ok(ConfusionMatrix::compute(&fold.y_val, &preds, None)?.accuracy())
    }
}

/// Compares two mean scores, ranking NaN strictly below every real score
/// (a candidate whose CV score is undefined must never win the search).
fn score_ordering(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Index (into `scores`) of the best candidate: highest non-NaN mean
/// score, ties broken toward the earlier entry for determinism.
fn best_index(scores: &[CandidateScore]) -> Result<usize> {
    scores
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| {
            score_ordering(a.mean_score, b.mean_score).then(ib.cmp(ia)) // earlier index wins ties
        })
        .map(|(i, _)| i)
        .ok_or_else(|| Error::EmptyData("candidate score list".to_string()))
}

/// Mean and population standard deviation of a fold-score vector.
fn mean_std(fold_scores: &[f64]) -> (f64, f64) {
    let n = fold_scores.len() as f64;
    let mean = fold_scores.iter().sum::<f64>() / n;
    let var = fold_scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Cross-validated grid search over fully-configured classifier candidates.
///
/// # Examples
///
/// ```
/// use fairprep_ml::matrix::Matrix;
/// use fairprep_ml::model::{Classifier, DecisionTree, DecisionTreeConfig};
/// use fairprep_ml::selection::GridSearchCv;
///
/// let x = Matrix::from_rows(
///     &(0..40).map(|i| vec![f64::from(i % 2)]).collect::<Vec<_>>(),
/// ).unwrap();
/// let y: Vec<f64> = (0..40).map(|i| f64::from(i % 2)).collect();
/// let candidates: Vec<Box<dyn Classifier>> = vec![
///     Box::new(DecisionTree::new(DecisionTreeConfig { max_depth: Some(0), ..Default::default() })),
///     Box::new(DecisionTree::new(DecisionTreeConfig { max_depth: Some(2), ..Default::default() })),
/// ];
/// let outcome = GridSearchCv::new(5)
///     .search(&candidates, &x, &y, &vec![1.0; 40], 7)
///     .unwrap();
/// assert_eq!(outcome.best_candidate, 1); // depth 2 can learn the task
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GridSearchCv {
    /// Number of folds (the paper uses 5).
    pub k: usize,
    /// Worker-thread budget for the candidate×fold fit jobs. `1` (the
    /// default) runs fully sequentially; any budget produces bit-identical
    /// results because fits derive all randomness from the search seed and
    /// results are collected in submission order.
    pub threads: usize,
}

impl Default for GridSearchCv {
    fn default() -> Self {
        GridSearchCv { k: 5, threads: 1 }
    }
}

impl GridSearchCv {
    /// Creates a sequential grid search with `k` folds.
    #[must_use]
    pub fn new(k: usize) -> Self {
        GridSearchCv { k, threads: 1 }
    }

    /// Sets the worker-thread budget for fit jobs.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Scores one candidate by k-fold cross-validation. Folds are derived
    /// from `seed`, so every candidate sees identical folds.
    pub fn score_candidate(
        &self,
        candidate: &dyn Classifier,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<(f64, f64, Vec<f64>)> {
        let cache = FoldCache::build(x, y, weights, self.k, seed)?;
        let fold_scores = (0..cache.len())
            .map(|fold| cache.score_fold(candidate, fold, seed))
            .collect::<Result<Vec<f64>>>()?;
        let (mean, std) = mean_std(&fold_scores);
        Ok((mean, std, fold_scores))
    }

    /// Runs the full search: CV-scores every candidate, picks the best mean
    /// accuracy (ties break to the earlier candidate for determinism; NaN
    /// ranks below everything), and refits the winner on all of
    /// `(x, y, weights)`.
    pub fn search(
        &self,
        candidates: &[Box<dyn Classifier>],
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<GridSearchOutcome> {
        self.search_traced(candidates, x, y, weights, seed, &Tracer::disabled())
    }

    /// Like [`GridSearchCv::search`], recording a `tune` span and fold
    /// counters on `tracer`. The hot fit jobs never touch the tracer, so
    /// structure and counters are identical at every thread budget (and
    /// a disabled tracer adds no allocation to the search).
    pub fn search_traced(
        &self,
        candidates: &[Box<dyn Classifier>],
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
        tracer: &Tracer,
    ) -> Result<GridSearchOutcome> {
        if candidates.is_empty() {
            return Err(Error::EmptyData("grid-search candidate list".to_string()));
        }
        let _tune = tracer.span(Stage::Tune);
        let cache = FoldCache::build(x, y, weights, self.k, seed)?;
        let scores = score_candidates_on_cache(
            candidates,
            &cache,
            &candidate_indices(candidates),
            seed,
            self.threads,
            tracer,
        )?;
        let best = best_index(&scores)?;
        let best_candidate = scores[best].candidate;
        let best_model = candidates[best_candidate].fit(x, y, weights, seed)?;
        Ok(GridSearchOutcome {
            best_model,
            best_candidate,
            best_description: candidates[best_candidate].describe(),
            scores,
        })
    }
}

/// All candidate indices, in order.
fn candidate_indices(candidates: &[Box<dyn Classifier>]) -> Vec<usize> {
    (0..candidates.len()).collect()
}

/// Scores the selected candidates against a shared fold cache, fanning the
/// candidate×fold fit jobs across `threads` workers. Results are grouped
/// back per candidate in `selected` order; the first job error (in
/// submission order) aborts the search, matching the sequential path.
fn score_candidates_on_cache(
    candidates: &[Box<dyn Classifier>],
    cache: &FoldCache,
    selected: &[usize],
    seed: u64,
    threads: usize,
    tracer: &Tracer,
) -> Result<Vec<CandidateScore>> {
    let k = cache.len();
    let jobs: Vec<(usize, usize)> = selected
        .iter()
        .flat_map(|&candidate| (0..k).map(move |fold| (candidate, fold)))
        .collect();
    // Counters are recorded up front from the job plan — a pure function
    // of (candidates, k) — so the hot fold jobs below stay tracer-free
    // and the recorded values cannot depend on the thread budget. Every
    // job after the first pass over the k folds reuses a cached fold.
    tracer.add(Counter::FoldsEvaluated, jobs.len() as u64);
    tracer.add(Counter::FoldCacheHits, jobs.len().saturating_sub(k) as u64);
    let fold_results = parallel_map(jobs, threads, |(candidate, fold)| {
        cache.score_fold(candidates[candidate].as_ref(), fold, seed)
    });

    let mut scores = Vec::with_capacity(selected.len());
    let mut results = fold_results.into_iter();
    for &candidate in selected {
        let fold_scores = (&mut results).take(k).collect::<Result<Vec<f64>>>()?;
        let (mean_score, std_score) = mean_std(&fold_scores);
        scores.push(CandidateScore {
            candidate,
            description: candidates[candidate].describe(),
            mean_score,
            std_score,
            fold_scores,
        });
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DecisionTree, DecisionTreeConfig};
    use crate::selection::logistic_regression_grid;

    /// y = 1 iff x0 > 0.5; one candidate can learn it (depth 2), one cannot
    /// (depth 0 → a single base-rate leaf).
    fn data() -> (Matrix, Vec<f64>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i % 2)]).collect();
        let y: Vec<f64> = (0..40).map(|i| f64::from(i % 2)).collect();
        let w = vec![1.0; 40];
        (Matrix::from_rows(&rows).unwrap(), y, w)
    }

    fn candidates() -> Vec<Box<dyn Classifier>> {
        vec![
            Box::new(DecisionTree::new(DecisionTreeConfig {
                max_depth: Some(0),
                ..Default::default()
            })),
            Box::new(DecisionTree::new(DecisionTreeConfig {
                max_depth: Some(2),
                ..Default::default()
            })),
        ]
    }

    #[test]
    fn search_picks_the_learnable_candidate() {
        let (x, y, w) = data();
        let outcome = GridSearchCv::new(5)
            .search(&candidates(), &x, &y, &w, 3)
            .unwrap();
        assert_eq!(outcome.best_candidate, 1);
        assert!(outcome.scores[1].mean_score > outcome.scores[0].mean_score);
        // The refit model is perfect on the training data.
        let preds = outcome.best_model.predict(&x).unwrap();
        assert_eq!(preds, y);
    }

    #[test]
    fn fold_scores_quantify_variability() {
        let (x, y, w) = data();
        let outcome = GridSearchCv::new(4)
            .search(&candidates(), &x, &y, &w, 3)
            .unwrap();
        for s in &outcome.scores {
            assert_eq!(s.fold_scores.len(), 4);
            assert!(s.std_score >= 0.0);
            assert!(s.mean_score >= 0.0 && s.mean_score <= 1.0);
        }
        // Perfect candidate has zero variance.
        assert!(outcome.scores[1].std_score < 1e-12);
    }

    #[test]
    fn search_is_seed_deterministic() {
        let (x, y, w) = data();
        let gs = GridSearchCv::default();
        let a = gs.search(&candidates(), &x, &y, &w, 9).unwrap();
        let b = gs.search(&candidates(), &x, &y, &w, 9).unwrap();
        assert_eq!(a.best_candidate, b.best_candidate);
        for (sa, sb) in a.scores.iter().zip(&b.scores) {
            assert_eq!(sa.fold_scores, sb.fold_scores);
        }
    }

    /// Mirror of `runner::tests::parallel_matches_sequential` at the CV
    /// level: a 4-thread search must be bit-identical to the sequential
    /// one on the paper's logistic grid.
    #[test]
    fn parallel_search_is_bit_identical_to_sequential() {
        // German-shaped synthetic problem: 80 rows, 5 features, a noisy
        // linear target so candidates genuinely differ.
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let i = f64::from(i);
                vec![
                    (i * 0.37).sin(),
                    (i * 0.11).cos(),
                    (i % 7.0) / 7.0,
                    (i * 1.7).sin() * (i * 0.05).cos(),
                    i / 80.0,
                ]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| f64::from(r[0] + 2.0 * r[2] - r[4] > 0.4))
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let w = vec![1.0; y.len()];
        let grid = logistic_regression_grid();

        let sequential = GridSearchCv::new(5).search(&grid, &x, &y, &w, 11).unwrap();
        let parallel = GridSearchCv::new(5)
            .with_threads(4)
            .search(&grid, &x, &y, &w, 11)
            .unwrap();

        assert_eq!(sequential.best_candidate, parallel.best_candidate);
        assert_eq!(sequential.best_description, parallel.best_description);
        assert_eq!(sequential.scores.len(), parallel.scores.len());
        for (a, b) in sequential.scores.iter().zip(&parallel.scores) {
            assert_eq!(a.candidate, b.candidate);
            assert_eq!(a.fold_scores, b.fold_scores, "candidate {}", a.candidate);
            assert!(a.mean_score.to_bits() == b.mean_score.to_bits());
            assert!(a.std_score.to_bits() == b.std_score.to_bits());
        }
        // And the refit winners predict identically.
        let pa = sequential.best_model.predict_proba(&x).unwrap();
        let pb = parallel.best_model.predict_proba(&x).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn empty_candidates_rejected() {
        let (x, y, w) = data();
        assert!(GridSearchCv::default().search(&[], &x, &y, &w, 0).is_err());
    }

    #[test]
    fn too_few_rows_for_folds_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![0.0]]).unwrap();
        let y = vec![1.0, 0.0];
        let w = vec![1.0, 1.0];
        assert!(GridSearchCv::new(5)
            .search(&candidates(), &x, &y, &w, 0)
            .is_err());
    }

    #[test]
    fn tie_breaks_to_earlier_candidate() {
        let (x, y, w) = data();
        // Two identical candidates: the first must win.
        let same: Vec<Box<dyn Classifier>> = vec![
            Box::new(DecisionTree::default()),
            Box::new(DecisionTree::default()),
        ];
        let outcome = GridSearchCv::default()
            .search(&same, &x, &y, &w, 1)
            .unwrap();
        assert_eq!(outcome.best_candidate, 0);
    }

    fn synthetic_score(candidate: usize, mean_score: f64) -> CandidateScore {
        CandidateScore {
            candidate,
            description: format!("candidate-{candidate}"),
            mean_score,
            std_score: 0.0,
            fold_scores: vec![mean_score],
        }
    }

    /// Regression test: a NaN mean score must rank below every real score.
    /// The old `partial_cmp(..).unwrap_or(Equal)` treated NaN as a tie, so
    /// a late NaN candidate could beat a real one.
    #[test]
    fn nan_scores_never_win() {
        let scores = vec![
            synthetic_score(0, 0.4),
            synthetic_score(1, f64::NAN),
            synthetic_score(2, 0.7),
            synthetic_score(3, f64::NAN),
        ];
        assert_eq!(best_index(&scores).unwrap(), 2);

        // NaN after the best real score must not "tie" its way past it.
        let scores = vec![synthetic_score(0, 0.9), synthetic_score(1, f64::NAN)];
        assert_eq!(best_index(&scores).unwrap(), 0);
        let scores = vec![synthetic_score(0, f64::NAN), synthetic_score(1, 0.1)];
        assert_eq!(best_index(&scores).unwrap(), 1);

        // All-NaN degenerates to the earliest candidate.
        let scores = vec![synthetic_score(0, f64::NAN), synthetic_score(1, f64::NAN)];
        assert_eq!(best_index(&scores).unwrap(), 0);
    }

    #[test]
    fn traced_search_records_span_and_counters() {
        let (x, y, w) = data();
        let t = Tracer::enabled();
        GridSearchCv::new(5)
            .search_traced(&candidates(), &x, &y, &w, 3, &t)
            .unwrap();
        // 2 candidates × 5 folds; all but the first pass over the folds
        // hit the shared cache.
        assert_eq!(t.counter(Counter::FoldsEvaluated), 10);
        assert_eq!(t.counter(Counter::FoldCacheHits), 5);
        let events = t.span_events();
        assert!(events.iter().any(|e| e.enter && e.stage == Stage::Tune));
        assert!(fairprep_trace::validate_span_events(&events).is_ok());
    }

    #[test]
    fn traced_counters_are_thread_invariant() {
        let (x, y, w) = data();
        let run = |threads| {
            let t = Tracer::enabled();
            GridSearchCv::new(5)
                .with_threads(threads)
                .search_traced(&candidates(), &x, &y, &w, 3, &t)
                .unwrap();
            (
                t.counter(Counter::FoldsEvaluated),
                t.counter(Counter::FoldCacheHits),
                t.span_events().len(),
            )
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn fold_cache_len_matches_k() {
        let (x, y, w) = data();
        let cache = FoldCache::build(&x, &y, &w, 5, 3).unwrap();
        assert_eq!(cache.len(), 5);
        assert!(!cache.is_empty());
    }
}

/// Randomized hyperparameter search: cross-validates a seeded random subset
/// of the candidate list instead of the full grid — the standard budget
/// lever when a grid is large (e.g. the 72-candidate decision-tree grid).
#[derive(Debug, Clone, Copy)]
pub struct RandomizedSearchCv {
    /// Number of folds.
    pub k: usize,
    /// Number of candidates to sample (without replacement).
    pub n_iter: usize,
    /// Worker-thread budget for fit jobs (see [`GridSearchCv::threads`]).
    pub threads: usize,
}

impl RandomizedSearchCv {
    /// Creates a sequential randomized search with `k` folds and `n_iter`
    /// sampled candidates.
    #[must_use]
    pub fn new(k: usize, n_iter: usize) -> Self {
        RandomizedSearchCv {
            k,
            n_iter,
            threads: 1,
        }
    }

    /// Sets the worker-thread budget for fit jobs.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Samples `n_iter` candidates (seeded, without replacement), scores
    /// them against a shared fold cache, and refits the winner. The
    /// outcome's candidate indices refer to the ORIGINAL candidate list.
    pub fn search(
        &self,
        candidates: &[Box<dyn Classifier>],
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<GridSearchOutcome> {
        self.search_traced(candidates, x, y, weights, seed, &Tracer::disabled())
    }

    /// Like [`RandomizedSearchCv::search`], recording a `tune` span plus
    /// fold counters and the number of grid points the sampling budget
    /// pruned away.
    pub fn search_traced(
        &self,
        candidates: &[Box<dyn Classifier>],
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
        tracer: &Tracer,
    ) -> Result<GridSearchOutcome> {
        if candidates.is_empty() {
            return Err(Error::EmptyData(
                "randomized-search candidate list".to_string(),
            ));
        }
        let _tune = tracer.span(Stage::Tune);
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        let mut rng = fairprep_data::rng::component_rng(seed, "randomized_search");
        order.shuffle(&mut rng);
        order.truncate(self.n_iter.clamp(1, candidates.len()));
        order.sort_unstable(); // deterministic scoring order
        tracer.add(
            Counter::CandidatesPruned,
            (candidates.len() - order.len()) as u64,
        );

        let cache = FoldCache::build(x, y, weights, self.k, seed)?;
        let scores =
            score_candidates_on_cache(candidates, &cache, &order, seed, self.threads, tracer)?;
        let best = best_index(&scores)?;
        let best_candidate = scores[best].candidate;
        let best_model = candidates[best_candidate].fit(x, y, weights, seed)?;
        Ok(GridSearchOutcome {
            best_model,
            best_candidate,
            best_description: candidates[best_candidate].describe(),
            scores,
        })
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::model::{DecisionTree, DecisionTreeConfig};
    use crate::selection::decision_tree_grid;

    fn data() -> (Matrix, Vec<f64>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![f64::from(i % 2)]).collect();
        let y: Vec<f64> = (0..60).map(|i| f64::from(i % 2)).collect();
        (Matrix::from_rows(&rows).unwrap(), y, vec![1.0; 60])
    }

    #[test]
    fn samples_the_requested_budget() {
        let (x, y, w) = data();
        let candidates = decision_tree_grid();
        let outcome = RandomizedSearchCv::new(3, 10)
            .search(&candidates, &x, &y, &w, 5)
            .unwrap();
        assert_eq!(outcome.scores.len(), 10);
        assert!(outcome.best_candidate < candidates.len());
        // Every scored index is unique (sampling without replacement).
        let mut seen: Vec<usize> = outcome.scores.iter().map(|s| s.candidate).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn oversized_budget_clamps_to_full_grid() {
        let (x, y, w) = data();
        let candidates: Vec<Box<dyn Classifier>> = vec![
            Box::new(DecisionTree::new(DecisionTreeConfig {
                max_depth: Some(0),
                ..Default::default()
            })),
            Box::new(DecisionTree::default()),
        ];
        let outcome = RandomizedSearchCv::new(3, 99)
            .search(&candidates, &x, &y, &w, 1)
            .unwrap();
        assert_eq!(outcome.scores.len(), 2);
        assert_eq!(outcome.best_candidate, 1); // only the unbounded tree learns
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let (x, y, w) = data();
        let candidates = decision_tree_grid();
        let search = RandomizedSearchCv::new(3, 8);
        let a = search.search(&candidates, &x, &y, &w, 7).unwrap();
        let b = search.search(&candidates, &x, &y, &w, 7).unwrap();
        let ixs = |o: &GridSearchOutcome| o.scores.iter().map(|s| s.candidate).collect::<Vec<_>>();
        assert_eq!(ixs(&a), ixs(&b));
        let c = search.search(&candidates, &x, &y, &w, 8).unwrap();
        assert_ne!(ixs(&a), ixs(&c));
    }

    #[test]
    fn parallel_randomized_search_matches_sequential() {
        let (x, y, w) = data();
        let candidates = decision_tree_grid();
        let a = RandomizedSearchCv::new(3, 8)
            .search(&candidates, &x, &y, &w, 7)
            .unwrap();
        let b = RandomizedSearchCv::new(3, 8)
            .with_threads(4)
            .search(&candidates, &x, &y, &w, 7)
            .unwrap();
        assert_eq!(a.best_candidate, b.best_candidate);
        for (sa, sb) in a.scores.iter().zip(&b.scores) {
            assert_eq!(sa.candidate, sb.candidate);
            assert_eq!(sa.fold_scores, sb.fold_scores);
        }
    }

    #[test]
    fn empty_candidates_rejected() {
        let (x, y, w) = data();
        assert!(RandomizedSearchCv::new(3, 4)
            .search(&[], &x, &y, &w, 0)
            .is_err());
    }

    #[test]
    fn traced_randomized_search_counts_pruned_candidates() {
        let (x, y, w) = data();
        let candidates = decision_tree_grid();
        let t = Tracer::enabled();
        RandomizedSearchCv::new(3, 8)
            .search_traced(&candidates, &x, &y, &w, 7, &t)
            .unwrap();
        assert_eq!(
            t.counter(Counter::CandidatesPruned) as usize,
            candidates.len() - 8
        );
        assert_eq!(t.counter(Counter::FoldsEvaluated), 24); // 8 sampled × 3 folds
    }
}
