//! Seeded k-fold cross-validation and grid search.
//!
//! §2.1 of the paper documents that the study of Friedler et al. selected
//! hyperparameters *on the test set* — a strong isolation violation. Here,
//! cross-validated grid search operates strictly on the data it is given
//! (the lifecycle hands it the training partition only), scores candidates
//! by mean validation-fold accuracy, and refits the winning candidate on
//! the full training data.

use fairprep_data::error::{Error, Result};
use fairprep_data::split::k_fold_indices;

use crate::eval::ConfusionMatrix;
use crate::matrix::Matrix;
use crate::model::{Classifier, FittedClassifier};

/// Per-candidate cross-validation outcome.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// Index into the candidate list.
    pub candidate: usize,
    /// The candidate's `describe()` string.
    pub description: String,
    /// Mean accuracy across validation folds.
    pub mean_score: f64,
    /// Standard deviation of the fold accuracies — k-fold CV quantifies
    /// "the variability of the estimated prediction error" (§2.2).
    pub std_score: f64,
    /// The individual fold accuracies.
    pub fold_scores: Vec<f64>,
}

/// The outcome of a grid search: the refitted best model plus the full
/// score table.
pub struct GridSearchOutcome {
    /// The winning candidate refitted on all training data.
    pub best_model: Box<dyn FittedClassifier>,
    /// Index of the winning candidate.
    pub best_candidate: usize,
    /// `describe()` of the winning candidate.
    pub best_description: String,
    /// Scores for every candidate (same order as the candidate list).
    pub scores: Vec<CandidateScore>,
}

/// Cross-validated grid search over fully-configured classifier candidates.
///
/// # Examples
///
/// ```
/// use fairprep_ml::matrix::Matrix;
/// use fairprep_ml::model::{Classifier, DecisionTree, DecisionTreeConfig};
/// use fairprep_ml::selection::GridSearchCv;
///
/// let x = Matrix::from_rows(
///     &(0..40).map(|i| vec![f64::from(i % 2)]).collect::<Vec<_>>(),
/// ).unwrap();
/// let y: Vec<f64> = (0..40).map(|i| f64::from(i % 2)).collect();
/// let candidates: Vec<Box<dyn Classifier>> = vec![
///     Box::new(DecisionTree::new(DecisionTreeConfig { max_depth: Some(0), ..Default::default() })),
///     Box::new(DecisionTree::new(DecisionTreeConfig { max_depth: Some(2), ..Default::default() })),
/// ];
/// let outcome = GridSearchCv::new(5)
///     .search(&candidates, &x, &y, &vec![1.0; 40], 7)
///     .unwrap();
/// assert_eq!(outcome.best_candidate, 1); // depth 2 can learn the task
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GridSearchCv {
    /// Number of folds (the paper uses 5).
    pub k: usize,
}

impl Default for GridSearchCv {
    fn default() -> Self {
        GridSearchCv { k: 5 }
    }
}

impl GridSearchCv {
    /// Creates a grid search with `k` folds.
    #[must_use]
    pub fn new(k: usize) -> Self {
        GridSearchCv { k }
    }

    /// Scores one candidate by k-fold cross-validation. Folds are derived
    /// from `seed`, so every candidate sees identical folds.
    pub fn score_candidate(
        &self,
        candidate: &dyn Classifier,
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<(f64, f64, Vec<f64>)> {
        let folds = k_fold_indices(x.n_rows(), self.k, seed)?;
        let mut fold_scores = Vec::with_capacity(folds.len());
        for (train_ix, val_ix) in &folds {
            let x_train = x.take_rows(train_ix);
            let y_train: Vec<f64> = train_ix.iter().map(|&i| y[i]).collect();
            let w_train: Vec<f64> = train_ix.iter().map(|&i| weights[i]).collect();
            let model = candidate.fit(&x_train, &y_train, &w_train, seed)?;

            let x_val = x.take_rows(val_ix);
            let y_val: Vec<f64> = val_ix.iter().map(|&i| y[i]).collect();
            let preds = model.predict(&x_val)?;
            fold_scores.push(ConfusionMatrix::compute(&y_val, &preds, None)?.accuracy());
        }
        let n = fold_scores.len() as f64;
        let mean = fold_scores.iter().sum::<f64>() / n;
        let var = fold_scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        Ok((mean, var.sqrt(), fold_scores))
    }

    /// Runs the full search: CV-scores every candidate, picks the best mean
    /// accuracy (ties break to the earlier candidate for determinism), and
    /// refits the winner on all of `(x, y, weights)`.
    pub fn search(
        &self,
        candidates: &[Box<dyn Classifier>],
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<GridSearchOutcome> {
        if candidates.is_empty() {
            return Err(Error::EmptyData("grid-search candidate list".to_string()));
        }
        let mut scores = Vec::with_capacity(candidates.len());
        for (i, candidate) in candidates.iter().enumerate() {
            let (mean_score, std_score, fold_scores) =
                self.score_candidate(candidate.as_ref(), x, y, weights, seed)?;
            scores.push(CandidateScore {
                candidate: i,
                description: candidate.describe(),
                mean_score,
                std_score,
                fold_scores,
            });
        }
        let best_candidate = scores
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.mean_score
                    .partial_cmp(&b.mean_score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ib.cmp(ia)) // earlier index wins ties
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        let best_model = candidates[best_candidate].fit(x, y, weights, seed)?;
        Ok(GridSearchOutcome {
            best_model,
            best_candidate,
            best_description: candidates[best_candidate].describe(),
            scores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DecisionTree, DecisionTreeConfig};

    /// y = 1 iff x0 > 0.5; one candidate can learn it (depth 2), one cannot
    /// (depth 0 → a single base-rate leaf).
    fn data() -> (Matrix, Vec<f64>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i % 2)]).collect();
        let y: Vec<f64> = (0..40).map(|i| f64::from(i % 2)).collect();
        let w = vec![1.0; 40];
        (Matrix::from_rows(&rows).unwrap(), y, w)
    }

    fn candidates() -> Vec<Box<dyn Classifier>> {
        vec![
            Box::new(DecisionTree::new(DecisionTreeConfig {
                max_depth: Some(0),
                ..Default::default()
            })),
            Box::new(DecisionTree::new(DecisionTreeConfig {
                max_depth: Some(2),
                ..Default::default()
            })),
        ]
    }

    #[test]
    fn search_picks_the_learnable_candidate() {
        let (x, y, w) = data();
        let outcome = GridSearchCv::new(5).search(&candidates(), &x, &y, &w, 3).unwrap();
        assert_eq!(outcome.best_candidate, 1);
        assert!(outcome.scores[1].mean_score > outcome.scores[0].mean_score);
        // The refit model is perfect on the training data.
        let preds = outcome.best_model.predict(&x).unwrap();
        assert_eq!(preds, y);
    }

    #[test]
    fn fold_scores_quantify_variability() {
        let (x, y, w) = data();
        let outcome = GridSearchCv::new(4).search(&candidates(), &x, &y, &w, 3).unwrap();
        for s in &outcome.scores {
            assert_eq!(s.fold_scores.len(), 4);
            assert!(s.std_score >= 0.0);
            assert!(s.mean_score >= 0.0 && s.mean_score <= 1.0);
        }
        // Perfect candidate has zero variance.
        assert!(outcome.scores[1].std_score < 1e-12);
    }

    #[test]
    fn search_is_seed_deterministic() {
        let (x, y, w) = data();
        let gs = GridSearchCv::default();
        let a = gs.search(&candidates(), &x, &y, &w, 9).unwrap();
        let b = gs.search(&candidates(), &x, &y, &w, 9).unwrap();
        assert_eq!(a.best_candidate, b.best_candidate);
        for (sa, sb) in a.scores.iter().zip(&b.scores) {
            assert_eq!(sa.fold_scores, sb.fold_scores);
        }
    }

    #[test]
    fn empty_candidates_rejected() {
        let (x, y, w) = data();
        assert!(GridSearchCv::default().search(&[], &x, &y, &w, 0).is_err());
    }

    #[test]
    fn too_few_rows_for_folds_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![0.0]]).unwrap();
        let y = vec![1.0, 0.0];
        let w = vec![1.0, 1.0];
        assert!(GridSearchCv::new(5).search(&candidates(), &x, &y, &w, 0).is_err());
    }

    #[test]
    fn tie_breaks_to_earlier_candidate() {
        let (x, y, w) = data();
        // Two identical candidates: the first must win.
        let same: Vec<Box<dyn Classifier>> = vec![
            Box::new(DecisionTree::default()),
            Box::new(DecisionTree::default()),
        ];
        let outcome = GridSearchCv::default().search(&same, &x, &y, &w, 1).unwrap();
        assert_eq!(outcome.best_candidate, 0);
    }
}

/// Randomized hyperparameter search: cross-validates a seeded random subset
/// of the candidate list instead of the full grid — the standard budget
/// lever when a grid is large (e.g. the 72-candidate decision-tree grid).
#[derive(Debug, Clone, Copy)]
pub struct RandomizedSearchCv {
    /// Number of folds.
    pub k: usize,
    /// Number of candidates to sample (without replacement).
    pub n_iter: usize,
}

impl RandomizedSearchCv {
    /// Creates a randomized search with `k` folds and `n_iter` sampled
    /// candidates.
    #[must_use]
    pub fn new(k: usize, n_iter: usize) -> Self {
        RandomizedSearchCv { k, n_iter }
    }

    /// Samples `n_iter` candidates (seeded, without replacement), scores
    /// them with [`GridSearchCv`], and refits the winner. The outcome's
    /// candidate indices refer to the ORIGINAL candidate list.
    pub fn search(
        &self,
        candidates: &[Box<dyn Classifier>],
        x: &Matrix,
        y: &[f64],
        weights: &[f64],
        seed: u64,
    ) -> Result<GridSearchOutcome> {
        if candidates.is_empty() {
            return Err(Error::EmptyData("randomized-search candidate list".to_string()));
        }
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        let mut rng = fairprep_data::rng::component_rng(seed, "randomized_search");
        order.shuffle(&mut rng);
        order.truncate(self.n_iter.clamp(1, candidates.len()));
        order.sort_unstable(); // deterministic scoring order

        let grid = GridSearchCv::new(self.k);
        let mut scores = Vec::with_capacity(order.len());
        for &ix in &order {
            let (mean_score, std_score, fold_scores) =
                grid.score_candidate(candidates[ix].as_ref(), x, y, weights, seed)?;
            scores.push(CandidateScore {
                candidate: ix,
                description: candidates[ix].describe(),
                mean_score,
                std_score,
                fold_scores,
            });
        }
        let best = scores
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.mean_score
                    .partial_cmp(&b.mean_score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        let best_candidate = scores[best].candidate;
        let best_model = candidates[best_candidate].fit(x, y, weights, seed)?;
        Ok(GridSearchOutcome {
            best_model,
            best_candidate,
            best_description: candidates[best_candidate].describe(),
            scores,
        })
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::model::{DecisionTree, DecisionTreeConfig};
    use crate::selection::decision_tree_grid;

    fn data() -> (Matrix, Vec<f64>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![f64::from(i % 2)]).collect();
        let y: Vec<f64> = (0..60).map(|i| f64::from(i % 2)).collect();
        (Matrix::from_rows(&rows).unwrap(), y, vec![1.0; 60])
    }

    #[test]
    fn samples_the_requested_budget() {
        let (x, y, w) = data();
        let candidates = decision_tree_grid();
        let outcome =
            RandomizedSearchCv::new(3, 10).search(&candidates, &x, &y, &w, 5).unwrap();
        assert_eq!(outcome.scores.len(), 10);
        assert!(outcome.best_candidate < candidates.len());
        // Every scored index is unique (sampling without replacement).
        let mut seen: Vec<usize> = outcome.scores.iter().map(|s| s.candidate).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn oversized_budget_clamps_to_full_grid() {
        let (x, y, w) = data();
        let candidates: Vec<Box<dyn Classifier>> = vec![
            Box::new(DecisionTree::new(DecisionTreeConfig {
                max_depth: Some(0),
                ..Default::default()
            })),
            Box::new(DecisionTree::default()),
        ];
        let outcome =
            RandomizedSearchCv::new(3, 99).search(&candidates, &x, &y, &w, 1).unwrap();
        assert_eq!(outcome.scores.len(), 2);
        assert_eq!(outcome.best_candidate, 1); // only the unbounded tree learns
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let (x, y, w) = data();
        let candidates = decision_tree_grid();
        let search = RandomizedSearchCv::new(3, 8);
        let a = search.search(&candidates, &x, &y, &w, 7).unwrap();
        let b = search.search(&candidates, &x, &y, &w, 7).unwrap();
        let ixs = |o: &GridSearchOutcome| o.scores.iter().map(|s| s.candidate).collect::<Vec<_>>();
        assert_eq!(ixs(&a), ixs(&b));
        let c = search.search(&candidates, &x, &y, &w, 8).unwrap();
        assert_ne!(ixs(&a), ixs(&c));
    }

    #[test]
    fn empty_candidates_rejected() {
        let (x, y, w) = data();
        assert!(RandomizedSearchCv::new(3, 4).search(&[], &x, &y, &w, 0).is_err());
    }
}
