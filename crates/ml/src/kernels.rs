//! Explicit-width compute kernels for the hot predict/train loops.
//!
//! Every kernel here is written against a **frozen arithmetic
//! specification**: the exact per-element operations and, for reductions,
//! the exact combine tree are part of the public contract, because the
//! golden-trace manifests, sweep journals, and 1-vs-8-thread proptests all
//! pin run results bit-for-bit. An implementation may restructure *memory
//! access* freely (wider loads, unrolling, preallocated outputs) but must
//! not change *float semantics*.
//!
//! Two reduction flavours exist for the dot product:
//!
//! * [`dot`] — the pipeline kernel. Four interleaved accumulators combined
//!   as `(a0+a1) + (a2+a3) + tail`, processing [`LANES`] elements per loop
//!   iteration. This is bit-identical to the seed kernel (the reduction
//!   tree is unchanged; only the memory width grew), so every golden
//!   manifest still verifies. [`dot_ref`] is its readable scalar
//!   specification; the two are proptested bit-for-bit on every tail
//!   length.
//! * [`dot_lanes`] — a free [`LANES`]-accumulator reduction that lets the
//!   compiler keep a full 8×f64 vector register of independent partial
//!   sums in flight. It is faster on wide hardware but uses a *different*
//!   combine tree, so it is **not** bit-compatible with [`dot`] and must
//!   never feed a manifest-visible number. The `bench_kernels` harness
//!   reports both so the price of bit-stable determinism stays measured
//!   instead of assumed.
//!
//! Element-wise kernels ([`axpy`], [`sgd_step`]) have no reduction at all:
//! each output element depends on one input element through a fixed
//! expression, so any vector width produces identical bits and they are
//! routed straight into the training loops.

// audit: allow-file(index-literal, reason = "fixed-width kernels index [f64; 4]/[f64; 8] accumulators and chunks_exact blocks whose lengths are compile-time constants, so literal indices 0..=7 are always in bounds")

/// The memory width of the kernels: elements processed per loop iteration
/// (8 × f64 = one 512-bit vector register).
pub const LANES: usize = 8;

/// Pipeline dot product — frozen reduction tree, [`LANES`]-wide memory
/// access.
///
/// Semantics (unchanged from the seed kernel): accumulator `j` of four
/// sums the elements with index ≡ `j` (mod 4) in ascending order; the
/// final value is `(a0 + a1) + (a2 + a3) + tail` where `tail` is the
/// sequential sum of the `len % 4` trailing products. The implementation
/// consumes two 4-element groups per iteration so the loads use full
/// vector width, but the update order of each accumulator — and therefore
/// every intermediate rounding — is identical to [`dot_ref`].
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let split8 = a.len() - a.len() % LANES;
    let (a8, a_rest) = a.split_at(split8);
    let (b8, b_rest) = b.split_at(split8);
    for (xs, ys) in a8.chunks_exact(LANES).zip(b8.chunks_exact(LANES)) {
        acc[0] += xs[0] * ys[0];
        acc[1] += xs[1] * ys[1];
        acc[2] += xs[2] * ys[2];
        acc[3] += xs[3] * ys[3];
        acc[0] += xs[4] * ys[4];
        acc[1] += xs[5] * ys[5];
        acc[2] += xs[6] * ys[6];
        acc[3] += xs[7] * ys[7];
    }
    // At most one full 4-element group can remain before the scalar tail.
    let split4 = a_rest.len() - a_rest.len() % 4;
    let (a4, a_tail) = a_rest.split_at(split4);
    let (b4, b_tail) = b_rest.split_at(split4);
    if let (Some(xs), Some(ys)) = (a4.chunks_exact(4).next(), b4.chunks_exact(4).next()) {
        acc[0] += xs[0] * ys[0];
        acc[1] += xs[1] * ys[1];
        acc[2] += xs[2] * ys[2];
        acc[3] += xs[3] * ys[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Scalar specification of [`dot`]: the same four-accumulator reduction
/// tree written as the simplest possible loop. Used as the bit-for-bit
/// oracle in the kernel-equivalence proptests and as the scalar baseline
/// in `bench_kernels`.
#[must_use]
pub fn dot_ref(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let quads = a.len() - a.len() % 4;
    for i in 0..quads {
        acc[i % 4] += a[i] * b[i];
    }
    let mut tail = 0.0;
    for i in quads..a.len() {
        tail += a[i] * b[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Naive single-accumulator dot product — the textbook scalar loop. Its
/// sequential dependency chain is what the unrolled kernels exist to
/// break; `bench_kernels` reports it as the honest "what a plain loop
/// would cost" baseline. Not bit-compatible with [`dot`] (different
/// summation order).
#[must_use]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Free 8-lane dot product: [`LANES`] independent accumulators combined
/// pairwise, `((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7)) + tail`.
///
/// **Not bit-compatible with [`dot`]** — the partial sums differ, so the
/// result differs in the last bits for general inputs. It exists for
/// future code paths without a frozen-bits constraint and so the
/// determinism tax shows up in `BENCH_kernels.json` as a measured number.
#[must_use]
pub fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let split = a.len() - a.len() % LANES;
    let (a8, a_tail) = a.split_at(split);
    let (b8, b_tail) = b.split_at(split);
    for (xs, ys) in a8.chunks_exact(LANES).zip(b8.chunks_exact(LANES)) {
        acc[0] += xs[0] * ys[0];
        acc[1] += xs[1] * ys[1];
        acc[2] += xs[2] * ys[2];
        acc[3] += xs[3] * ys[3];
        acc[4] += xs[4] * ys[4];
        acc[5] += xs[5] * ys[5];
        acc[6] += xs[6] * ys[6];
        acc[7] += xs[7] * ys[7];
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Batched matrix–vector product into a caller-provided buffer:
/// `out[i] = dot(row_i, w)` over row-major `data` with `cols` columns.
///
/// Each output element is one frozen-tree [`dot`], so the result is
/// bit-identical to mapping [`dot_ref`] over the rows. A zero-column
/// matrix still writes one `0.0` per row.
pub fn matvec_into(data: &[f64], cols: usize, w: &[f64], out: &mut [f64]) {
    debug_assert_eq!(w.len(), cols);
    if cols == 0 {
        out.fill(0.0);
        return;
    }
    debug_assert_eq!(data.len(), out.len() * cols);
    for (o, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
        *o = dot(row, w);
    }
}

/// Element-wise `y[i] += alpha * x[i]`, [`LANES`]-wide.
///
/// No reduction: per-element results are independent of vector width, so
/// this is bit-identical to the plain loop at any unroll factor.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let split = x.len() - x.len() % LANES;
    let (x8, x_tail) = x.split_at(split);
    let (y8, y_tail) = y.split_at_mut(split);
    for (ys, xs) in y8.chunks_exact_mut(LANES).zip(x8.chunks_exact(LANES)) {
        for (yj, xj) in ys.iter_mut().zip(xs) {
            *yj += alpha * xj;
        }
    }
    for (yj, xj) in y_tail.iter_mut().zip(x_tail) {
        *yj += alpha * xj;
    }
}

/// 1-D gather into a caller-provided buffer: `out[k] = src[idx[k]]`.
///
/// Pure data movement (bit-exact by construction); the vector form of the
/// preallocated matrix gathers in
/// [`Matrix::gather`](crate::matrix::Matrix::gather). Used for bootstrap
/// label/weight selection in ensembles.
pub fn gather(src: &[f64], idx: &[usize], out: &mut [f64]) {
    debug_assert_eq!(idx.len(), out.len());
    for (o, &i) in out.iter_mut().zip(idx) {
        *o = src[i];
    }
}

/// Allocating convenience wrapper around [`gather`].
#[must_use]
pub fn gather_vec(src: &[f64], idx: &[usize]) -> Vec<f64> {
    // audit: allow(alloc-in-kernel, reason = "documented allocating wrapper; the hot loop is gather()")
    let mut out = vec![0.0; idx.len()];
    gather(src, idx, &mut out);
    out
}

/// One SGD weight update for the logistic log-loss:
/// `w[j] -= eta * (g * row[j] + l2 * w[j] + l1 * signum(w[j]))`, with the
/// `l1` term skipped entirely when `l1 == 0` (matching the seed training
/// loop, where the branch guards the `signum` call).
///
/// Element-wise with the exact per-element expression of the seed loop,
/// so training trajectories — and therefore every golden manifest — are
/// unchanged.
pub fn sgd_step(w: &mut [f64], row: &[f64], g: f64, eta: f64, l1: f64, l2: f64) {
    debug_assert_eq!(w.len(), row.len());
    if l1 > 0.0 {
        for (wj, &xj) in w.iter_mut().zip(row) {
            let grad = g * xj + l2 * *wj + l1 * wj.signum();
            *wj -= eta * grad;
        }
    } else {
        let split = w.len() - w.len() % LANES;
        let (w8, w_tail) = w.split_at_mut(split);
        let (r8, r_tail) = row.split_at(split);
        for (ws, xs) in w8.chunks_exact_mut(LANES).zip(r8.chunks_exact(LANES)) {
            for (wj, &xj) in ws.iter_mut().zip(xs) {
                let grad = g * xj + l2 * *wj;
                *wj -= eta * grad;
            }
        }
        for (wj, &xj) in w_tail.iter_mut().zip(r_tail) {
            let grad = g * xj + l2 * *wj;
            *wj -= eta * grad;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>) {
        // Irrational-step values exercise rounding in every combine.
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.618_033_988_7).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.414_213_562_3).cos()).collect();
        (a, b)
    }

    #[test]
    fn dot_matches_ref_bitwise_on_every_tail() {
        for n in 0..=64 {
            let (a, b) = vectors(n);
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_ref(&a, &b).to_bits(),
                "dot != dot_ref at n={n}"
            );
        }
    }

    #[test]
    fn dot_preserves_the_seed_reduction_tree() {
        // The seed kernel: 4-chunk loop with interleaved accumulators.
        fn seed_dot(a: &[f64], b: &[f64]) -> f64 {
            let mut acc = [0.0f64; 4];
            let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
            let (b4, b_tail) = b.split_at(a4.len());
            for (xs, ys) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
                acc[0] += xs[0] * ys[0];
                acc[1] += xs[1] * ys[1];
                acc[2] += xs[2] * ys[2];
                acc[3] += xs[3] * ys[3];
            }
            let mut tail = 0.0;
            for (x, y) in a_tail.iter().zip(b_tail) {
                tail += x * y;
            }
            (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
        }
        for n in 0..=64 {
            let (a, b) = vectors(n);
            assert_eq!(
                dot(&a, &b).to_bits(),
                seed_dot(&a, &b).to_bits(),
                "widened kernel drifted from the seed tree at n={n}"
            );
        }
    }

    #[test]
    fn dot_lanes_agrees_within_tolerance_but_not_bits() {
        let (a, b) = vectors(1000);
        let frozen = dot(&a, &b);
        let free = dot_lanes(&a, &b);
        assert!((frozen - free).abs() < 1e-9 * (1.0 + frozen.abs()));
    }

    #[test]
    fn dot_scalar_agrees_within_tolerance() {
        let (a, b) = vectors(1000);
        assert!((dot(&a, &b) - dot_scalar(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn matvec_into_matches_per_row_ref() {
        let cols = 13;
        let rows = 9;
        let (data, _) = vectors(rows * cols);
        let (w, _) = vectors(cols);
        let mut out = vec![0.0; rows];
        matvec_into(&data, cols, &w, &mut out);
        for (i, o) in out.iter().enumerate() {
            let row = &data[i * cols..(i + 1) * cols];
            assert_eq!(o.to_bits(), dot_ref(row, &w).to_bits(), "row {i}");
        }
    }

    #[test]
    fn matvec_into_zero_columns() {
        let mut out = vec![9.0; 3];
        matvec_into(&[], 0, &[], &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn axpy_matches_plain_loop_bitwise() {
        for n in [0, 1, 7, 8, 9, 17, 64] {
            let (x, y0) = vectors(n);
            let mut y = y0.clone();
            axpy(0.37, &x, &mut y);
            let expected: Vec<f64> = y0.iter().zip(&x).map(|(y, x)| y + 0.37 * x).collect();
            let same = y
                .iter()
                .zip(&expected)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "axpy drifted at n={n}");
        }
    }

    #[test]
    fn sgd_step_matches_seed_loop_bitwise() {
        for n in [0, 1, 5, 8, 13, 32] {
            for (l1, l2) in [(0.0, 0.0), (0.0, 1e-4), (0.01, 0.0), (0.01, 1e-4)] {
                let (row, w0) = vectors(n);
                let (g, eta) = (0.73, 0.01);
                let mut w = w0.clone();
                sgd_step(&mut w, &row, g, eta, l1, l2);
                // The seed training loop, verbatim.
                let mut expected = w0.clone();
                for (wj, &xj) in expected.iter_mut().zip(&row) {
                    let mut grad = g * xj + l2 * *wj;
                    if l1 > 0.0 {
                        grad += l1 * wj.signum();
                    }
                    *wj -= eta * grad;
                }
                let same = w
                    .iter()
                    .zip(&expected)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "sgd_step drifted at n={n} l1={l1} l2={l2}");
            }
        }
    }
}
