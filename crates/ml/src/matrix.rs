//! A small dense, row-major matrix — the "numpy view" of a dataset.
//!
//! FairPrep datasets can be viewed "in relational form (as a pandas
//! dataframe) or in matrix form (e.g., features as numpy matrix)" (§4).
//! This type is the matrix form: complete (no missing values), numeric,
//! row-major for cache-friendly per-example access during SGD.

use fairprep_data::error::{Error, Result};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a matrix from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::LengthMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Creates a matrix from a slice of equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(Error::LengthMismatch { expected: n_cols, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { data, rows: rows.len(), cols: n_cols })
    }

    /// Number of rows (examples).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The value at (`i`, `j`).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets the value at (`i`, `j`).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Copies column `j` into a new vector.
    #[must_use]
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Iterates over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Materializes the rows at `indices` into a new matrix.
    #[must_use]
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { data, rows: indices.len(), cols: self.cols }
    }

    /// Materializes the columns at `indices` into a new matrix (used by
    /// random-subspace ensembles).
    #[must_use]
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * indices.len());
        for i in 0..self.rows {
            let row = self.row(i);
            for &j in indices {
                data.push(row[j]);
            }
        }
        Matrix { data, rows: self.rows, cols: indices.len() }
    }

    /// `true` when every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Raw row-major data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// Dot product of two equal-length slices.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically-stable logistic sigmoid.
#[must_use]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_checks_raggedness() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn mutation() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 9.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn take_rows_duplicates_allowed() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let t = m.take_rows(&[2, 2, 0]);
        assert_eq!(t.column(0), vec![3.0, 3.0, 1.0]);
    }

    #[test]
    fn rows_iter_yields_all() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn finiteness_check() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.is_finite());
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
