//! A small dense, row-major matrix — the "numpy view" of a dataset.
//!
//! FairPrep datasets can be viewed "in relational form (as a pandas
//! dataframe) or in matrix form (e.g., features as numpy matrix)" (§4).
//! This type is the matrix form: complete (no missing values), numeric,
//! row-major for cache-friendly per-example access during SGD.

use fairprep_data::error::{Error, Result};
use fairprep_data::provenance::Provenance;

pub use crate::kernels::dot;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    provenance: Provenance,
}

/// Provenance is a taint tag, not part of the mathematical value: two
/// matrices with identical entries compare equal regardless of which
/// lifecycle split they came from.
impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl Matrix {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
            provenance: Provenance::Derived,
        }
    }

    /// Creates a matrix from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix {
            data,
            rows,
            cols,
            provenance: Provenance::Derived,
        })
    }

    /// Creates a matrix from a slice of equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(Error::LengthMismatch {
                    expected: n_cols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            data,
            rows: rows.len(),
            cols: n_cols,
            provenance: Provenance::Derived,
        })
    }

    /// The lifecycle split this matrix was derived from.
    #[must_use]
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// Tags the matrix with a lifecycle provenance. Called by
    /// [`FittedFeaturizer::transform`](crate::transform::featurizer::FittedFeaturizer::transform)
    /// so that `fit` entry points taking matrices can reject test data.
    pub fn set_provenance(&mut self, provenance: Provenance) {
        self.provenance = provenance;
    }

    /// Builder-style [`Matrix::set_provenance`].
    #[must_use]
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// Number of rows (examples).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The value at (`i`, `j`).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets the value at (`i`, `j`).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Copies column `j` into a new vector.
    #[must_use]
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Iterates over rows. A matrix with zero columns still yields one
    /// (empty) slice per row, so row counts survive degenerate schemas.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        let cols = self.cols;
        (0..self.rows).map(move |i| &self.data[i * cols..(i + 1) * cols])
    }

    /// Materializes the rows at `indices` into a new matrix.
    ///
    /// One preallocated output buffer filled by per-row `memcpy`s — no
    /// incremental growth or capacity checks on the hot path.
    #[must_use]
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = vec![0.0; indices.len() * self.cols];
        for (dst, &i) in data.chunks_exact_mut(self.cols.max(1)).zip(indices) {
            dst.copy_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
            provenance: self.provenance,
        }
    }

    /// Materializes the columns at `indices` into a new matrix (used by
    /// random-subspace ensembles).
    ///
    /// Writes straight into a preallocated buffer instead of `push`ing
    /// element-by-element, so the inner loop is a pure gather with no
    /// capacity checks.
    #[must_use]
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut data = vec![0.0; self.rows * indices.len()];
        for (dst, src) in data
            .chunks_exact_mut(indices.len().max(1))
            .zip(self.rows_iter())
        {
            for (d, &j) in dst.iter_mut().zip(indices) {
                *d = src[j];
            }
        }
        Matrix {
            data,
            rows: self.rows,
            cols: indices.len(),
            provenance: self.provenance,
        }
    }

    /// Single-pass submatrix gather: the rows at `rows` restricted to the
    /// columns at `cols`, without materializing the intermediate row
    /// selection (used by random-subspace ensembles, where
    /// `take_rows(..).select_columns(..)` would allocate a full bootstrap
    /// copy per tree). Like [`Matrix::select_columns`], the output is
    /// preallocated and written directly.
    #[must_use]
    pub fn gather(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        let mut data = vec![0.0; rows.len() * cols.len()];
        for (dst, &i) in data.chunks_exact_mut(cols.len().max(1)).zip(rows) {
            let src = self.row(i);
            for (d, &j) in dst.iter_mut().zip(cols) {
                *d = src[j];
            }
        }
        Matrix {
            data,
            rows: rows.len(),
            cols: cols.len(),
            provenance: self.provenance,
        }
    }

    /// Batched matrix–vector product: `out[i] = dot(row_i, w)`. This is
    /// the predict kernel for every linear model — one pass over the
    /// row-major data through [`crate::kernels::matvec_into`], no per-row
    /// allocation.
    pub fn matvec(&self, w: &[f64]) -> Result<Vec<f64>> {
        if w.len() != self.cols {
            return Err(Error::LengthMismatch {
                expected: self.cols,
                actual: w.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        crate::kernels::matvec_into(&self.data, self.cols, w, &mut out);
        Ok(out)
    }

    /// `true` when every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Raw row-major data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// Numerically-stable logistic sigmoid.
#[must_use]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_checks_raggedness() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn mutation() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 9.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn take_rows_duplicates_allowed() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let t = m.take_rows(&[2, 2, 0]);
        assert_eq!(t.column(0), vec![3.0, 3.0, 1.0]);
    }

    #[test]
    fn rows_iter_yields_all() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn finiteness_check() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.is_finite());
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn dot_handles_every_tail_length() {
        // Exercise the unrolled kernel across remainder classes 0..=3.
        for n in 0..10 {
            let a: Vec<f64> = (0..n).map(f64::from).collect();
            let b: Vec<f64> = (0..n).map(|i| f64::from(i) * 0.5).collect();
            let expected: f64 = (0..n).map(|i| f64::from(i) * f64::from(i) * 0.5).sum();
            assert!((dot(&a, &b) - expected).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn matvec_matches_per_row_dot() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![-1.0, 0.5, 2.0, -3.0, 1.0],
        ])
        .unwrap();
        let w = [0.1, 0.2, 0.3, 0.4, 0.5];
        let out = m.matvec(&w).unwrap();
        assert_eq!(out.len(), 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, dot(m.row(i), &w));
        }
        // Dimension mismatch is an error, not a panic.
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gather_is_take_rows_then_select_columns() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let rows = [2, 0, 2];
        let cols = [2, 0];
        let gathered = m.gather(&rows, &cols);
        let reference = m.take_rows(&rows).select_columns(&cols);
        assert_eq!(gathered, reference);
        assert_eq!(gathered.row(0), &[9.0, 7.0]);
    }

    #[test]
    fn provenance_propagates_and_is_ignored_by_eq() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
            .unwrap()
            .with_provenance(Provenance::Test);
        assert_eq!(m.take_rows(&[1]).provenance(), Provenance::Test);
        assert_eq!(m.select_columns(&[0]).provenance(), Provenance::Test);
        assert_eq!(m.gather(&[0], &[1]).provenance(), Provenance::Test);
        // Equality is about values, not tags.
        let same_values = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m, same_values);
    }

    #[test]
    fn zero_column_matrix_keeps_its_rows() {
        // A dataset whose features were all dropped still has n rows; the
        // row iterator must yield n empty slices, not zero rows.
        let m = Matrix::zeros(3, 0);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 0);
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
        // Derived operations preserve the row count too.
        assert_eq!(m.take_rows(&[0, 2]).n_rows(), 2);
        assert_eq!(m.matvec(&[]).unwrap(), vec![0.0; 3]);
    }
}
