//! Feature transformation: scaling, one-hot encoding, and the featurizer
//! that turns relational datasets into feature matrices.

pub mod featurizer;
pub mod onehot;
pub mod scaler;

pub use featurizer::FittedFeaturizer;
pub use onehot::OneHotEncoder;
pub use scaler::{FittedScaler, ScalerSpec};
