//! The featurizer: converts a relational dataset into the matrix form
//! consumed by learners.
//!
//! "After imputation on the raw training data, FairPrep applies feature
//! transformations to convert the data into a numeric format suitable for
//! learning algorithms. By default, the framework scales numeric features
//! with a user-chosen strategy, and one-hot encodes categorical values. If
//! the feature transformers require aggregate statistics from the data, we
//! again ensure that these are only computed on the training dataset. The
//! 'fitted' feature transformers are stored in memory afterwards, in order
//! to be applied to the validation set and test set in later phases." (§3)

use fairprep_data::column::Value;
use fairprep_data::dataset::BinaryLabelDataset;
use fairprep_data::error::{Error, Result};
use fairprep_trace::json::{obj, Value as Json};
use fairprep_trace::{Counter, Tracer};

use crate::matrix::Matrix;
use crate::sealing;
use crate::transform::onehot::OneHotEncoder;
use crate::transform::scaler::{FittedScaler, ScalerSpec};

/// A featurizer fitted on a training set; applies identically to any later
/// split of the same schema.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedFeaturizer {
    numeric_names: Vec<String>,
    categorical_names: Vec<String>,
    scaler: FittedScaler,
    encoders: Vec<OneHotEncoder>,
    feature_names: Vec<String>,
}

impl FittedFeaturizer {
    /// Fits scaling statistics and one-hot dictionaries on the **training**
    /// dataset only.
    ///
    /// Numeric feature columns must be complete (run the missing-value
    /// handler first); categorical training cells may be missing and are
    /// skipped when collecting categories.
    pub fn fit(train: &BinaryLabelDataset, scaler: ScalerSpec) -> Result<FittedFeaturizer> {
        train.guard_fit("FittedFeaturizer::fit");
        let schema = train.schema();
        let numeric_names: Vec<String> = schema
            .numeric_features()
            .iter()
            .map(ToString::to_string)
            .collect();
        let categorical_names: Vec<String> = schema
            .categorical_features()
            .iter()
            .map(ToString::to_string)
            .collect();

        // Collect complete numeric training columns for the scaler.
        let mut numeric_columns = Vec::with_capacity(numeric_names.len());
        for name in &numeric_names {
            let col = train.frame().column(name)?;
            let values = col.as_numeric()?;
            let complete: Vec<f64> = values.iter().flatten().copied().collect();
            if complete.len() != values.len() {
                return Err(Error::EmptyData(format!(
                    "numeric feature {name} still has missing values at featurization; \
                     run a missing-value handler first"
                )));
            }
            numeric_columns.push(complete);
        }
        let fitted_scaler = scaler.fit(&numeric_columns)?;

        let mut encoders = Vec::with_capacity(categorical_names.len());
        for name in &categorical_names {
            encoders.push(OneHotEncoder::fit(train.frame().column(name)?)?);
        }

        let mut feature_names = numeric_names.clone();
        for (name, enc) in categorical_names.iter().zip(&encoders) {
            feature_names.extend(enc.feature_names(name));
        }

        Ok(FittedFeaturizer {
            numeric_names,
            categorical_names,
            scaler: fitted_scaler,
            encoders,
            feature_names,
        })
    }

    /// Names of the produced matrix columns.
    #[must_use]
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Output dimensionality.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// The scaling strategy used for numeric features.
    #[must_use]
    pub fn scaler_spec(&self) -> ScalerSpec {
        self.scaler.spec()
    }

    /// Serializes the fitted featurizer — scaler parameters and one-hot
    /// dictionaries — into a sealed component record.
    #[must_use]
    pub fn seal(&self) -> Json {
        let encoders = self
            .categorical_names
            .iter()
            .zip(&self.encoders)
            .map(|(name, enc)| {
                obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("categories", enc.seal()),
                ])
            })
            .collect();
        obj(vec![
            ("kind", Json::Str("featurizer".to_string())),
            (
                "numeric",
                Json::Arr(
                    self.numeric_names
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("scaler", self.scaler.seal()),
            ("encoders", Json::Arr(encoders)),
        ])
    }

    /// Reconstructs a fitted featurizer from a sealed component record.
    /// Feature names are rebuilt from the sealed dictionaries, so the
    /// produced matrix layout is identical to the fit-time layout.
    pub fn unseal(v: &Json) -> Result<FittedFeaturizer> {
        sealing::expect_kind(v, "featurizer")?;
        let numeric_names = sealing::req_str_vec(v, "numeric")?;
        let scaler = FittedScaler::unseal(sealing::req(v, "scaler")?)?;
        if scaler.n_features() != numeric_names.len() {
            return Err(sealing::seal_err(format!(
                "scaler width {} does not match {} numeric features",
                scaler.n_features(),
                numeric_names.len()
            )));
        }
        let mut categorical_names = Vec::new();
        let mut encoders = Vec::new();
        for record in sealing::req_arr(v, "encoders")? {
            categorical_names.push(sealing::req_str(record, "name")?.to_string());
            encoders.push(OneHotEncoder::unseal(sealing::req(record, "categories")?)?);
        }
        let mut feature_names = numeric_names.clone();
        for (name, enc) in categorical_names.iter().zip(&encoders) {
            feature_names.extend(enc.feature_names(name));
        }
        Ok(FittedFeaturizer {
            numeric_names,
            categorical_names,
            scaler,
            encoders,
            feature_names,
        })
    }

    /// Transforms any split (train/validation/test) of the schema the
    /// featurizer was fitted on into a feature matrix.
    pub fn transform(&self, dataset: &BinaryLabelDataset) -> Result<Matrix> {
        self.transform_impl(dataset).map(|(out, _)| out)
    }

    /// Like [`FittedFeaturizer::transform`], additionally counting the
    /// categorical cells routed to the unseen-category indicator slot into
    /// [`Counter::UnseenCategories`]. The count is a pure function of the
    /// data, so it is safe for the canonical manifest.
    pub fn transform_traced(
        &self,
        dataset: &BinaryLabelDataset,
        tracer: &Tracer,
    ) -> Result<Matrix> {
        let (out, unseen) = self.transform_impl(dataset)?;
        tracer.add(Counter::UnseenCategories, unseen);
        Ok(out)
    }

    fn transform_impl(&self, dataset: &BinaryLabelDataset) -> Result<(Matrix, u64)> {
        let n = dataset.n_rows();
        let d = self.n_features();
        let mut out = Matrix::zeros(n, d);

        // Numeric block.
        for (j, name) in self.numeric_names.iter().enumerate() {
            let col = dataset.frame().column(name)?;
            let values = col.as_numeric()?;
            for (i, v) in values.iter().enumerate() {
                match v {
                    Some(x) => out.set(i, j, self.scaler.transform_value(j, *x)?),
                    None => {
                        return Err(Error::EmptyData(format!(
                            "numeric feature {name} missing at row {i} during transform"
                        )))
                    }
                }
            }
        }

        // Categorical blocks.
        let mut unseen = 0u64;
        let mut offset = self.numeric_names.len();
        for (name, enc) in self.categorical_names.iter().zip(&self.encoders) {
            let col = dataset.frame().column(name)?;
            let width = enc.width();
            for i in 0..n {
                let value = match col.get(i) {
                    Value::Categorical(s) => Some(s.to_string()),
                    Value::Missing => None,
                    Value::Numeric(_) => {
                        return Err(Error::ColumnTypeMismatch {
                            column: name.clone(),
                            expected: "categorical",
                        })
                    }
                };
                if let Some(v) = value.as_deref() {
                    if enc.categories().iter().all(|c| c != v) {
                        unseen += 1;
                    }
                }
                enc.encode_into(
                    value.as_deref(),
                    &mut out.row_mut(i)[offset..offset + width],
                )?;
            }
            offset += width;
        }

        // Carry the lifecycle tag into matrix form so downstream model
        // fits can reject test data too.
        out.set_provenance(dataset.provenance());
        Ok((out, unseen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairprep_data::column::{Column, ColumnKind};
    use fairprep_data::frame::DataFrame;
    use fairprep_data::schema::{ProtectedAttribute, Schema};

    fn dataset(jobs: &[&str], ages: &[f64]) -> BinaryLabelDataset {
        let n = jobs.len();
        let frame = DataFrame::new()
            .with_column("age", Column::from_f64(ages.iter().copied()))
            .unwrap()
            .with_column("job", Column::from_strs(jobs.iter().copied()))
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })),
            )
            .unwrap()
            .with_column(
                "y",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "p" } else { "n" })),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("age")
            .categorical_feature("job")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap()
    }

    #[test]
    fn fit_transform_shapes_and_names() {
        let train = dataset(
            &["clerk", "chef", "clerk", "nurse"],
            &[20.0, 30.0, 40.0, 50.0],
        );
        let f = FittedFeaturizer::fit(&train, ScalerSpec::Standard).unwrap();
        // 1 numeric + (3 categories + unseen) = 5.
        assert_eq!(f.n_features(), 5);
        assert_eq!(
            f.feature_names(),
            &["age", "job=clerk", "job=chef", "job=nurse", "job=<unseen>"]
        );
        let m = f.transform(&train).unwrap();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 5);
        assert!(m.is_finite());
    }

    #[test]
    fn numeric_scaling_uses_train_statistics_only() {
        let train = dataset(&["a", "a", "a", "a"], &[0.0, 10.0, 0.0, 10.0]);
        let test = dataset(&["a", "a", "a", "a"], &[20.0, 20.0, 20.0, 20.0]);
        let f = FittedFeaturizer::fit(&train, ScalerSpec::MinMax).unwrap();
        let m = f.transform(&test).unwrap();
        // Train range was [0, 10], so test value 20 maps to 2.0 — proof the
        // test data did not influence the fit.
        assert_eq!(m.get(0, 0), 2.0);
    }

    #[test]
    fn unseen_test_category_routes_to_unseen_slot() {
        let train = dataset(&["clerk", "chef", "clerk", "chef"], &[1.0, 2.0, 3.0, 4.0]);
        let test = dataset(&["pilot", "clerk", "pilot", "clerk"], &[1.0, 2.0, 3.0, 4.0]);
        let f = FittedFeaturizer::fit(&train, ScalerSpec::NoScaling).unwrap();
        let m = f.transform(&test).unwrap();
        let names = f.feature_names();
        let unseen_ix = names.iter().position(|n| n == "job=<unseen>").unwrap();
        assert_eq!(m.get(0, unseen_ix), 1.0);
        assert_eq!(m.get(1, unseen_ix), 0.0);
    }

    #[test]
    fn transform_traced_counts_test_only_categories() {
        let train = dataset(&["clerk", "chef", "clerk", "chef"], &[1.0, 2.0, 3.0, 4.0]);
        let test = dataset(&["pilot", "clerk", "pilot", "clerk"], &[1.0, 2.0, 3.0, 4.0]);
        let f = FittedFeaturizer::fit(&train, ScalerSpec::NoScaling).unwrap();
        let tracer = Tracer::enabled();
        // Training data contains no unseen categories by construction.
        f.transform_traced(&train, &tracer).unwrap();
        assert_eq!(tracer.counter(Counter::UnseenCategories), 0);
        // "pilot" appears only in the test split: two rows route to the
        // unseen slot and the counter records both.
        let m = f.transform_traced(&test, &tracer).unwrap();
        assert_eq!(tracer.counter(Counter::UnseenCategories), 2);
        assert_eq!(m, f.transform(&test).unwrap());
    }

    #[test]
    fn missing_numeric_rejected_at_fit_and_transform() {
        let mut ds = dataset(&["a", "b", "a", "b"], &[1.0, 2.0, 3.0, 4.0]);
        ds.frame_mut()
            .replace_column(
                "age",
                Column::from_optional_f64([Some(1.0), None, Some(3.0), Some(4.0)]),
            )
            .unwrap();
        assert!(FittedFeaturizer::fit(&ds, ScalerSpec::Standard).is_err());

        let train = dataset(&["a", "b", "a", "b"], &[1.0, 2.0, 3.0, 4.0]);
        let f = FittedFeaturizer::fit(&train, ScalerSpec::Standard).unwrap();
        assert!(f.transform(&ds).is_err());
    }

    #[test]
    fn transform_stamps_matrix_provenance() {
        use fairprep_data::provenance::Provenance;
        let mut ds = dataset(&["x", "y", "x", "y"], &[5.0, 6.0, 7.0, 8.0]);
        let f = FittedFeaturizer::fit(&ds, ScalerSpec::NoScaling).unwrap();
        ds.set_provenance(Provenance::Test);
        let m = f.transform(&ds).unwrap();
        assert_eq!(m.provenance(), Provenance::Test);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "test-set isolation violation")]
    fn fit_rejects_test_tagged_dataset() {
        use fairprep_data::provenance::Provenance;
        let mut ds = dataset(&["x", "y", "x", "y"], &[5.0, 6.0, 7.0, 8.0]);
        ds.set_provenance(Provenance::Test);
        let _ = FittedFeaturizer::fit(&ds, ScalerSpec::Standard);
    }

    #[test]
    fn transform_is_deterministic() {
        let train = dataset(&["x", "y", "x", "y"], &[5.0, 6.0, 7.0, 8.0]);
        let f = FittedFeaturizer::fit(&train, ScalerSpec::Standard).unwrap();
        let a = f.transform(&train).unwrap();
        let b = f.transform(&train).unwrap();
        assert_eq!(a, b);
    }
}
