//! Numeric feature scaling with fit-on-train-only semantics.
//!
//! The paper (§2.3) observes that existing fairness frameworks do not scale
//! numeric features, which makes SGD-trained models fail outright (§5.2,
//! Figure 3). FairPrep therefore ships standardisation and min-max scaling,
//! plus an explicit [`ScalerSpec::NoScaling`] variant "for studying the
//! effect of this preprocessing step" (§4).
//!
//! All three strategies are affine maps, so a fitted scaler stores one
//! `(offset, scale)` pair per feature. `fit` must only ever be called with
//! training data — the lifecycle enforces this.

use fairprep_data::error::{Error, Result};
use fairprep_trace::json::{obj, Value};

use crate::sealing;

/// The scaling strategy to apply to numeric features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalerSpec {
    /// z-score standardisation: `(x - mean) / std`.
    Standard,
    /// Min-max scaling to `[0, 1]`: `(x - min) / (max - min)`.
    MinMax,
    /// Identity — keeps features on their original scale
    /// ("which might be dangerous", §4).
    NoScaling,
}

impl ScalerSpec {
    /// Stable name for run metadata.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScalerSpec::Standard => "standard_scaler",
            ScalerSpec::MinMax => "min_max_scaler",
            ScalerSpec::NoScaling => "no_scaling",
        }
    }

    /// Fits per-column affine parameters on training values.
    ///
    /// `columns` holds the training values of each numeric feature. Columns
    /// must be non-empty. Constant columns scale to `0.0` (scale factor 0)
    /// rather than dividing by zero.
    // audit: allow(missing-guard-fit, reason = "fits on raw value vectors extracted by the guarded Featurizer::fit; no provenance-carrying type reaches this layer")
    pub fn fit(self, columns: &[Vec<f64>]) -> Result<FittedScaler> {
        let mut params = Vec::with_capacity(columns.len());
        for (j, xs) in columns.iter().enumerate() {
            if xs.is_empty() {
                return Err(Error::EmptyData(format!(
                    "scaler fit: feature {j} has no values"
                )));
            }
            if xs.iter().any(|v| !v.is_finite()) {
                return Err(Error::InvalidParameter {
                    name: "scaler",
                    message: format!("feature {j} contains non-finite values"),
                });
            }
            let p = match self {
                ScalerSpec::Standard => {
                    let n = xs.len() as f64;
                    let mean = xs.iter().sum::<f64>() / n;
                    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                    let std = var.sqrt();
                    Affine {
                        offset: mean,
                        scale: if std > 0.0 { 1.0 / std } else { 0.0 },
                    }
                }
                ScalerSpec::MinMax => {
                    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let range = max - min;
                    Affine {
                        offset: min,
                        scale: if range > 0.0 { 1.0 / range } else { 0.0 },
                    }
                }
                ScalerSpec::NoScaling => Affine {
                    offset: 0.0,
                    scale: 1.0,
                },
            };
            params.push(p);
        }
        Ok(FittedScaler { spec: self, params })
    }
}

/// Per-feature affine transform `(x - offset) * scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Affine {
    offset: f64,
    scale: f64,
}

/// A scaler whose parameters were fitted on the training set.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedScaler {
    spec: ScalerSpec,
    params: Vec<Affine>,
}

impl FittedScaler {
    /// The strategy this scaler was fitted with.
    #[must_use]
    pub fn spec(&self) -> ScalerSpec {
        self.spec
    }

    /// Number of features the scaler was fitted on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.params.len()
    }

    /// Scales feature `j` of a single value.
    pub fn transform_value(&self, j: usize, x: f64) -> Result<f64> {
        let p = self.params.get(j).ok_or(Error::LengthMismatch {
            expected: self.params.len(),
            actual: j + 1,
        })?;
        Ok((x - p.offset) * p.scale)
    }

    /// Inverse of [`FittedScaler::transform_value`]. For constant training
    /// columns (scale factor 0) the inverse returns the training constant.
    pub fn inverse_value(&self, j: usize, y: f64) -> Result<f64> {
        let p = self.params.get(j).ok_or(Error::LengthMismatch {
            expected: self.params.len(),
            actual: j + 1,
        })?;
        // audit: allow(float-eq, reason = "zero scale marks a constant training column, stored as exactly 0.0 at fit time")
        if p.scale == 0.0 {
            Ok(p.offset)
        } else {
            Ok(y / p.scale + p.offset)
        }
    }

    /// Serializes the fitted parameters into a sealed component record.
    pub fn seal(&self) -> Value {
        let offsets: Vec<f64> = self.params.iter().map(|p| p.offset).collect();
        let scales: Vec<f64> = self.params.iter().map(|p| p.scale).collect();
        obj(vec![
            ("kind", Value::Str(self.spec.name().to_string())),
            ("offsets", Value::bits_vec(&offsets)),
            ("scales", Value::bits_vec(&scales)),
        ])
    }

    /// Reconstructs a fitted scaler from a sealed component record.
    pub fn unseal(v: &Value) -> Result<FittedScaler> {
        let spec = match sealing::kind_of(v)? {
            "standard_scaler" => ScalerSpec::Standard,
            "min_max_scaler" => ScalerSpec::MinMax,
            "no_scaling" => ScalerSpec::NoScaling,
            other => return Err(sealing::seal_err(format!("unknown scaler kind {other:?}"))),
        };
        let offsets = sealing::req_f64_vec(v, "offsets")?;
        let scales = sealing::req_f64_vec(v, "scales")?;
        if offsets.len() != scales.len() {
            return Err(sealing::seal_err(
                "scaler offsets and scales differ in length".to_string(),
            ));
        }
        let params = offsets
            .into_iter()
            .zip(scales)
            .map(|(offset, scale)| Affine { offset, scale })
            .collect();
        Ok(FittedScaler { spec, params })
    }

    /// Scales a full example in place (`row.len()` must equal
    /// [`FittedScaler::n_features`]).
    pub fn transform_row(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.params.len() {
            return Err(Error::LengthMismatch {
                expected: self.params.len(),
                actual: row.len(),
            });
        }
        for (x, p) in row.iter_mut().zip(&self.params) {
            *x = (*x - p.offset) * p.scale;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let fitted = ScalerSpec::Standard.fit(&[vec![2.0, 4.0, 6.0]]).unwrap();
        let scaled: Vec<f64> = [2.0, 4.0, 6.0]
            .iter()
            .map(|&x| fitted.transform_value(0, x).unwrap())
            .collect();
        let mean: f64 = scaled.iter().sum::<f64>() / 3.0;
        let var: f64 = scaled.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_maps_train_range_to_unit() {
        let fitted = ScalerSpec::MinMax.fit(&[vec![10.0, 20.0, 30.0]]).unwrap();
        assert_eq!(fitted.transform_value(0, 10.0).unwrap(), 0.0);
        assert_eq!(fitted.transform_value(0, 30.0).unwrap(), 1.0);
        assert_eq!(fitted.transform_value(0, 20.0).unwrap(), 0.5);
        // Out-of-train-range values extrapolate, as in scikit-learn.
        assert_eq!(fitted.transform_value(0, 40.0).unwrap(), 1.5);
    }

    #[test]
    fn no_scaling_is_identity() {
        let fitted = ScalerSpec::NoScaling.fit(&[vec![1.0, 100.0]]).unwrap();
        assert_eq!(fitted.transform_value(0, 42.5).unwrap(), 42.5);
    }

    #[test]
    fn constant_column_is_safe() {
        for spec in [ScalerSpec::Standard, ScalerSpec::MinMax] {
            let fitted = spec.fit(&[vec![5.0, 5.0, 5.0]]).unwrap();
            assert_eq!(fitted.transform_value(0, 5.0).unwrap(), 0.0);
            assert_eq!(fitted.transform_value(0, 7.0).unwrap(), 0.0);
            assert_eq!(fitted.inverse_value(0, 0.0).unwrap(), 5.0);
        }
    }

    #[test]
    fn inverse_roundtrips() {
        for spec in [
            ScalerSpec::Standard,
            ScalerSpec::MinMax,
            ScalerSpec::NoScaling,
        ] {
            let fitted = spec.fit(&[vec![1.0, 3.0, 9.0]]).unwrap();
            for x in [1.0, 2.0, 9.0, -4.0] {
                let y = fitted.transform_value(0, x).unwrap();
                let back = fitted.inverse_value(0, y).unwrap();
                assert!((back - x).abs() < 1e-9, "{spec:?} failed roundtrip at {x}");
            }
        }
    }

    #[test]
    fn transform_row_scales_all_features() {
        let fitted = ScalerSpec::MinMax
            .fit(&[vec![0.0, 10.0], vec![0.0, 2.0]])
            .unwrap();
        let mut row = vec![5.0, 1.0];
        fitted.transform_row(&mut row).unwrap();
        assert_eq!(row, vec![0.5, 0.5]);
    }

    #[test]
    fn transform_row_checks_arity() {
        let fitted = ScalerSpec::Standard.fit(&[vec![1.0, 2.0]]).unwrap();
        let mut row = vec![1.0, 2.0];
        assert!(fitted.transform_row(&mut row).is_err());
    }

    #[test]
    fn fit_rejects_empty_or_nonfinite() {
        assert!(ScalerSpec::Standard.fit(&[vec![]]).is_err());
        assert!(ScalerSpec::Standard.fit(&[vec![1.0, f64::NAN]]).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(ScalerSpec::Standard.name(), "standard_scaler");
        assert_eq!(ScalerSpec::MinMax.name(), "min_max_scaler");
        assert_eq!(ScalerSpec::NoScaling.name(), "no_scaling");
    }
}
