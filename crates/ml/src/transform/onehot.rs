//! One-hot encoding of categorical features, robust to unseen categories.
//!
//! FairPrep makes the AIF360 dataset abstraction "more flexible by allowing
//! operations like one-hot encoding on different versions by adding feature
//! dimensions for unseen categorical values" (§4): the encoder reserves a
//! dedicated indicator slot for categories that were not present in the
//! training data, so validation/test rows never crash the pipeline and
//! never silently alias a training category.

use fairprep_data::column::Column;
use fairprep_data::error::{Error, Result};
use fairprep_trace::json::Value;

use crate::sealing;

/// A one-hot encoder fitted on the training values of one categorical
/// feature.
#[derive(Debug, Clone, PartialEq)]
pub struct OneHotEncoder {
    categories: Vec<String>,
}

impl OneHotEncoder {
    /// Fits the encoder on the *training* column: records the distinct
    /// observed categories (missing values are ignored during fitting;
    /// impute before featurizing).
    // audit: allow(missing-guard-fit, reason = "fits on a bare Column handed down by Featurizer::fit, which guards provenance before dispatching here")
    pub fn fit(train_column: &Column) -> Result<OneHotEncoder> {
        let cat = train_column.as_categorical()?;
        let mut seen = vec![false; cat.categories().len()];
        for code in cat.codes().iter().flatten() {
            seen[*code as usize] = true;
        }
        let categories: Vec<String> = cat
            .categories()
            .iter()
            .zip(&seen)
            .filter(|(_, &s)| s)
            .map(|(c, _)| c.clone())
            .collect();
        if categories.is_empty() {
            return Err(Error::EmptyData(
                "one-hot fit on all-missing column".to_string(),
            ));
        }
        Ok(OneHotEncoder { categories })
    }

    /// The categories observed at fit time, in first-seen order.
    #[must_use]
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Output width: one indicator per training category plus the
    /// unseen-category slot.
    #[must_use]
    pub fn width(&self) -> usize {
        self.categories.len() + 1
    }

    /// Names of the produced feature dimensions, prefixed with the source
    /// attribute name (e.g. `workclass=Private`, `workclass=<unseen>`).
    #[must_use]
    pub fn feature_names(&self, attribute: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .categories
            .iter()
            .map(|c| format!("{attribute}={c}"))
            .collect();
        names.push(format!("{attribute}=<unseen>"));
        names
    }

    /// Serializes the fitted categories into a sealed component record
    /// (an array of category strings in first-seen order).
    #[must_use]
    pub fn seal(&self) -> Value {
        Value::Arr(
            self.categories
                .iter()
                .map(|c| Value::Str(c.clone()))
                .collect(),
        )
    }

    /// Reconstructs an encoder from a sealed component record.
    pub fn unseal(v: &Value) -> Result<OneHotEncoder> {
        let categories: Vec<String> = v
            .as_array()
            .ok_or_else(|| sealing::seal_err("one-hot record is not an array"))?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| sealing::seal_err("one-hot category is not a string"))
            })
            .collect::<Result<_>>()?;
        if categories.is_empty() {
            return Err(sealing::seal_err("one-hot record has no categories"));
        }
        Ok(OneHotEncoder { categories })
    }

    /// Encodes one value into `out` (which must have length
    /// [`OneHotEncoder::width`]). Unseen categories set the final slot;
    /// missing values encode as all-zeros (the imputation stage runs before
    /// featurization, so this is a defensive fallback, not the normal path).
    pub fn encode_into(&self, value: Option<&str>, out: &mut [f64]) -> Result<()> {
        if out.len() != self.width() {
            return Err(Error::LengthMismatch {
                expected: self.width(),
                actual: out.len(),
            });
        }
        out.fill(0.0);
        if let Some(v) = value {
            match self.categories.iter().position(|c| c == v) {
                Some(i) => out[i] = 1.0,
                None => out[self.categories.len()] = 1.0,
            }
        }
        Ok(())
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn encode(&self, value: Option<&str>) -> Vec<f64> {
        let mut out = vec![0.0; self.width()];
        // audit: allow(expect, reason = "the output vector is allocated with self.width() on the previous line")
        self.encode_into(value, &mut out).expect("width matches");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted() -> OneHotEncoder {
        let col = Column::from_strs(["red", "green", "red", "blue"]);
        OneHotEncoder::fit(&col).unwrap()
    }

    #[test]
    fn fit_records_first_seen_order() {
        let enc = fitted();
        assert_eq!(enc.categories(), &["red", "green", "blue"]);
        assert_eq!(enc.width(), 4);
    }

    #[test]
    fn encodes_known_categories() {
        let enc = fitted();
        assert_eq!(enc.encode(Some("red")), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(enc.encode(Some("blue")), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn unseen_category_uses_dedicated_slot() {
        let enc = fitted();
        assert_eq!(enc.encode(Some("purple")), vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn missing_encodes_as_zeros() {
        let enc = fitted();
        assert_eq!(enc.encode(None), vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn exactly_one_hot_for_observed_values() {
        let enc = fitted();
        for v in ["red", "green", "blue", "never-seen"] {
            let e = enc.encode(Some(v));
            assert_eq!(e.iter().sum::<f64>(), 1.0, "value {v}");
        }
    }

    #[test]
    fn fit_skips_missing_values() {
        let col = Column::from_optional_strs([Some("a"), None, Some("b")]);
        let enc = OneHotEncoder::fit(&col).unwrap();
        assert_eq!(enc.categories(), &["a", "b"]);
    }

    #[test]
    fn fit_on_all_missing_is_error() {
        let col = Column::from_optional_strs([None, None]);
        assert!(OneHotEncoder::fit(&col).is_err());
    }

    #[test]
    fn fit_rejects_numeric_column() {
        let col = Column::from_f64([1.0]);
        assert!(OneHotEncoder::fit(&col).is_err());
    }

    #[test]
    fn feature_names_are_prefixed() {
        let enc = fitted();
        assert_eq!(
            enc.feature_names("color"),
            vec!["color=red", "color=green", "color=blue", "color=<unseen>"]
        );
    }

    #[test]
    fn encode_into_checks_width() {
        let enc = fitted();
        let mut small = vec![0.0; 2];
        assert!(enc.encode_into(Some("red"), &mut small).is_err());
    }

    #[test]
    fn dictionary_categories_unused_in_train_are_excluded() {
        // Build a column whose dictionary knows "c" but whose rows never use it
        // (as happens after `take` of a subset).
        let col = Column::from_strs(["a", "b", "c"]);
        let sub = col.take(&[0, 1]);
        let enc = OneHotEncoder::fit(&sub).unwrap();
        assert_eq!(enc.categories(), &["a", "b"]);
        // "c" now routes to the unseen slot.
        assert_eq!(enc.encode(Some("c")), vec![0.0, 0.0, 1.0]);
    }
}
