//! Seeded data splitting: train/validation/test partitions and k-fold
//! cross-validation folds.
//!
//! The paper (§2.1) shows that previous studies violated test-set isolation,
//! in part because splitting happened *after* preprocessing. In FairPrep the
//! split is the very first operation on the raw dataset, and it is fully
//! determined by the experiment seed (§2.5, reproducibility).

use rand::seq::SliceRandom;

use crate::dataset::BinaryLabelDataset;
use crate::error::{Error, Result};
use crate::provenance::Provenance;
use crate::rng::component_rng;

/// Fractions for a three-way split. Must sum to 1 (±1e-9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSpec {
    /// Fraction of rows for the training set.
    pub train: f64,
    /// Fraction of rows for the validation set.
    pub validation: f64,
    /// Fraction of rows for the held-out test set.
    pub test: f64,
}

impl SplitSpec {
    /// The paper's standard configuration: 70% train / 10% validation /
    /// 20% test (§5.1–§5.3).
    #[must_use]
    pub fn paper_default() -> Self {
        SplitSpec {
            train: 0.7,
            validation: 0.1,
            test: 0.2,
        }
    }

    /// Stable human-readable description (`train/validation/test`
    /// fractions), used verbatim in run manifests — float `Display` is
    /// shortest-roundtrip, so this string is deterministic.
    #[must_use]
    pub fn describe(&self) -> String {
        format!("{}/{}/{}", self.train, self.validation, self.test)
    }

    /// Validates the fractions.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("train", self.train),
            ("validation", self.validation),
            ("test", self.test),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(Error::InvalidSplit(format!(
                    "{name} fraction {v} out of [0,1]"
                )));
            }
        }
        let sum = self.train + self.validation + self.test;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(Error::InvalidSplit(format!(
                "fractions sum to {sum}, expected 1"
            )));
        }
        // audit: allow(float-eq, reason = "rejects the exact degenerate configuration value 0.0, not a computed quantity")
        if self.train == 0.0 || self.test == 0.0 {
            return Err(Error::InvalidSplit(
                "train and test fractions must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

/// The result of a three-way split.
#[derive(Debug, Clone)]
pub struct TrainValTest {
    /// Training partition.
    pub train: BinaryLabelDataset,
    /// Validation partition (may be empty when `validation == 0`).
    pub validation: BinaryLabelDataset,
    /// Held-out test partition.
    pub test: BinaryLabelDataset,
    /// Original row indices of each partition (for auditing/lineage).
    pub indices: SplitIndices,
}

/// Original row indices of each partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitIndices {
    /// Rows assigned to the training set.
    pub train: Vec<usize>,
    /// Rows assigned to the validation set.
    pub validation: Vec<usize>,
    /// Rows assigned to the test set.
    pub test: Vec<usize>,
}

/// Splits `dataset` into train/validation/test with a seeded shuffle.
///
/// The shuffle consumes the `"splitter"` component stream of `seed`, so the
/// partition depends only on (dataset order, seed) — never on other
/// components of the run.
pub fn train_val_test_split(
    dataset: &BinaryLabelDataset,
    spec: SplitSpec,
    seed: u64,
) -> Result<TrainValTest> {
    let indices = split_row_indices(dataset.n_rows(), spec, seed)?;
    Ok(tagged_partitions(
        dataset,
        indices.train,
        indices.validation,
        indices.test,
    ))
}

/// Computes the shuffled partition indices of the three-way split without
/// touching any data — the RNG-consuming core of [`train_val_test_split`],
/// shared with the chunked split so both produce identical partitions for
/// the same `(n, spec, seed)`.
pub fn split_row_indices(n: usize, spec: SplitSpec, seed: u64) -> Result<SplitIndices> {
    spec.validate()?;
    if n < 3 {
        return Err(Error::EmptyData(format!(
            "need at least 3 rows to split, have {n}"
        )));
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = component_rng(seed, "splitter");
    order.shuffle(&mut rng);

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let n_train = ((n as f64) * spec.train).round() as usize;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let n_val = ((n as f64) * spec.validation).round() as usize;
    let n_train = n_train.min(n.saturating_sub(1));
    let n_val = n_val.min(n - n_train);
    if n_train + n_val >= n {
        return Err(Error::InvalidSplit(format!(
            "test partition empty for n={n}, train={}, validation={}",
            spec.train, spec.validation
        )));
    }

    Ok(SplitIndices {
        train: order[..n_train].to_vec(),
        validation: order[n_train..n_train + n_val].to_vec(),
        test: order[n_train + n_val..].to_vec(),
    })
}

/// Materializes the three partitions and stamps their provenance tags —
/// the single place in the workspace where `Train` and `Test` tags are
/// born. Every downstream operation only propagates them; every `fit`
/// entry point guards against the `Test` tag.
fn tagged_partitions(
    dataset: &BinaryLabelDataset,
    train_idx: Vec<usize>,
    val_idx: Vec<usize>,
    test_idx: Vec<usize>,
) -> TrainValTest {
    let mut train = dataset.take(&train_idx);
    train.set_provenance(Provenance::Train);
    // Validation stays `Derived`: postprocessors legitimately fit on
    // validation predictions (§3), so it must not trip the leak guards.
    let mut validation = dataset.take(&val_idx);
    validation.set_provenance(Provenance::Derived);
    let mut test = dataset.take(&test_idx);
    test.set_provenance(Provenance::Test);
    TrainValTest {
        train,
        validation,
        test,
        indices: SplitIndices {
            train: train_idx,
            validation: val_idx,
            test: test_idx,
        },
    }
}

/// Seeded k-fold assignment over `n` rows. Returns, for each fold,
/// `(train_indices, validation_indices)`.
///
/// Folds partition the rows: every row appears in exactly one validation
/// fold. Fold sizes differ by at most one.
pub fn k_fold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 {
        return Err(Error::InvalidParameter {
            name: "k",
            message: format!("k-fold needs k >= 2, got {k}"),
        });
    }
    if n < k {
        return Err(Error::EmptyData(format!(
            "cannot make {k} folds from {n} rows"
        )));
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = component_rng(seed, "kfold");
    order.shuffle(&mut rng);

    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let val: Vec<usize> = order[start..start + size].to_vec();
        let train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + size..])
            .copied()
            .collect();
        folds.push((train, val));
        start += size;
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnKind};
    use crate::frame::DataFrame;
    use crate::schema::{ProtectedAttribute, Schema};

    fn dataset(n: usize) -> BinaryLabelDataset {
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(|i| i as f64)))
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })),
            )
            .unwrap()
            .with_column(
                "y",
                Column::from_strs((0..n).map(|i| if i % 3 == 0 { "pos" } else { "neg" })),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "pos",
        )
        .unwrap()
    }

    #[test]
    fn paper_default_is_70_10_20() {
        let s = SplitSpec::paper_default();
        assert_eq!(
            s,
            SplitSpec {
                train: 0.7,
                validation: 0.1,
                test: 0.2
            }
        );
        s.validate().unwrap();
    }

    #[test]
    fn split_partitions_all_rows() {
        let ds = dataset(100);
        let split = train_val_test_split(&ds, SplitSpec::paper_default(), 13).unwrap();
        assert_eq!(split.train.n_rows(), 70);
        assert_eq!(split.validation.n_rows(), 10);
        assert_eq!(split.test.n_rows(), 20);

        let mut all: Vec<usize> = split
            .indices
            .train
            .iter()
            .chain(&split.indices.validation)
            .chain(&split.indices.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_stamps_provenance_tags() {
        let ds = dataset(100);
        assert_eq!(ds.provenance(), Provenance::Derived);
        let split = train_val_test_split(&ds, SplitSpec::paper_default(), 13).unwrap();
        assert_eq!(split.train.provenance(), Provenance::Train);
        assert_eq!(split.validation.provenance(), Provenance::Derived);
        assert_eq!(split.test.provenance(), Provenance::Test);
        // Tags survive downstream row selection (what resamplers do).
        assert_eq!(split.test.take(&[0, 1]).provenance(), Provenance::Test);

        let strat = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), 13).unwrap();
        assert_eq!(strat.train.provenance(), Provenance::Train);
        assert_eq!(strat.test.provenance(), Provenance::Test);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let ds = dataset(50);
        let a = train_val_test_split(&ds, SplitSpec::paper_default(), 42).unwrap();
        let b = train_val_test_split(&ds, SplitSpec::paper_default(), 42).unwrap();
        assert_eq!(a.indices, b.indices);
        let c = train_val_test_split(&ds, SplitSpec::paper_default(), 43).unwrap();
        assert_ne!(a.indices, c.indices);
    }

    #[test]
    fn split_rejects_bad_fractions() {
        let bad = SplitSpec {
            train: 0.5,
            validation: 0.1,
            test: 0.1,
        };
        assert!(bad.validate().is_err());
        let negative = SplitSpec {
            train: -0.1,
            validation: 0.6,
            test: 0.5,
        };
        assert!(negative.validate().is_err());
        let no_test = SplitSpec {
            train: 0.9,
            validation: 0.1,
            test: 0.0,
        };
        assert!(no_test.validate().is_err());
    }

    #[test]
    fn split_rejects_tiny_dataset() {
        let frame = DataFrame::new()
            .with_column("g", Column::from_strs(["a", "b"]))
            .unwrap()
            .with_column("y", Column::from_strs(["pos", "neg"]))
            .unwrap();
        let schema = Schema::new()
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "pos",
        )
        .unwrap();
        assert!(train_val_test_split(&ds, SplitSpec::paper_default(), 1).is_err());
    }

    #[test]
    fn kfold_partitions_rows() {
        let folds = k_fold_indices(10, 3, 7).unwrap();
        assert_eq!(folds.len(), 3);
        let mut val_all: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        val_all.sort_unstable();
        assert_eq!(val_all, (0..10).collect::<Vec<_>>());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 10);
            for v in val {
                assert!(!train.contains(v));
            }
        }
        // Sizes differ by at most one: 10 = 4 + 3 + 3.
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn kfold_is_seed_deterministic() {
        assert_eq!(
            k_fold_indices(20, 5, 9).unwrap(),
            k_fold_indices(20, 5, 9).unwrap()
        );
        assert_ne!(
            k_fold_indices(20, 5, 9).unwrap(),
            k_fold_indices(20, 5, 10).unwrap()
        );
    }

    #[test]
    fn kfold_rejects_bad_params() {
        assert!(k_fold_indices(10, 1, 0).is_err());
        assert!(k_fold_indices(2, 5, 0).is_err());
    }
}

/// Splits `dataset` into train/validation/test **stratified by
/// (label × group) cell**: each partition preserves the joint proportions
/// of the full data as closely as integer counts allow. Important for tiny
/// datasets (e.g. ricci's 118 rows), where a plain random split can leave a
/// partition without any unprivileged positives.
pub fn stratified_train_val_test_split(
    dataset: &BinaryLabelDataset,
    spec: SplitSpec,
    seed: u64,
) -> Result<TrainValTest> {
    spec.validate()?;
    let n = dataset.n_rows();
    if n < 3 {
        return Err(Error::EmptyData(format!(
            "need at least 3 rows to split, have {n}"
        )));
    }
    let labels = dataset.labels();
    let mask = dataset.privileged_mask();
    let mut rng = component_rng(seed, "splitter/stratified");

    let mut train_idx = Vec::new();
    let mut val_idx = Vec::new();
    let mut test_idx = Vec::new();
    for y in [0.0, 1.0] {
        for privileged in [false, true] {
            let mut cell: Vec<usize> = (0..n)
                .filter(|&i| labels[i] == y && mask[i] == privileged)
                .collect();
            if cell.is_empty() {
                continue;
            }
            cell.shuffle(&mut rng);
            let c = cell.len();
            // Reserve the test share first (at least one row per cell of
            // size >= 2) so rare cells are always represented in the test
            // set; train takes its share next; validation gets the rest.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let n_test = if c >= 2 {
                (((c as f64) * spec.test).round().max(1.0) as usize).min(c - 1)
            } else {
                0
            };
            let remaining = c - n_test;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let n_train = (((c as f64) * spec.train).round() as usize).clamp(1, remaining);
            let n_val = remaining - n_train;
            train_idx.extend_from_slice(&cell[..n_train]);
            val_idx.extend_from_slice(&cell[n_train..n_train + n_val]);
            test_idx.extend_from_slice(&cell[n_train + n_val..]);
        }
    }
    if train_idx.is_empty() || test_idx.is_empty() {
        return Err(Error::InvalidSplit(
            "stratified split produced an empty train or test partition".to_string(),
        ));
    }
    train_idx.sort_unstable();
    val_idx.sort_unstable();
    test_idx.sort_unstable();

    Ok(tagged_partitions(dataset, train_idx, val_idx, test_idx))
}

#[cfg(test)]
mod stratified_tests {
    use super::*;
    use crate::column::{Column, ColumnKind};
    use crate::frame::DataFrame;
    use crate::schema::{ProtectedAttribute, Schema};

    /// 200 rows with a rare cell: only 5% are unprivileged positives.
    fn skewed(n: usize) -> BinaryLabelDataset {
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(|i| i as f64)))
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 4 == 0 { "b" } else { "a" })),
            )
            .unwrap()
            .with_column(
                "y",
                Column::from_strs((0..n).map(|i| {
                    // unprivileged (i % 4 == 0) positive only when i % 20 == 0
                    let positive = if i % 4 == 0 { i % 20 == 0 } else { i % 2 == 1 };
                    if positive {
                        "p"
                    } else {
                        "n"
                    }
                })),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "p",
        )
        .unwrap()
    }

    #[test]
    fn partitions_all_rows_disjointly() {
        let ds = skewed(200);
        let split = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), 3).unwrap();
        let mut all: Vec<usize> = split
            .indices
            .train
            .iter()
            .chain(&split.indices.validation)
            .chain(&split.indices.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn rare_cell_present_in_train_and_test() {
        let ds = skewed(200);
        let split = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), 7).unwrap();
        let rare = |part: &BinaryLabelDataset| {
            (0..part.n_rows())
                .filter(|&i| part.labels()[i] == 1.0 && !part.privileged_mask()[i])
                .count()
        };
        assert!(rare(&split.train) > 0, "train lost the rare cell");
        assert!(rare(&split.test) > 0, "test lost the rare cell");
    }

    #[test]
    fn proportions_are_preserved() {
        let ds = skewed(400);
        let split = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), 5).unwrap();
        let overall = ds.base_rate(None);
        for part in [&split.train, &split.test] {
            assert!(
                (part.base_rate(None) - overall).abs() < 0.05,
                "partition base rate {} vs overall {}",
                part.base_rate(None),
                overall
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = skewed(100);
        let a = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), 1).unwrap();
        let b = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), 1).unwrap();
        assert_eq!(a.indices, b.indices);
        let c = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), 2).unwrap();
        assert_ne!(a.indices, c.indices);
    }

    #[test]
    fn rejects_tiny_input_and_bad_spec() {
        let ds = skewed(100);
        let bad = SplitSpec {
            train: 0.5,
            validation: 0.4,
            test: 0.2,
        };
        assert!(stratified_train_val_test_split(&ds, bad, 0).is_err());
    }
}
