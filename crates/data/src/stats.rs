//! Exploratory statistics over frames and datasets.
//!
//! These are the operations Ann performs in the paper's §1.1 walkthrough:
//! value distributions, correlations, and — crucially for §2.4/§5.3 —
//! missingness statistics broken down by group, which is how the paper
//! documents that `native-country` is missing four times more often for
//! non-white than for white persons in the adult dataset.

use std::collections::BTreeMap;

use crate::column::Column;
use crate::dataset::BinaryLabelDataset;
use crate::error::{Error, Result};
use crate::frame::DataFrame;

/// Summary statistics for one numeric column (missing values excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct NumericSummary {
    /// Number of non-missing observations.
    pub count: usize,
    /// Number of missing observations.
    pub missing: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`NumericSummary`] for a numeric column.
pub fn numeric_summary(column: &Column) -> Result<NumericSummary> {
    let values = column.as_numeric()?;
    let missing = values.iter().filter(|v| v.is_none()).count();
    let xs: Vec<f64> = values.iter().flatten().copied().collect();
    if xs.is_empty() {
        return Err(Error::EmptyData(
            "numeric summary of all-missing column".to_string(),
        ));
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Ok(NumericSummary {
        count: xs.len(),
        missing,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

/// Frequency table of a categorical column (missing values counted under
/// the key returned separately).
pub fn value_counts(column: &Column) -> Result<(BTreeMap<String, usize>, usize)> {
    let cat = column.as_categorical()?;
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut missing = 0usize;
    for code in cat.codes() {
        match code {
            Some(c) => {
                // audit: allow(expect, reason = "codes come from the column's own dictionary, so reverse lookup cannot fail")
                let name = cat.category_of(*c).expect("valid code").to_string();
                *counts.entry(name).or_insert(0) += 1;
            }
            None => missing += 1,
        }
    }
    Ok((counts, missing))
}

/// Pearson correlation between two numeric columns over rows where both are
/// observed.
pub fn pearson_correlation(a: &Column, b: &Column) -> Result<f64> {
    let xs = a.as_numeric()?;
    let ys = b.as_numeric()?;
    if xs.len() != ys.len() {
        return Err(Error::LengthMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter_map(|(x, y)| Some((((*x)?), ((*y)?))))
        .collect();
    if pairs.len() < 2 {
        return Err(Error::EmptyData("fewer than 2 complete pairs".to_string()));
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let my = pairs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in &pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    // audit: allow(float-eq, reason = "zero variance is the exact degenerate case being rejected")
    if sxx == 0.0 || syy == 0.0 {
        return Err(Error::EmptyData(
            "zero-variance column in correlation".to_string(),
        ));
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Per-column missingness rates of a frame, in column order.
#[must_use]
pub fn missing_rates(frame: &DataFrame) -> Vec<(String, f64)> {
    let n = frame.n_rows().max(1) as f64;
    frame
        .column_names()
        .iter()
        .map(|name| {
            // audit: allow(expect, reason = "iterating the frame's own column names, so every lookup succeeds")
            let col = frame.column(name).expect("column exists");
            (name.clone(), col.missing_count() as f64 / n)
        })
        .collect()
}

/// Missingness of one attribute, separately for the privileged and
/// unprivileged groups.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMissingness {
    /// Fraction of privileged rows with the attribute missing.
    pub privileged_rate: f64,
    /// Fraction of unprivileged rows with the attribute missing.
    pub unprivileged_rate: f64,
}

impl GroupMissingness {
    /// Ratio `unprivileged_rate / privileged_rate` — the "four times higher
    /// chance" statistic from §2.4. `NaN` when the privileged rate is zero.
    #[must_use]
    pub fn disparity_ratio(&self) -> f64 {
        self.unprivileged_rate / self.privileged_rate
    }
}

/// Computes [`GroupMissingness`] for `column` in `dataset`.
pub fn group_missingness(dataset: &BinaryLabelDataset, column: &str) -> Result<GroupMissingness> {
    let col = dataset.frame().column(column)?;
    let mask = dataset.privileged_mask();
    let mut priv_missing = 0usize;
    let mut priv_total = 0usize;
    let mut unpriv_missing = 0usize;
    let mut unpriv_total = 0usize;
    for (i, &privileged) in mask.iter().enumerate() {
        if privileged {
            priv_total += 1;
            priv_missing += usize::from(col.is_missing(i));
        } else {
            unpriv_total += 1;
            unpriv_missing += usize::from(col.is_missing(i));
        }
    }
    if priv_total == 0 || unpriv_total == 0 {
        return Err(Error::EmptyGroup {
            privileged: priv_total == 0,
        });
    }
    Ok(GroupMissingness {
        privileged_rate: priv_missing as f64 / priv_total as f64,
        unprivileged_rate: unpriv_missing as f64 / unpriv_total as f64,
    })
}

/// Positive-label rate separately for complete and incomplete records —
/// the §5.3 statistic ("24% probability among the complete records, but only
/// 14% ... in the records with missing values").
#[derive(Debug, Clone, PartialEq)]
pub struct CompletenessLabelRates {
    /// Base rate among rows without missing values.
    pub complete_rate: f64,
    /// Base rate among rows with at least one missing value.
    pub incomplete_rate: f64,
    /// Number of complete rows.
    pub complete_count: usize,
    /// Number of incomplete rows.
    pub incomplete_count: usize,
}

/// Computes [`CompletenessLabelRates`] for a dataset.
#[must_use]
pub fn completeness_label_rates(dataset: &BinaryLabelDataset) -> CompletenessLabelRates {
    let labels = dataset.labels();
    let mut cp = (0.0, 0usize);
    let mut ip = (0.0, 0usize);
    for (i, &label) in labels.iter().enumerate() {
        if dataset.frame().row_has_missing(i) {
            ip = (ip.0 + label, ip.1 + 1);
        } else {
            cp = (cp.0 + label, cp.1 + 1);
        }
    }
    CompletenessLabelRates {
        complete_rate: if cp.1 == 0 {
            f64::NAN
        } else {
            cp.0 / cp.1 as f64
        },
        incomplete_rate: if ip.1 == 0 {
            f64::NAN
        } else {
            ip.0 / ip.1 as f64
        },
        complete_count: cp.1,
        incomplete_count: ip.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnKind;
    use crate::schema::{ProtectedAttribute, Schema};

    #[test]
    fn numeric_summary_basic() {
        let col = Column::from_optional_f64([Some(1.0), Some(2.0), Some(3.0), None]);
        let s = numeric_summary(&col).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.missing, 1);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn numeric_summary_rejects_all_missing() {
        let col = Column::from_optional_f64([None, None]);
        assert!(numeric_summary(&col).is_err());
    }

    #[test]
    fn value_counts_with_missing() {
        let col = Column::from_optional_strs([Some("a"), Some("b"), Some("a"), None]);
        let (counts, missing) = value_counts(&col).unwrap();
        assert_eq!(counts.get("a"), Some(&2));
        assert_eq!(counts.get("b"), Some(&1));
        assert_eq!(missing, 1);
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let a = Column::from_f64([1.0, 2.0, 3.0, 4.0]);
        let b = Column::from_f64([2.0, 4.0, 6.0, 8.0]);
        assert!((pearson_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = Column::from_f64([4.0, 3.0, 2.0, 1.0]);
        assert!((pearson_correlation(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_skips_missing_pairs() {
        let a = Column::from_optional_f64([Some(1.0), None, Some(3.0), Some(4.0)]);
        let b = Column::from_optional_f64([Some(1.0), Some(2.0), Some(3.0), Some(4.0)]);
        let r = pearson_correlation(&a, &b).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_zero_variance_is_error() {
        let a = Column::from_f64([1.0, 1.0, 1.0]);
        let b = Column::from_f64([1.0, 2.0, 3.0]);
        assert!(pearson_correlation(&a, &b).is_err());
    }

    fn grouped_dataset() -> BinaryLabelDataset {
        // Privileged group "w": 4 rows, 1 missing country.
        // Unprivileged group "n": 2 rows, 2 missing country.
        let frame = DataFrame::new()
            .with_column(
                "country",
                Column::from_optional_strs([Some("US"), Some("US"), Some("US"), None, None, None]),
            )
            .unwrap()
            .with_column("race", Column::from_strs(["w", "w", "w", "w", "n", "n"]))
            .unwrap()
            .with_column("y", Column::from_strs(["hi", "lo", "lo", "lo", "hi", "lo"]))
            .unwrap();
        let schema = Schema::new()
            .categorical_feature("country")
            .metadata("race", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("race", &["w"]),
            "hi",
        )
        .unwrap()
    }

    #[test]
    fn group_missingness_disparity() {
        let ds = grouped_dataset();
        let gm = group_missingness(&ds, "country").unwrap();
        assert!((gm.privileged_rate - 0.25).abs() < 1e-12);
        assert!((gm.unprivileged_rate - 1.0).abs() < 1e-12);
        assert!((gm.disparity_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn completeness_label_rates_split() {
        let ds = grouped_dataset();
        let r = completeness_label_rates(&ds);
        assert_eq!(r.complete_count, 3);
        assert_eq!(r.incomplete_count, 3);
        assert!((r.complete_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.incomplete_rate - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_rates_per_column() {
        let ds = grouped_dataset();
        let rates = missing_rates(ds.frame());
        let country = rates.iter().find(|(n, _)| n == "country").unwrap();
        assert!((country.1 - 0.5).abs() < 1e-12);
    }
}

/// A two-way frequency table (cross-tabulation) of two categorical columns.
///
/// Rows/columns are sorted category names; `counts[i][j]` is the number of
/// records with `row_categories[i]` and `col_categories[j]`. Records with a
/// missing value in either column are counted in `missing_pairs`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossTab {
    /// Sorted distinct categories of the first column.
    pub row_categories: Vec<String>,
    /// Sorted distinct categories of the second column.
    pub col_categories: Vec<String>,
    /// Joint counts, indexed `[row][col]`.
    pub counts: Vec<Vec<usize>>,
    /// Records excluded because either value was missing.
    pub missing_pairs: usize,
}

impl CrossTab {
    /// Row-marginal totals.
    #[must_use]
    pub fn row_totals(&self) -> Vec<usize> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column-marginal totals.
    #[must_use]
    pub fn col_totals(&self) -> Vec<usize> {
        (0..self.col_categories.len())
            .map(|j| self.counts.iter().map(|r| r[j]).sum())
            .collect()
    }

    /// Total counted records (excludes missing pairs).
    #[must_use]
    pub fn total(&self) -> usize {
        self.row_totals().iter().sum()
    }

    /// Cramér's V association statistic in `[0, 1]` (`NaN` for degenerate
    /// tables).
    #[must_use]
    pub fn cramers_v(&self) -> f64 {
        let n = self.total() as f64;
        let rows = self.row_categories.len();
        let cols = self.col_categories.len();
        // audit: allow(float-eq, reason = "n is an integral observation count; 0.0 is the exact empty-table case")
        if n == 0.0 || rows < 2 || cols < 2 {
            return f64::NAN;
        }
        let row_totals = self.row_totals();
        let col_totals = self.col_totals();
        let mut chi2 = 0.0;
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &observed) in row.iter().enumerate() {
                let expected = row_totals[i] as f64 * col_totals[j] as f64 / n;
                if expected > 0.0 {
                    chi2 += (observed as f64 - expected).powi(2) / expected;
                }
            }
        }
        let k = (rows - 1).min(cols - 1) as f64;
        (chi2 / (n * k)).sqrt()
    }
}

/// Computes the cross-tabulation of two categorical columns of a frame.
pub fn crosstab(frame: &DataFrame, a: &str, b: &str) -> Result<CrossTab> {
    let col_a = frame.column(a)?.as_categorical()?;
    let col_b = frame.column(b)?.as_categorical()?;

    let mut row_categories: Vec<String> = col_a.categories().to_vec();
    row_categories.sort();
    let mut col_categories: Vec<String> = col_b.categories().to_vec();
    col_categories.sort();
    let row_ix: BTreeMap<&str, usize> = row_categories
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();
    let col_ix: BTreeMap<&str, usize> = col_categories
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();

    let mut counts = vec![vec![0usize; col_categories.len()]; row_categories.len()];
    let mut missing_pairs = 0usize;
    for i in 0..frame.n_rows() {
        match (col_a.codes()[i], col_b.codes()[i]) {
            (Some(ca), Some(cb)) => {
                // audit: allow(expect, reason = "codes come from the column's own dictionary, so reverse lookup cannot fail")
                let ra = row_ix[col_a.category_of(ca).expect("valid code")];
                // audit: allow(expect, reason = "codes come from the column's own dictionary, so reverse lookup cannot fail")
                let cb = col_ix[col_b.category_of(cb).expect("valid code")];
                counts[ra][cb] += 1;
            }
            _ => missing_pairs += 1,
        }
    }
    Ok(CrossTab {
        row_categories,
        col_categories,
        counts,
        missing_pairs,
    })
}

#[cfg(test)]
mod crosstab_tests {
    use super::*;
    use crate::column::Column;

    fn frame() -> DataFrame {
        DataFrame::new()
            .with_column(
                "sex",
                Column::from_optional_strs([
                    Some("m"),
                    Some("m"),
                    Some("f"),
                    Some("f"),
                    Some("m"),
                    None,
                ]),
            )
            .unwrap()
            .with_column(
                "outcome",
                Column::from_optional_strs([
                    Some("hi"),
                    Some("lo"),
                    Some("lo"),
                    Some("lo"),
                    Some("hi"),
                    Some("hi"),
                ]),
            )
            .unwrap()
    }

    #[test]
    fn joint_counts_and_marginals() {
        let ct = crosstab(&frame(), "sex", "outcome").unwrap();
        assert_eq!(ct.row_categories, vec!["f", "m"]);
        assert_eq!(ct.col_categories, vec!["hi", "lo"]);
        assert_eq!(ct.counts, vec![vec![0, 2], vec![2, 1]]);
        assert_eq!(ct.row_totals(), vec![2, 3]);
        assert_eq!(ct.col_totals(), vec![2, 3]);
        assert_eq!(ct.total(), 5);
        assert_eq!(ct.missing_pairs, 1);
    }

    #[test]
    fn cramers_v_detects_association() {
        let ct = crosstab(&frame(), "sex", "outcome").unwrap();
        let v = ct.cramers_v();
        assert!(v > 0.5, "V = {v}"); // sex and outcome are strongly related here
    }

    #[test]
    fn cramers_v_zero_for_independence() {
        let df = DataFrame::new()
            .with_column(
                "a",
                Column::from_strs(["x", "x", "y", "y", "x", "x", "y", "y"]),
            )
            .unwrap()
            .with_column(
                "b",
                Column::from_strs(["p", "q", "p", "q", "p", "q", "p", "q"]),
            )
            .unwrap();
        let ct = crosstab(&df, "a", "b").unwrap();
        assert!(ct.cramers_v().abs() < 1e-12);
    }

    #[test]
    fn numeric_column_rejected() {
        let df = DataFrame::new()
            .with_column("n", Column::from_f64([1.0]))
            .unwrap()
            .with_column("c", Column::from_strs(["x"]))
            .unwrap();
        assert!(crosstab(&df, "n", "c").is_err());
    }
}
