//! Deterministic dataset profiles and stage-to-stage drift measures.
//!
//! A [`DatasetProfile`] is a compact, byte-stable sketch of one dataset
//! snapshot: per-column missingness, numeric moments with fixed-rank
//! quantile summaries, categorical cardinality with top-k counts, and the
//! protected-group × label contingency table. Profiles are computed from
//! exact passes over sorted copies — cheap at FairPrep's dataset scale —
//! and contain no timing, pointer, or thread-count artifacts, so the same
//! dataset always profiles to the same bytes (the same invariant
//! `RunManifest::canonical` maintains for the control-flow trace).
//!
//! [`dataset_drift`] diffs two snapshots of the *same logical data* at
//! adjacent lifecycle stages: per-column missingness deltas, a population
//! stability index (PSI) over the baseline's decile bins, and shifts of
//! the group balance and per-group base rates. Threshold-crossing drifts
//! (see the `*_WARN_THRESHOLD` constants) are rendered as structured
//! warnings for the run manifest.

use std::collections::BTreeMap;

use crate::column::Column;
use crate::dataset::BinaryLabelDataset;
use crate::error::{Error, Result};
use crate::frame::DataFrame;
use crate::schema::{ProtectedAttribute, Schema};

/// PSI at or above this value is flagged as a drift warning. 0.2 is the
/// conventional "significant population shift" cut-off.
pub const PSI_WARN_THRESHOLD: f64 = 0.2;

/// Absolute base-rate change (overall or per group) that triggers a warning.
pub const BASE_RATE_WARN_THRESHOLD: f64 = 0.05;

/// Absolute change of the privileged-group share that triggers a warning.
pub const GROUP_BALANCE_WARN_THRESHOLD: f64 = 0.05;

/// Absolute *increase* of a column's missingness rate that triggers a
/// warning (decreases are expected — imputers exist to cause them).
pub const MISSINGNESS_WARN_THRESHOLD: f64 = 0.05;

/// Number of quantile points in a numeric profile (0th, 10th, …, 100th
/// percentile), and therefore `QUANTILE_POINTS - 1` PSI deciles.
pub const QUANTILE_POINTS: usize = 11;

/// Number of most-frequent categories retained per categorical column.
pub const TOP_K: usize = 5;

/// The profile of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnProfile {
    /// Moments and quantiles of a numeric column.
    Numeric {
        /// Non-missing observations.
        count: u64,
        /// Missing observations.
        missing: u64,
        /// Arithmetic mean of the non-missing values (`NaN` when empty).
        mean: f64,
        /// Population standard deviation (`NaN` when empty).
        std_dev: f64,
        /// Minimum (`NaN` when empty).
        min: f64,
        /// Maximum (`NaN` when empty).
        max: f64,
        /// [`QUANTILE_POINTS`] evenly spaced quantiles (0th..100th
        /// percentile) over a sorted copy; empty when no values observed.
        quantiles: Vec<f64>,
    },
    /// Cardinality and top-k counts of a categorical column.
    Categorical {
        /// Non-missing observations.
        count: u64,
        /// Missing observations.
        missing: u64,
        /// Distinct observed categories.
        cardinality: u64,
        /// Up to [`TOP_K`] most frequent categories, ties broken by name.
        top: Vec<(String, u64)>,
    },
}

impl ColumnProfile {
    /// Missing observations of the column.
    #[must_use]
    pub fn missing(&self) -> u64 {
        match self {
            ColumnProfile::Numeric { missing, .. } | ColumnProfile::Categorical { missing, .. } => {
                *missing
            }
        }
    }

    /// Non-missing observations of the column.
    #[must_use]
    pub fn count(&self) -> u64 {
        match self {
            ColumnProfile::Numeric { count, .. } | ColumnProfile::Categorical { count, .. } => {
                *count
            }
        }
    }

    /// Fraction of observations that are missing (0 for an empty column).
    #[must_use]
    pub fn missing_rate(&self) -> f64 {
        let total = self.count() + self.missing();
        if total == 0 {
            0.0
        } else {
            self.missing() as f64 / total as f64
        }
    }
}

/// Protected-group × label contingency table of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLabelTable {
    /// Privileged rows with the favorable label.
    pub privileged_favorable: u64,
    /// Privileged rows with the unfavorable label.
    pub privileged_unfavorable: u64,
    /// Unprivileged rows with the favorable label.
    pub unprivileged_favorable: u64,
    /// Unprivileged rows with the unfavorable label.
    pub unprivileged_unfavorable: u64,
}

impl GroupLabelTable {
    /// Total rows in the table.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.privileged_favorable
            + self.privileged_unfavorable
            + self.unprivileged_favorable
            + self.unprivileged_unfavorable
    }

    /// Fraction of rows in the privileged group (`NaN` when empty).
    #[must_use]
    pub fn privileged_share(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            f64::NAN
        } else {
            (self.privileged_favorable + self.privileged_unfavorable) as f64 / n as f64
        }
    }

    /// Overall favorable-label rate (`NaN` when empty).
    #[must_use]
    pub fn base_rate(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            f64::NAN
        } else {
            (self.privileged_favorable + self.unprivileged_favorable) as f64 / n as f64
        }
    }

    /// Favorable rate within the privileged group (`NaN` when empty).
    #[must_use]
    pub fn privileged_base_rate(&self) -> f64 {
        let n = self.privileged_favorable + self.privileged_unfavorable;
        if n == 0 {
            f64::NAN
        } else {
            self.privileged_favorable as f64 / n as f64
        }
    }

    /// Favorable rate within the unprivileged group (`NaN` when empty).
    #[must_use]
    pub fn unprivileged_base_rate(&self) -> f64 {
        let n = self.unprivileged_favorable + self.unprivileged_unfavorable;
        if n == 0 {
            f64::NAN
        } else {
            self.unprivileged_favorable as f64 / n as f64
        }
    }
}

/// The deterministic profile of one dataset snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Number of rows.
    pub rows: u64,
    /// Per-column profiles, in frame column order.
    pub columns: Vec<(String, ColumnProfile)>,
    /// Protected-group × label contingency table.
    pub group_label: GroupLabelTable,
}

impl DatasetProfile {
    /// Profiles every column of `dataset` plus its group/label table.
    #[must_use]
    pub fn compute(dataset: &BinaryLabelDataset) -> DatasetProfile {
        let frame = dataset.frame();
        let columns = frame
            .column_names()
            .iter()
            .map(|name| {
                // audit: allow(expect, reason = "iterating the frame's own column names, so every lookup succeeds")
                let col = frame.column(name).expect("column exists");
                (name.clone(), profile_column(col))
            })
            .collect();

        let mut table = GroupLabelTable {
            privileged_favorable: 0,
            privileged_unfavorable: 0,
            unprivileged_favorable: 0,
            unprivileged_unfavorable: 0,
        };
        for (&label, &privileged) in dataset.labels().iter().zip(dataset.privileged_mask()) {
            let favorable = label >= 0.5;
            match (privileged, favorable) {
                (true, true) => table.privileged_favorable += 1,
                (true, false) => table.privileged_unfavorable += 1,
                (false, true) => table.unprivileged_favorable += 1,
                (false, false) => table.unprivileged_unfavorable += 1,
            }
        }

        DatasetProfile {
            rows: dataset.n_rows() as u64,
            columns,
            group_label: table,
        }
    }

    /// The profile of the named column, if present.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }
}

fn profile_column(column: &Column) -> ColumnProfile {
    match column {
        Column::Numeric(values) => {
            let missing = values.iter().filter(|v| v.is_none()).count() as u64;
            let xs: Vec<f64> = values.iter().flatten().copied().collect();
            numeric_profile_from_values(xs, missing)
        }
        Column::Categorical(cat) => {
            let mut missing = 0u64;
            let mut counts = vec![0u64; cat.categories().len()];
            for code in cat.codes() {
                match code {
                    Some(c) => counts[*c as usize] += 1,
                    None => missing += 1,
                }
            }
            let observed: Vec<(String, u64)> = counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(code, &c)| (cat.categories()[code].clone(), c))
                .collect();
            categorical_profile_from_counts(observed, missing)
        }
    }
}

/// Finishes a numeric profile from the row-ordered non-missing values.
///
/// Shared by [`profile_column`] and [`ProfileSketch::finish`]: both paths
/// run the *same* sort and the same reductions over the sorted values, so
/// a profile computed from streamed chunks is bit-identical to one
/// computed from the materialized column.
fn numeric_profile_from_values(mut xs: Vec<f64>, missing: u64) -> ColumnProfile {
    xs.sort_by(f64::total_cmp);
    let count = xs.len() as u64;
    if xs.is_empty() {
        return ColumnProfile::Numeric {
            count,
            missing,
            mean: f64::NAN,
            std_dev: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            quantiles: Vec::new(),
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let quantiles = (0..QUANTILE_POINTS)
        .map(|i| quantile_of_sorted(&xs, i as f64 / (QUANTILE_POINTS - 1) as f64))
        .collect();
    ColumnProfile::Numeric {
        count,
        missing,
        mean,
        std_dev: var.sqrt(),
        // audit: allow(index-literal, reason = "guarded by the is_empty early return above")
        min: xs[0],
        max: *xs.last().unwrap_or(&f64::NAN),
        quantiles,
    }
}

/// Finishes a categorical profile from observed `(category, count > 0)`
/// pairs. The input order does not matter: the `(count desc, name asc)`
/// comparator is a total order over distinct category names, so any
/// permutation of the pairs sorts to the same `top` list.
fn categorical_profile_from_counts(
    mut observed: Vec<(String, u64)>,
    missing: u64,
) -> ColumnProfile {
    let count: u64 = observed.iter().map(|(_, c)| c).sum();
    let cardinality = observed.len() as u64;
    observed.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    observed.truncate(TOP_K);
    ColumnProfile::Categorical {
        count,
        missing,
        cardinality,
        top: observed,
    }
}

/// Per-column accumulator of a [`ProfileSketch`].
#[derive(Debug, Clone)]
enum ColumnSketch {
    /// Retains the non-missing values in row order. This is deliberately
    /// `O(rows)` memory: the profile's mean/std/quantiles are defined as
    /// exact reductions over the *sorted* values, and no bounded-memory
    /// sketch reproduces them bit-for-bit. Streaming ingest with bounded
    /// memory is still available through sinks that don't profile (e.g.
    /// [`ChunkStats`](crate::chunked::ChunkStats)).
    Numeric { values: Vec<f64>, missing: u64 },
    /// Category counts — genuinely bounded: `O(cardinality)`.
    Categorical {
        counts: BTreeMap<String, u64>,
        missing: u64,
    },
}

/// One-pass streaming profiler: feed it [`DataFrame`] chunks (e.g. as the
/// sink of [`read_csv_chunked`](crate::chunked::read_csv_chunked)) and
/// [`finish`](ProfileSketch::finish) into a [`DatasetProfile`] that is
/// bit-identical to `DatasetProfile::compute` over the materialized
/// dataset — without ever constructing that dataset.
///
/// The sketch replicates the label binarization and privileged-group rules
/// of [`BinaryLabelDataset::new`], including their error cases (missing
/// label/protected cells, non-binary numeric labels, kind mismatches). It
/// does *not* enforce the both-groups-present invariant: a sketch is a
/// description of the stream, not a dataset constructor.
#[derive(Debug, Clone)]
pub struct ProfileSketch {
    label_name: String,
    favorable_label: String,
    protected: ProtectedAttribute,
    rows: u64,
    columns: Vec<(String, ColumnSketch)>,
    started: bool,
    table: GroupLabelTable,
}

impl ProfileSketch {
    /// Creates a sketch for datasets described by `schema` and `protected`,
    /// mirroring the [`BinaryLabelDataset::new`] signature.
    pub fn new(
        schema: &Schema,
        protected: &ProtectedAttribute,
        favorable_label: &str,
    ) -> Result<ProfileSketch> {
        schema.validate()?;
        Ok(ProfileSketch {
            label_name: schema.label_name()?.to_string(),
            favorable_label: favorable_label.to_string(),
            protected: protected.clone(),
            rows: 0,
            columns: Vec::new(),
            started: false,
            table: GroupLabelTable {
                privileged_favorable: 0,
                privileged_unfavorable: 0,
                unprivileged_favorable: 0,
                unprivileged_unfavorable: 0,
            },
        })
    }

    /// Folds one chunk into the sketch. Chunks must arrive in row order
    /// and share the column layout of the first chunk.
    pub fn update(&mut self, chunk: &DataFrame) -> Result<()> {
        if !self.started {
            self.columns = chunk
                .column_names()
                .iter()
                .map(|name| -> Result<(String, ColumnSketch)> {
                    let sketch = match chunk.column(name)? {
                        Column::Numeric(_) => ColumnSketch::Numeric {
                            values: Vec::new(),
                            missing: 0,
                        },
                        Column::Categorical(_) => ColumnSketch::Categorical {
                            counts: BTreeMap::new(),
                            missing: 0,
                        },
                    };
                    Ok((name.clone(), sketch))
                })
                .collect::<Result<_>>()?;
            self.started = true;
        }
        for (name, sketch) in &mut self.columns {
            let col = chunk.column(name)?;
            match (sketch, col) {
                (ColumnSketch::Numeric { values, missing }, Column::Numeric(xs)) => {
                    for v in xs {
                        match v {
                            Some(x) => values.push(*x),
                            None => *missing += 1,
                        }
                    }
                }
                (ColumnSketch::Categorical { counts, missing }, Column::Categorical(cat)) => {
                    for code in cat.codes() {
                        match code {
                            Some(c) => {
                                let category =
                                    cat.category_of(*c).ok_or_else(|| Error::InvalidParameter {
                                        name: "code",
                                        message: format!("dangling categorical code {c}"),
                                    })?;
                                *counts.entry(category.to_string()).or_insert(0) += 1;
                            }
                            None => *missing += 1,
                        }
                    }
                }
                _ => {
                    return Err(Error::ColumnTypeMismatch {
                        column: name.clone(),
                        expected: "kind matching the first chunk",
                    })
                }
            }
        }
        self.update_group_label(chunk)?;
        self.rows += chunk.n_rows() as u64;
        Ok(())
    }

    /// Accumulates the protected-group × label table, replicating the
    /// binarization rules of [`BinaryLabelDataset::new`] cell for cell.
    fn update_group_label(&mut self, chunk: &DataFrame) -> Result<()> {
        let label_col = chunk.column(&self.label_name)?;
        let protected_col = chunk.column(&self.protected.name)?;
        for i in 0..chunk.n_rows() {
            #[allow(clippy::cast_possible_truncation)]
            let row = self.rows as usize + i;
            let favorable =
                crate::dataset::binarize_label(label_col.get(i), &self.favorable_label, row)?
                    >= 0.5;
            let privileged =
                crate::dataset::row_privileged(&self.protected, protected_col.get(i), row)?;
            match (privileged, favorable) {
                (true, true) => self.table.privileged_favorable += 1,
                (true, false) => self.table.privileged_unfavorable += 1,
                (false, true) => self.table.unprivileged_favorable += 1,
                (false, false) => self.table.unprivileged_unfavorable += 1,
            }
        }
        Ok(())
    }

    /// Rows folded in so far.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Finishes the sketch into a [`DatasetProfile`].
    #[must_use]
    pub fn finish(self) -> DatasetProfile {
        let columns = self
            .columns
            .into_iter()
            .map(|(name, sketch)| {
                let profile = match sketch {
                    ColumnSketch::Numeric { values, missing } => {
                        numeric_profile_from_values(values, missing)
                    }
                    ColumnSketch::Categorical { counts, missing } => {
                        categorical_profile_from_counts(counts.into_iter().collect(), missing)
                    }
                };
                (name, profile)
            })
            .collect();
        DatasetProfile {
            rows: self.rows,
            columns,
            group_label: self.table,
        }
    }
}

impl crate::chunked::ChunkSink for ProfileSketch {
    fn chunk(&mut self, chunk: DataFrame) -> Result<()> {
        self.update(&chunk)
    }
}

/// Linear-interpolation quantile of an already sorted, non-empty slice.
// audit: hot-path
fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Drift of one column between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDrift {
    /// Column name.
    pub name: String,
    /// `current missing rate − baseline missing rate`.
    pub missing_delta: f64,
    /// Population stability index of the value distribution: decile bins
    /// from the baseline quantiles for numeric columns, category counts for
    /// categorical columns. 0 when either side is empty or the baseline has
    /// fewer than two distinct bins.
    pub psi: f64,
}

/// Drift between two adjacent dataset snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetDrift {
    /// `current rows − baseline rows`.
    pub row_delta: i64,
    /// Change of the privileged-group share.
    pub privileged_share_delta: f64,
    /// Change of the overall base rate.
    pub base_rate_delta: f64,
    /// Change of the privileged base rate.
    pub privileged_base_rate_delta: f64,
    /// Change of the unprivileged base rate.
    pub unprivileged_base_rate_delta: f64,
    /// Per-column drifts, for columns present in both snapshots, in
    /// baseline column order.
    pub columns: Vec<ColumnDrift>,
}

impl DatasetDrift {
    /// The column with the largest PSI, if any column drifted at all.
    #[must_use]
    pub fn max_psi(&self) -> Option<&ColumnDrift> {
        self.columns
            .iter()
            .max_by(|a, b| a.psi.total_cmp(&b.psi).then_with(|| b.name.cmp(&a.name)))
    }

    /// Renders the threshold-crossing drifts as structured warning strings
    /// for the run manifest, tagged with the stage transition `from → to`.
    /// `NaN` deltas (empty groups) never warn.
    #[must_use]
    pub fn warnings(&self, from: &str, to: &str) -> Vec<String> {
        let mut out = Vec::new();
        for col in &self.columns {
            if col.psi >= PSI_WARN_THRESHOLD {
                out.push(format!(
                    "drift {from}->{to}: column `{}` PSI {:.3} >= {PSI_WARN_THRESHOLD}",
                    col.name, col.psi
                ));
            }
            if col.missing_delta >= MISSINGNESS_WARN_THRESHOLD {
                out.push(format!(
                    "drift {from}->{to}: column `{}` missingness rose by {:.3}",
                    col.name, col.missing_delta
                ));
            }
        }
        if self.privileged_share_delta.abs() >= GROUP_BALANCE_WARN_THRESHOLD {
            out.push(format!(
                "drift {from}->{to}: privileged-group share shifted by {:+.3}",
                self.privileged_share_delta
            ));
        }
        for (what, delta) in [
            ("overall base rate", self.base_rate_delta),
            ("privileged base rate", self.privileged_base_rate_delta),
            ("unprivileged base rate", self.unprivileged_base_rate_delta),
        ] {
            if delta.abs() >= BASE_RATE_WARN_THRESHOLD {
                out.push(format!("drift {from}->{to}: {what} shifted by {delta:+.3}"));
            }
        }
        out
    }
}

/// Diffs two snapshots of the same logical data at adjacent lifecycle
/// stages. Both the datasets and their precomputed profiles are taken so
/// the PSI can bin the raw values into the *baseline's* decile edges.
#[must_use]
pub fn dataset_drift(
    baseline: &BinaryLabelDataset,
    baseline_profile: &DatasetProfile,
    current: &BinaryLabelDataset,
    current_profile: &DatasetProfile,
) -> DatasetDrift {
    let mut columns = Vec::new();
    for (name, base_col) in &baseline_profile.columns {
        let Some(cur_col) = current_profile.column(name) else {
            continue;
        };
        let psi = column_psi(name, base_col, baseline, current);
        columns.push(ColumnDrift {
            name: name.clone(),
            missing_delta: cur_col.missing_rate() - base_col.missing_rate(),
            psi,
        });
    }
    let base = &baseline_profile.group_label;
    let cur = &current_profile.group_label;
    DatasetDrift {
        row_delta: current_profile.rows as i64 - baseline_profile.rows as i64,
        privileged_share_delta: delta(base.privileged_share(), cur.privileged_share()),
        base_rate_delta: delta(base.base_rate(), cur.base_rate()),
        privileged_base_rate_delta: delta(base.privileged_base_rate(), cur.privileged_base_rate()),
        unprivileged_base_rate_delta: delta(
            base.unprivileged_base_rate(),
            cur.unprivileged_base_rate(),
        ),
        columns,
    }
}

/// `cur − base`, except `NaN` sides yield `NaN` (never a spurious drift).
fn delta(base: f64, cur: f64) -> f64 {
    cur - base
}

fn column_psi(
    name: &str,
    base_profile: &ColumnProfile,
    baseline: &BinaryLabelDataset,
    current: &BinaryLabelDataset,
) -> f64 {
    let (Ok(base_col), Ok(cur_col)) = (baseline.frame().column(name), current.frame().column(name))
    else {
        return 0.0;
    };
    match (base_profile, base_col, cur_col) {
        (
            ColumnProfile::Numeric { quantiles, .. },
            Column::Numeric(base_vals),
            Column::Numeric(cur_vals),
        ) => {
            // Interior decile edges from the baseline quantiles, deduped by
            // bit pattern so a constant column yields a single bin (PSI 0).
            let mut edges: Vec<f64> = quantiles
                .get(1..QUANTILE_POINTS.saturating_sub(1))
                .unwrap_or(&[])
                .to_vec();
            edges.dedup_by(|a, b| a.to_bits() == b.to_bits());
            if edges.is_empty() {
                return 0.0;
            }
            let bins = edges.len() + 1;
            let bin_of = |x: f64| edges.iter().filter(|e| x > **e).count();
            let mut base_counts = vec![0u64; bins];
            for x in base_vals.iter().flatten() {
                base_counts[bin_of(*x)] += 1;
            }
            let mut cur_counts = vec![0u64; bins];
            for x in cur_vals.iter().flatten() {
                cur_counts[bin_of(*x)] += 1;
            }
            psi_from_counts(&base_counts, &cur_counts)
        }
        (
            ColumnProfile::Categorical { .. },
            Column::Categorical(base_cat),
            Column::Categorical(cur_cat),
        ) => {
            // Union of observed categories from both sides, sorted by name
            // for a deterministic bin order (PSI is order-invariant, but the
            // intermediate vectors should still be stable).
            let mut names: Vec<&str> = base_cat
                .categories()
                .iter()
                .chain(cur_cat.categories())
                .map(String::as_str)
                .collect();
            names.sort_unstable();
            names.dedup();
            let count_into = |cat: &crate::column::CategoricalData| -> Vec<u64> {
                let mut counts = vec![0u64; names.len()];
                for code in cat.codes().iter().flatten() {
                    if let Some(category) = cat.category_of(*code) {
                        if let Ok(ix) = names.binary_search(&category) {
                            counts[ix] += 1;
                        }
                    }
                }
                counts
            };
            psi_from_counts(&count_into(base_cat), &count_into(cur_cat))
        }
        _ => 0.0,
    }
}

/// PSI between two count vectors over the same bins, with Laplace
/// smoothing `(n_i + 0.5) / (N + 0.5 k)` so empty bins stay finite.
/// Returns 0 when either side has no observations or there are fewer than
/// two bins. Public so online consumers (e.g. a scoring service binning
/// live traffic against a sealed training profile) share the exact
/// smoothing the lifecycle profiler uses.
#[must_use]
pub fn psi_from_counts(base: &[u64], cur: &[u64]) -> f64 {
    psi_against_fractions(&smoothed_fractions(base), cur)
}

/// The Laplace-smoothed bin fractions `(n_i + 0.5) / (N + 0.5 k)` of a
/// count vector, or an empty vector when there are fewer than two bins
/// or no observations (the degenerate cases where PSI is defined as 0).
///
/// Baselines are fixed at seal time, so a consumer scoring live traffic
/// against a sealed training profile computes this **once per pipeline
/// at registry load** and hands the cached fractions to
/// [`psi_against_fractions`] on every scrape, instead of re-smoothing
/// the training histogram each time.
#[must_use]
pub fn smoothed_fractions(counts: &[u64]) -> Vec<f64> {
    let k = counts.len();
    if k < 2 {
        return Vec::new();
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    counts
        .iter()
        .map(|&n| (n as f64 + 0.5) / (total as f64 + 0.5 * k as f64))
        .collect()
}

/// PSI of a live count vector against pre-smoothed baseline fractions
/// (from [`smoothed_fractions`]). Returns 0 when the baseline is empty
/// or degenerate, the bin counts disagree, or the live side has no
/// observations. `psi_from_counts(base, cur)` is exactly
/// `psi_against_fractions(&smoothed_fractions(base), cur)` — same
/// smoothing, same operation order, bit-identical results.
#[must_use]
pub fn psi_against_fractions(base_fracs: &[f64], cur: &[u64]) -> f64 {
    let k = base_fracs.len();
    if k < 2 || cur.len() != k {
        return 0.0;
    }
    let cur_total: u64 = cur.iter().sum();
    if cur_total == 0 {
        return 0.0;
    }
    base_fracs
        .iter()
        .zip(cur)
        .map(|(&p, &c)| {
            let q = (c as f64 + 0.5) / (cur_total as f64 + 0.5 * k as f64);
            (q - p) * (q / p).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnKind;
    use crate::frame::DataFrame;
    use crate::schema::{ProtectedAttribute, Schema};

    fn dataset(scores: &[Option<f64>], groups: &[&str], labels: &[&str]) -> BinaryLabelDataset {
        let frame = DataFrame::new()
            .with_column("score", Column::from_optional_f64(scores.iter().copied()))
            .unwrap()
            .with_column("group", Column::from_strs(groups.iter().copied()))
            .unwrap()
            .with_column("y", Column::from_strs(labels.iter().copied()))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("score")
            .metadata("group", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("group", &["a"]),
            "good",
        )
        .unwrap()
    }

    #[test]
    fn numeric_profile_moments_and_quantiles() {
        let ds = dataset(
            &[Some(1.0), Some(2.0), Some(3.0), None],
            &["a", "a", "b", "b"],
            &["good", "bad", "good", "bad"],
        );
        let profile = DatasetProfile::compute(&ds);
        assert_eq!(profile.rows, 4);
        let ColumnProfile::Numeric {
            count,
            missing,
            mean,
            min,
            max,
            quantiles,
            ..
        } = profile.column("score").unwrap()
        else {
            panic!("score should profile as numeric");
        };
        assert_eq!((*count, *missing), (3, 1));
        assert!((mean - 2.0).abs() < 1e-12);
        assert_eq!((*min, *max), (1.0, 3.0));
        assert_eq!(quantiles.len(), QUANTILE_POINTS);
        assert_eq!(quantiles.first(), Some(&1.0));
        assert_eq!(quantiles.last(), Some(&3.0));
        // Median of [1, 2, 3].
        assert!((quantiles[QUANTILE_POINTS / 2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_profile_top_k_is_deterministic() {
        let ds = dataset(
            &[Some(1.0); 6],
            &["a", "b", "a", "b", "a", "b"],
            &["good", "bad", "good", "bad", "good", "bad"],
        );
        let profile = DatasetProfile::compute(&ds);
        let ColumnProfile::Categorical {
            cardinality, top, ..
        } = profile.column("group").unwrap()
        else {
            panic!("group should profile as categorical");
        };
        assert_eq!(*cardinality, 2);
        // Equal counts: ties break by name.
        assert_eq!(top, &[("a".to_string(), 3), ("b".to_string(), 3)]);
    }

    #[test]
    fn group_label_table_counts() {
        let ds = dataset(
            &[Some(1.0); 4],
            &["a", "a", "b", "b"],
            &["good", "bad", "good", "good"],
        );
        let t = DatasetProfile::compute(&ds).group_label;
        assert_eq!(t.privileged_favorable, 1);
        assert_eq!(t.privileged_unfavorable, 1);
        assert_eq!(t.unprivileged_favorable, 2);
        assert_eq!(t.unprivileged_unfavorable, 0);
        assert!((t.privileged_share() - 0.5).abs() < 1e-12);
        assert!((t.base_rate() - 0.75).abs() < 1e-12);
        assert!((t.privileged_base_rate() - 0.5).abs() < 1e-12);
        assert!((t.unprivileged_base_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_snapshots_have_zero_drift() {
        let ds = dataset(
            &[Some(1.0), Some(2.0), Some(3.0), Some(4.0)],
            &["a", "a", "b", "b"],
            &["good", "bad", "good", "bad"],
        );
        let p = DatasetProfile::compute(&ds);
        let drift = dataset_drift(&ds, &p, &ds, &p);
        assert_eq!(drift.row_delta, 0);
        assert!(drift.columns.iter().all(|c| c.psi.abs() < 1e-12));
        assert!(drift.columns.iter().all(|c| c.missing_delta.abs() < 1e-12));
        assert!(drift.warnings("a", "b").is_empty());
    }

    #[test]
    fn shifted_distribution_has_positive_psi() {
        let base_scores: Vec<Option<f64>> = (0..40).map(|i| Some(f64::from(i))).collect();
        let cur_scores: Vec<Option<f64>> = (0..40).map(|i| Some(f64::from(i) + 30.0)).collect();
        let groups: Vec<&str> = (0..40)
            .map(|i| if i % 2 == 0 { "a" } else { "b" })
            .collect();
        let labels: Vec<&str> = (0..40)
            .map(|i| if i % 3 == 0 { "good" } else { "bad" })
            .collect();
        let base = dataset(&base_scores, &groups, &labels);
        let cur = dataset(&cur_scores, &groups, &labels);
        let drift = dataset_drift(
            &base,
            &DatasetProfile::compute(&base),
            &cur,
            &DatasetProfile::compute(&cur),
        );
        let score = drift.columns.iter().find(|c| c.name == "score").unwrap();
        assert!(
            score.psi >= PSI_WARN_THRESHOLD,
            "large shift should cross the PSI threshold, got {}",
            score.psi
        );
        let warnings = drift.warnings("raw", "shifted");
        assert!(warnings.iter().any(|w| w.contains("PSI")), "{warnings:?}");
    }

    #[test]
    fn constant_column_has_zero_psi() {
        let n = 20;
        let groups: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let labels: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "good" } else { "bad" })
            .collect();
        let base = dataset(&vec![Some(7.0); n], &groups, &labels);
        let cur = dataset(&vec![Some(7.0); n], &groups, &labels);
        let drift = dataset_drift(
            &base,
            &DatasetProfile::compute(&base),
            &cur,
            &DatasetProfile::compute(&cur),
        );
        let score = drift.columns.iter().find(|c| c.name == "score").unwrap();
        assert_eq!(score.psi, 0.0);
    }

    #[test]
    fn categorical_psi_sees_new_categories() {
        let n = 30;
        let scores: Vec<Option<f64>> = vec![Some(1.0); n];
        let labels: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "good" } else { "bad" })
            .collect();
        let base_groups: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        // Current snapshot: "b" almost vanishes in favor of "a".
        let cur_groups: Vec<&str> = (0..n)
            .map(|i| if i % 10 == 0 { "b" } else { "a" })
            .collect();
        let base = dataset(&scores, &base_groups, &labels);
        let cur = dataset(&scores, &cur_groups, &labels);
        let drift = dataset_drift(
            &base,
            &DatasetProfile::compute(&base),
            &cur,
            &DatasetProfile::compute(&cur),
        );
        let group = drift.columns.iter().find(|c| c.name == "group").unwrap();
        assert!(group.psi > 0.0, "category shift should register, got 0");
    }

    #[test]
    fn base_rate_shift_warns() {
        let n = 20;
        let scores: Vec<Option<f64>> = vec![Some(1.0); n];
        let groups: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let base_labels: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "good" } else { "bad" })
            .collect();
        let cur_labels: Vec<&str> = (0..n)
            .map(|i| if i % 4 == 0 { "good" } else { "bad" })
            .collect();
        let base = dataset(&scores, &groups, &base_labels);
        let cur = dataset(&scores, &groups, &cur_labels);
        let drift = dataset_drift(
            &base,
            &DatasetProfile::compute(&base),
            &cur,
            &DatasetProfile::compute(&cur),
        );
        assert!(drift.base_rate_delta < -BASE_RATE_WARN_THRESHOLD);
        let warnings = drift.warnings("train_split", "train_imputed");
        assert!(
            warnings.iter().any(|w| w.contains("base rate")),
            "{warnings:?}"
        );
    }

    #[test]
    fn missingness_increase_warns_but_decrease_does_not() {
        let n = 20;
        let groups: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let labels: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "good" } else { "bad" })
            .collect();
        let complete: Vec<Option<f64>> = (0..n).map(|i| Some(i as f64)).collect();
        let holey: Vec<Option<f64>> = (0..n)
            .map(|i| if i % 3 == 0 { None } else { Some(i as f64) })
            .collect();
        let full = dataset(&complete, &groups, &labels);
        let sparse = dataset(&holey, &groups, &labels);
        let worse = dataset_drift(
            &full,
            &DatasetProfile::compute(&full),
            &sparse,
            &DatasetProfile::compute(&sparse),
        );
        assert!(worse
            .warnings("a", "b")
            .iter()
            .any(|w| w.contains("missingness")));
        // The imputation direction (missingness decreasing) must stay quiet.
        let better = dataset_drift(
            &sparse,
            &DatasetProfile::compute(&sparse),
            &full,
            &DatasetProfile::compute(&full),
        );
        assert!(!better
            .warnings("a", "b")
            .iter()
            .any(|w| w.contains("missingness")));
    }

    #[test]
    fn cached_baseline_fractions_reproduce_psi_bit_exactly() {
        let base = [40u64, 30, 20, 10, 0];
        let fracs = smoothed_fractions(&base);
        assert_eq!(fracs.len(), base.len());
        for cur in [
            [40u64, 30, 20, 10, 0],
            [0, 0, 0, 0, 100],
            [1, 1, 1, 1, 1],
            [7, 0, 0, 93, 0],
        ] {
            let direct = psi_from_counts(&base, &cur);
            let cached = psi_against_fractions(&fracs, &cur);
            assert_eq!(direct.to_bits(), cached.to_bits(), "{cur:?}");
        }
        // Degenerate shapes stay defined as zero.
        assert!(smoothed_fractions(&[5]).is_empty());
        assert!(smoothed_fractions(&[0, 0]).is_empty());
        assert_eq!(psi_against_fractions(&[], &[1, 2]), 0.0);
        assert_eq!(psi_against_fractions(&fracs, &[1, 2]), 0.0);
        assert_eq!(psi_against_fractions(&fracs, &[0, 0, 0, 0, 0]), 0.0);
    }
}
