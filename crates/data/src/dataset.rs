//! The labelled dataset abstraction — FairPrep's equivalent of AIF360's
//! `BinaryLabelDataset`.
//!
//! A [`BinaryLabelDataset`] bundles a relational view (the [`DataFrame`]),
//! the experiment schema, the protected-group definition, per-instance
//! weights (used by reweighing-style interventions), and the binary label.
//! Labels are exposed in numeric form (`1.0` favorable / `0.0` unfavorable)
//! so that learners and metrics never need to know the original category
//! strings.

use crate::column::{Column, Value};
use crate::error::{Error, Result};
use crate::frame::DataFrame;
use crate::provenance::Provenance;
use crate::schema::{GroupSpec, ProtectedAttribute, Schema};

/// A dataset with a binary label and a protected-group annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryLabelDataset {
    frame: DataFrame,
    schema: Schema,
    protected: ProtectedAttribute,
    favorable_label: String,
    labels: Vec<f64>,
    privileged_mask: Vec<bool>,
    instance_weights: Vec<f64>,
}

impl BinaryLabelDataset {
    /// Assembles a dataset from its parts.
    ///
    /// * `favorable_label` is the category string of the label column that
    ///   denotes the favorable (positive, `1.0`) outcome.
    /// * Rows with a missing label or a missing protected attribute are
    ///   rejected — the lifecycle needs both for every record.
    pub fn new(
        frame: DataFrame,
        schema: Schema,
        protected: ProtectedAttribute,
        favorable_label: &str,
    ) -> Result<Self> {
        schema.validate()?;
        let label_name = schema.label_name()?;
        let label_col = frame.column(label_name)?;
        let n = frame.n_rows();

        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            labels.push(binarize_label(label_col.get(i), favorable_label, i)?);
        }

        let privileged_mask = compute_privileged_mask(&frame, &protected)?;
        validate_group_presence(&privileged_mask)?;

        Ok(BinaryLabelDataset {
            frame,
            schema,
            protected,
            favorable_label: favorable_label.to_string(),
            labels,
            privileged_mask,
            instance_weights: vec![1.0; n],
        })
    }

    /// Assembles a dataset for **inference-time scoring**: rows that carry
    /// features and the protected attribute but no outcome.
    ///
    /// The label column is synthesized (or overwritten, if the request
    /// happened to include one — serving never trusts a caller-supplied
    /// outcome) with the favorable category, so every code path that reads
    /// labels sees a well-formed all-`1.0` vector that the score path never
    /// consults. Group *presence* is not validated — a single-row request
    /// is necessarily single-group — but a missing protected attribute is
    /// still rejected, because per-group decision rates and post-processors
    /// need it for every record. The frame is tagged [`Provenance::Test`]
    /// so any accidental `fit` on serving traffic trips the leak guard.
    pub fn for_inference(
        mut frame: DataFrame,
        schema: Schema,
        protected: ProtectedAttribute,
        favorable_label: &str,
    ) -> Result<Self> {
        schema.validate()?;
        let label_name = schema.label_name()?.to_string();
        let n = frame.n_rows();

        let label_col = match schema
            .fields()
            .iter()
            .find(|f| f.name == label_name)
            .map(|f| f.kind)
        {
            Some(crate::column::ColumnKind::Numeric) => Column::from_f64(vec![1.0; n]),
            _ => Column::from_strs((0..n).map(|_| favorable_label)),
        };
        if frame.column(&label_name).is_ok() {
            frame.replace_column(&label_name, label_col)?;
        } else {
            frame.add_column(&label_name, label_col)?;
        }
        frame.set_provenance(Provenance::Test);

        let privileged_mask = compute_privileged_mask(&frame, &protected)?;

        Ok(BinaryLabelDataset {
            frame,
            schema,
            protected,
            favorable_label: favorable_label.to_string(),
            labels: vec![1.0; n],
            privileged_mask,
            instance_weights: vec![1.0; n],
        })
    }

    /// Assembles a dataset from parts that have already been validated
    /// against the full stream they were gathered from.
    ///
    /// Used by the chunked split, which computes labels and masks chunk
    /// at a time (with the same per-cell checks as [`new`]) and validates
    /// group presence once over the whole stream — partitions themselves
    /// are *not* re-validated, exactly like [`take`] on a materialized
    /// dataset, where a single-group partition is legal.
    ///
    /// [`new`]: BinaryLabelDataset::new
    /// [`take`]: BinaryLabelDataset::take
    pub(crate) fn from_validated_parts(
        frame: DataFrame,
        schema: Schema,
        protected: ProtectedAttribute,
        favorable_label: &str,
        labels: Vec<f64>,
        privileged_mask: Vec<bool>,
    ) -> BinaryLabelDataset {
        let n = frame.n_rows();
        BinaryLabelDataset {
            frame,
            schema,
            protected,
            favorable_label: favorable_label.to_string(),
            labels,
            privileged_mask,
            instance_weights: vec![1.0; n],
        }
    }

    /// Number of instances.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.frame.n_rows()
    }

    /// The relational view of the data.
    #[must_use]
    pub fn frame(&self) -> &DataFrame {
        &self.frame
    }

    /// The partition-provenance tag of the underlying frame.
    #[must_use]
    pub fn provenance(&self) -> Provenance {
        self.frame.provenance()
    }

    /// Re-tags the underlying frame (used by the seeded split when the
    /// train/validation/test partitions are born).
    pub fn set_provenance(&mut self, provenance: Provenance) {
        self.frame.set_provenance(provenance);
    }

    /// The `debug_assert!` leak guard every data-dependent `fit` entry
    /// point calls before touching this dataset: rejects test-tagged
    /// inputs in debug builds (see [`crate::provenance::guard_fit`]).
    #[inline]
    pub fn guard_fit(&self, component: &str) {
        crate::provenance::guard_fit(self.provenance(), component);
    }

    /// The experiment schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The protected-attribute declaration.
    #[must_use]
    pub fn protected(&self) -> &ProtectedAttribute {
        &self.protected
    }

    /// The category string denoting the favorable label.
    #[must_use]
    pub fn favorable_label(&self) -> &str {
        &self.favorable_label
    }

    /// Binary labels: `1.0` favorable, `0.0` unfavorable.
    #[must_use]
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// `true` at index `i` iff instance `i` belongs to the privileged group.
    #[must_use]
    pub fn privileged_mask(&self) -> &[bool] {
        &self.privileged_mask
    }

    /// Per-instance weights (all `1.0` unless an intervention reweighed).
    #[must_use]
    pub fn instance_weights(&self) -> &[f64] {
        &self.instance_weights
    }

    /// Replaces the instance weights (e.g. after reweighing).
    pub fn set_instance_weights(&mut self, weights: Vec<f64>) -> Result<()> {
        if weights.len() != self.n_rows() {
            return Err(Error::LengthMismatch {
                expected: self.n_rows(),
                actual: weights.len(),
            });
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(Error::InvalidParameter {
                name: "instance_weights",
                message: format!("weight {w} is not a finite non-negative number"),
            });
        }
        self.instance_weights = weights;
        Ok(())
    }

    /// Indices of the privileged (`true`) or unprivileged (`false`) group.
    #[must_use]
    pub fn group_indices(&self, privileged: bool) -> Vec<usize> {
        self.privileged_mask
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == privileged)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fraction of favorable labels; over the whole dataset when `group` is
    /// `None`, otherwise within the selected group.
    #[must_use]
    pub fn base_rate(&self, group: Option<bool>) -> f64 {
        let (pos, n) = self
            .labels
            .iter()
            .zip(&self.privileged_mask)
            .filter(|(_, &p)| group.is_none_or(|g| p == g))
            .fold((0.0, 0usize), |(pos, n), (&y, _)| (pos + y, n + 1));
        if n == 0 {
            f64::NAN
        } else {
            pos / n as f64
        }
    }

    /// Materializes the sub-dataset at `indices` (duplicates allowed —
    /// resamplers rely on this). Weights, labels and group masks travel with
    /// the rows.
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> BinaryLabelDataset {
        BinaryLabelDataset {
            frame: self.frame.take(indices),
            schema: self.schema.clone(),
            protected: self.protected.clone(),
            favorable_label: self.favorable_label.clone(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            privileged_mask: indices.iter().map(|&i| self.privileged_mask[i]).collect(),
            instance_weights: indices.iter().map(|&i| self.instance_weights[i]).collect(),
        }
    }

    /// Replaces a feature column in the relational view (used by repairing
    /// preprocessors such as the disparate-impact remover). Labels, masks and
    /// weights are untouched.
    pub fn replace_column(&mut self, name: &str, column: Column) -> Result<()> {
        if self.schema.label_name()? == name {
            return Err(Error::InvalidParameter {
                name: "replace_column",
                message: "label column cannot be replaced through this method".to_string(),
            });
        }
        self.frame.replace_column(name, column)?;
        if name == self.protected.name {
            self.privileged_mask = compute_privileged_mask(&self.frame, &self.protected)?;
        }
        Ok(())
    }

    /// Mutable access to the relational view for imputation-style edits that
    /// must not touch the label column.
    ///
    /// The label and group caches are recomputed afterwards via
    /// [`BinaryLabelDataset::refresh_caches`]; callers inside the workspace
    /// use the safe wrappers in `fairprep-impute` instead of this method.
    pub fn frame_mut(&mut self) -> &mut DataFrame {
        &mut self.frame
    }

    /// Recomputes the privileged mask after direct frame edits.
    pub fn refresh_caches(&mut self) -> Result<()> {
        self.privileged_mask = compute_privileged_mask(&self.frame, &self.protected)?;
        Ok(())
    }

    /// Row indices with at least one missing value.
    #[must_use]
    pub fn incomplete_rows(&self) -> Vec<usize> {
        self.frame.incomplete_rows()
    }

    /// Replaces the binary labels (used by relabeling interventions such as
    /// massaging). The label column in the relational view is rewritten
    /// accordingly; the label column must contain exactly two categories so
    /// the unfavorable category is unambiguous.
    pub fn set_labels(&mut self, labels: Vec<f64>) -> Result<()> {
        if labels.len() != self.n_rows() {
            return Err(Error::LengthMismatch {
                expected: self.n_rows(),
                actual: labels.len(),
            });
        }
        // audit: allow(float-eq, reason = "label validity means exactly 0.0 or 1.0; approximate comparison would accept bad labels")
        if let Some(bad) = labels.iter().find(|v| **v != 0.0 && **v != 1.0) {
            return Err(Error::InvalidLabel(*bad));
        }
        let label_name = self.schema.label_name()?.to_string();
        let label_col = self.frame.column(&label_name)?;
        let unfavorable = match label_col {
            Column::Categorical(cat) => {
                let others: Vec<&str> = cat
                    .categories()
                    .iter()
                    .map(String::as_str)
                    .filter(|c| *c != self.favorable_label)
                    .collect();
                if others.len() != 1 {
                    return Err(Error::InvalidParameter {
                        name: "set_labels",
                        message: format!(
                            "label column must have exactly 2 categories, found {}",
                            others.len() + 1
                        ),
                    });
                }
                // audit: allow(index-literal, reason = "guarded by the others.len() != 1 check above")
                crate::column::OwnedValue::Categorical(others[0].to_string())
            }
            Column::Numeric(_) => crate::column::OwnedValue::Numeric(0.0),
        };
        let favorable = match label_col {
            Column::Categorical(_) => {
                crate::column::OwnedValue::Categorical(self.favorable_label.clone())
            }
            Column::Numeric(_) => crate::column::OwnedValue::Numeric(1.0),
        };
        for (i, &y) in labels.iter().enumerate() {
            // audit: allow(float-eq, reason = "labels are validated to be exactly 0.0 or 1.0 at construction")
            let v = if y == 1.0 {
                favorable.clone()
            } else {
                unfavorable.clone()
            };
            self.frame.column_mut(&label_name)?.set(i, v)?;
        }
        self.labels = labels;
        Ok(())
    }
}

/// Binarizes one label cell: category equality against `favorable_label`,
/// or a numeric cell that must already be the exact `0.0`/`1.0` encoding.
/// `row` is only used in error messages — pass the global row index when
/// validating a chunked stream so diagnostics match the materialized path.
pub(crate) fn binarize_label(value: Value<'_>, favorable_label: &str, row: usize) -> Result<f64> {
    match value {
        Value::Categorical(s) => Ok(f64::from(u8::from(s == favorable_label))),
        Value::Numeric(v) => {
            // audit: allow(float-eq, reason = "accepts only the exact encodings 0.0/1.0; anything else is rejected as an invalid label")
            if v == 0.0 || v == 1.0 {
                Ok(v)
            } else {
                Err(Error::InvalidLabel(v))
            }
        }
        Value::Missing => Err(Error::EmptyData(format!("label missing at row {row}"))),
    }
}

/// Evaluates the protected-group spec against one cell. Missing protected
/// attributes and kind mismatches are rejected, exactly as in
/// [`BinaryLabelDataset::new`].
pub(crate) fn row_privileged(
    protected: &ProtectedAttribute,
    value: Value<'_>,
    row: usize,
) -> Result<bool> {
    match (&protected.privileged, value) {
        (GroupSpec::CategoryIn(values), Value::Categorical(s)) => Ok(values.iter().any(|v| v == s)),
        (GroupSpec::NumericAtLeast(t), Value::Numeric(v)) => Ok(v >= *t),
        (_, Value::Missing) => Err(Error::EmptyData(format!(
            "protected attribute {} missing at row {row}",
            protected.name
        ))),
        _ => Err(Error::ColumnTypeMismatch {
            column: protected.name.clone(),
            expected: "kind matching the group spec",
        }),
    }
}

/// Rejects masks where either group is absent — a fairness experiment
/// needs both populations.
pub(crate) fn validate_group_presence(mask: &[bool]) -> Result<()> {
    if !mask.iter().any(|&p| p) {
        return Err(Error::EmptyGroup { privileged: true });
    }
    if mask.iter().all(|&p| p) {
        return Err(Error::EmptyGroup { privileged: false });
    }
    Ok(())
}

fn compute_privileged_mask(frame: &DataFrame, protected: &ProtectedAttribute) -> Result<Vec<bool>> {
    let col = frame.column(&protected.name)?;
    let n = frame.n_rows();
    let mut mask = Vec::with_capacity(n);
    for i in 0..n {
        mask.push(row_privileged(protected, col.get(i), i)?);
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnKind;

    pub(crate) fn toy() -> BinaryLabelDataset {
        let frame = DataFrame::new()
            .with_column("score", Column::from_f64([10.0, 20.0, 30.0, 40.0]))
            .unwrap()
            .with_column("sex", Column::from_strs(["m", "f", "m", "f"]))
            .unwrap()
            .with_column(
                "outcome",
                Column::from_strs(["good", "bad", "good", "good"]),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("score")
            .metadata("sex", ColumnKind::Categorical)
            .label("outcome");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("sex", &["m"]),
            "good",
        )
        .unwrap()
    }

    #[test]
    fn labels_are_binarized() {
        let ds = toy();
        assert_eq!(ds.labels(), &[1.0, 0.0, 1.0, 1.0]);
        assert_eq!(ds.favorable_label(), "good");
    }

    #[test]
    fn privileged_mask_matches_spec() {
        let ds = toy();
        assert_eq!(ds.privileged_mask(), &[true, false, true, false]);
        assert_eq!(ds.group_indices(true), vec![0, 2]);
        assert_eq!(ds.group_indices(false), vec![1, 3]);
    }

    #[test]
    fn base_rates() {
        let ds = toy();
        assert!((ds.base_rate(None) - 0.75).abs() < 1e-12);
        assert!((ds.base_rate(Some(true)) - 1.0).abs() < 1e-12);
        assert!((ds.base_rate(Some(false)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn for_inference_synthesizes_labels_and_tags_test() {
        // Serving rows: features + protected attribute, no outcome column.
        let frame = DataFrame::new()
            .with_column("score", Column::from_f64([10.0, 20.0]))
            .unwrap()
            .with_column("sex", Column::from_strs(["m", "f"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("score")
            .metadata("sex", ColumnKind::Categorical)
            .label("outcome");
        let ds = BinaryLabelDataset::for_inference(
            frame,
            schema,
            ProtectedAttribute::categorical("sex", &["m"]),
            "good",
        )
        .unwrap();
        assert_eq!(ds.labels(), &[1.0, 1.0]);
        assert_eq!(ds.privileged_mask(), &[true, false]);
        assert_eq!(ds.provenance(), Provenance::Test);
        // Synthesized column holds the favorable category everywhere.
        let col = ds.frame().column("outcome").unwrap();
        assert_eq!(col.get(0), Value::Categorical("good"));
    }

    #[test]
    fn for_inference_overwrites_caller_supplied_labels() {
        let frame = DataFrame::new()
            .with_column("score", Column::from_f64([10.0]))
            .unwrap()
            .with_column("sex", Column::from_strs(["f"]))
            .unwrap()
            .with_column("outcome", Column::from_strs(["bad"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("score")
            .metadata("sex", ColumnKind::Categorical)
            .label("outcome");
        let ds = BinaryLabelDataset::for_inference(
            frame,
            schema,
            ProtectedAttribute::categorical("sex", &["m"]),
            "good",
        )
        .unwrap();
        // Single-group batches are legal at inference time...
        assert_eq!(ds.privileged_mask(), &[false]);
        // ...and the caller's outcome claim is discarded.
        assert_eq!(ds.labels(), &[1.0]);
    }

    #[test]
    fn for_inference_still_rejects_missing_protected() {
        let frame = DataFrame::new()
            .with_column("score", Column::from_f64([10.0]))
            .unwrap()
            .with_column("sex", Column::from_optional_strs([None::<&str>]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("score")
            .metadata("sex", ColumnKind::Categorical)
            .label("outcome");
        let err = BinaryLabelDataset::for_inference(
            frame,
            schema,
            ProtectedAttribute::categorical("sex", &["m"]),
            "good",
        )
        .unwrap_err();
        assert!(
            matches!(err, Error::EmptyData(_) | Error::InvalidParameter { .. }),
            "unexpected: {err}"
        );
    }

    #[test]
    fn take_carries_annotations() {
        let mut ds = toy();
        ds.set_instance_weights(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let sub = ds.take(&[3, 1]);
        assert_eq!(sub.labels(), &[1.0, 0.0]);
        assert_eq!(sub.privileged_mask(), &[false, false]);
        assert_eq!(sub.instance_weights(), &[4.0, 2.0]);
    }

    #[test]
    fn weights_validated() {
        let mut ds = toy();
        assert!(ds.set_instance_weights(vec![1.0]).is_err());
        assert!(ds.set_instance_weights(vec![1.0, -1.0, 1.0, 1.0]).is_err());
        assert!(ds
            .set_instance_weights(vec![1.0, f64::NAN, 1.0, 1.0])
            .is_err());
        assert!(ds.set_instance_weights(vec![0.5; 4]).is_ok());
    }

    #[test]
    fn missing_label_rejected() {
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64([1.0, 2.0]))
            .unwrap()
            .with_column("g", Column::from_strs(["a", "b"]))
            .unwrap()
            .with_column("y", Column::from_optional_strs([Some("good"), None]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let result = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "good",
        );
        assert!(result.is_err());
    }

    #[test]
    fn single_group_rejected() {
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64([1.0, 2.0]))
            .unwrap()
            .with_column("g", Column::from_strs(["a", "a"]))
            .unwrap()
            .with_column("y", Column::from_strs(["good", "bad"]))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let result = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "good",
        );
        assert_eq!(result.unwrap_err(), Error::EmptyGroup { privileged: false });
    }

    #[test]
    fn numeric_labels_accepted_when_binary() {
        let frame = DataFrame::new()
            .with_column("g", Column::from_strs(["a", "b"]))
            .unwrap()
            .with_column("y", Column::from_f64([1.0, 0.0]))
            .unwrap();
        let schema = Schema::new()
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "1",
        )
        .unwrap();
        assert_eq!(ds.labels(), &[1.0, 0.0]);
    }

    #[test]
    fn replace_column_protects_label() {
        let mut ds = toy();
        assert!(ds
            .replace_column("outcome", Column::from_strs(["x", "x", "x", "x"]))
            .is_err());
        ds.replace_column("score", Column::from_f64([0.0, 0.0, 0.0, 0.0]))
            .unwrap();
        assert_eq!(ds.frame().value(0, "score").unwrap(), Value::Numeric(0.0));
    }

    #[test]
    fn replace_protected_column_refreshes_mask() {
        let mut ds = toy();
        ds.replace_column("sex", Column::from_strs(["f", "f", "m", "m"]))
            .unwrap();
        assert_eq!(ds.privileged_mask(), &[false, false, true, true]);
    }
}

#[cfg(test)]
mod set_labels_tests {
    use super::tests::toy;
    use crate::column::Value;

    #[test]
    fn set_labels_rewrites_cache_and_frame() {
        let mut ds = toy();
        ds.set_labels(vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        assert_eq!(ds.labels(), &[0.0, 1.0, 0.0, 1.0]);
        assert_eq!(
            ds.frame().value(0, "outcome").unwrap(),
            Value::Categorical("bad")
        );
        assert_eq!(
            ds.frame().value(1, "outcome").unwrap(),
            Value::Categorical("good")
        );
    }

    #[test]
    fn set_labels_validates() {
        let mut ds = toy();
        assert!(ds.set_labels(vec![1.0]).is_err());
        assert!(ds.set_labels(vec![2.0, 0.0, 0.0, 0.0]).is_err());
    }
}
