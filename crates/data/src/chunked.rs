//! Out-of-core chunked data path: fixed-size column chunks behind the
//! [`DataFrame`] API, streaming CSV ingest, and chunk-at-a-time variants
//! of the raw → `train_split` lifecycle boundary.
//!
//! The FairPrep lifecycle materializes partitions for learning — a model
//! must see its training matrix — but nothing *before* the partition
//! boundary needs the whole file in memory. This module makes everything
//! up to that boundary streamable:
//!
//! * [`read_csv_chunked`] drives the same typed record reader as
//!   [`read_csv`](crate::csv::read_csv) (same record splitter, header
//!   resolution, missing-token matching, and cell typing) and hands
//!   fixed-size [`DataFrame`] chunks to a [`ChunkSink`]. Peak memory is
//!   bounded by the chunk size and whatever the sink retains — a counting
//!   sink like [`ChunkStats`] or a streaming
//!   [`ProfileSketch`](crate::profile::ProfileSketch) keeps ingest memory
//!   independent of row count.
//! * [`ChunkedFrame`] collects chunks and supports global-index row
//!   gathers ([`ChunkedFrame::take`]), complete-case filtering
//!   ([`ChunkedFrame::retain_complete`]), and assembly into a single
//!   frame ([`ChunkedFrame::to_frame`]).
//! * [`train_val_test_split_chunked`] runs the seeded split directly on a
//!   chunked frame, gathering each partition chunk-at-a-time.
//!
//! ## The bit-identity invariant
//!
//! Every operation here is bit-identical to its materialized counterpart,
//! for any chunk size — goldens and manifests are the referee, so chunking
//! must change *no observable value*. The load-bearing fact is dictionary
//! order: categorical columns intern categories in first-encounter order,
//! and appending the per-chunk dictionaries of a row-ordered partitioning
//! (in chunk order) reproduces the global first-encounter order of a
//! single-pass read. [`Column::append`] interns the *whole* source
//! dictionary — including categories no surviving row references — so the
//! invariant also holds after per-chunk filtering, where a dropped row's
//! category must still appear in the assembled dictionary exactly where
//! the materialized filter would have kept it.

use std::io::BufRead;

use crate::column::{Column, ColumnKind};
use crate::csv::TypedCsvReader;
use crate::dataset::BinaryLabelDataset;
use crate::error::{Error, Result};
use crate::frame::{DataFrame, FrameBuilder};
use crate::provenance::Provenance;
use crate::schema::{ProtectedAttribute, Schema};
use crate::split::{split_row_indices, SplitSpec, TrainValTest};

/// Default number of rows per chunk: large enough to amortize per-chunk
/// overhead, small enough that a resident chunk is a few hundred KB.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Receives the chunks of a streaming ingest, in row order.
///
/// A sink decides the memory profile of the stream: [`ChunkedFrame`]
/// retains everything, [`ChunkStats`] and
/// [`ProfileSketch`](crate::profile::ProfileSketch) retain only
/// fixed-size (respectively per-column) state.
pub trait ChunkSink {
    /// Consumes the next chunk. Chunks arrive in row order; all chunks
    /// have the same columns.
    fn chunk(&mut self, chunk: DataFrame) -> Result<()>;
}

/// Feeds each chunk to two sinks (cloning for the first). Lets one stream
/// both collect chunks and update a profile sketch in a single pass.
pub struct Tee<'a, A: ChunkSink, B: ChunkSink>(pub &'a mut A, pub &'a mut B);

impl<A: ChunkSink, B: ChunkSink> ChunkSink for Tee<'_, A, B> {
    fn chunk(&mut self, chunk: DataFrame) -> Result<()> {
        self.0.chunk(chunk.clone())?;
        self.1.chunk(chunk)
    }
}

/// A bounded-memory sink: per-column row/missing tallies and nothing else.
/// Its state is `O(columns)` regardless of how many rows stream through —
/// the honest baseline for "ingest memory grows with chunk size, not row
/// count" measurements.
#[derive(Debug, Clone, Default)]
pub struct ChunkStats {
    /// Total rows seen.
    pub rows: u64,
    /// Total chunks seen.
    pub chunks: u64,
    /// Column names, captured from the first chunk.
    pub columns: Vec<String>,
    /// Missing-cell count per column, aligned with `columns`.
    pub missing: Vec<u64>,
}

impl ChunkSink for ChunkStats {
    fn chunk(&mut self, chunk: DataFrame) -> Result<()> {
        if self.columns.is_empty() {
            self.columns = chunk.column_names().to_vec();
            self.missing = vec![0; self.columns.len()];
        }
        for (name, slot) in self.columns.iter().zip(&mut self.missing) {
            *slot += chunk.column(name)?.missing_count() as u64;
        }
        self.rows += chunk.n_rows() as u64;
        self.chunks += 1;
        Ok(())
    }
}

/// Summary of one streaming ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Data rows delivered (blank lines excluded).
    pub rows: u64,
    /// Chunks delivered to the sink.
    pub chunks: u64,
}

/// Streaming CSV ingest: reads typed records through the same
/// [`TypedCsvReader`] as [`read_csv`](crate::csv::read_csv) and delivers
/// them to `sink` in [`DataFrame`] chunks of at most `chunk_rows` rows.
///
/// The resulting chunk sequence assembles (via [`ChunkedFrame::to_frame`]
/// or [`DataFrame::append`]) into a frame bit-identical to what
/// `read_csv` returns on the same input, for any `chunk_rows >= 1` —
/// including CRLF line endings, quoted fields, and missing tokens, which
/// are all handled by the shared reader before chunking is even visible.
pub fn read_csv_chunked<R: BufRead, S: ChunkSink>(
    reader: R,
    kinds: &[(&str, ColumnKind)],
    missing_tokens: &[&str],
    chunk_rows: usize,
    sink: &mut S,
) -> Result<IngestStats> {
    if chunk_rows == 0 {
        return Err(Error::InvalidParameter {
            name: "chunk_rows",
            message: "chunk size must be at least 1".to_string(),
        });
    }
    let mut records = TypedCsvReader::new(reader, kinds, missing_tokens)?;
    let spec = records.spec();
    let spec_refs: Vec<(&str, ColumnKind)> = spec.iter().map(|(n, k)| (n.as_str(), *k)).collect();
    let mut builder = FrameBuilder::new(&spec_refs);
    let mut in_chunk = 0usize;
    let mut stats = IngestStats { rows: 0, chunks: 0 };
    while let Some(row) = records.next_row() {
        builder.push_row(row?)?;
        in_chunk += 1;
        stats.rows += 1;
        if in_chunk == chunk_rows {
            let full = std::mem::replace(&mut builder, FrameBuilder::new(&spec_refs));
            sink.chunk(full.finish()?)?;
            stats.chunks += 1;
            in_chunk = 0;
        }
    }
    if in_chunk > 0 {
        sink.chunk(builder.finish()?)?;
        stats.chunks += 1;
    }
    Ok(stats)
}

/// A frame stored as a sequence of row chunks with identical columns.
///
/// Chunks are typically uniform at some target size with a smaller final
/// chunk, but any sizes (including empty chunks, which still carry their
/// categorical dictionaries) are accepted — row order across chunks is
/// the only structural invariant.
#[derive(Debug, Clone, Default)]
pub struct ChunkedFrame {
    spec: Vec<(String, ColumnKind)>,
    chunks: Vec<DataFrame>,
    /// Cumulative end row (exclusive) of each chunk.
    offsets: Vec<usize>,
}

impl ChunkedFrame {
    /// Creates an empty chunked frame; the column spec is captured from
    /// the first chunk pushed.
    #[must_use]
    pub fn new() -> Self {
        ChunkedFrame::default()
    }

    /// Total rows across all chunks.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Number of chunks.
    #[must_use]
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The chunks, in row order.
    #[must_use]
    pub fn chunks(&self) -> &[DataFrame] {
        &self.chunks
    }

    /// The column spec (name, kind) in column order; empty before the
    /// first chunk arrives.
    #[must_use]
    pub fn spec(&self) -> &[(String, ColumnKind)] {
        &self.spec
    }

    /// Appends a chunk. All chunks must share the same column names and
    /// kinds (checked against the first chunk).
    pub fn push_chunk(&mut self, chunk: DataFrame) -> Result<()> {
        let chunk_spec: Vec<(String, ColumnKind)> = chunk
            .column_names()
            .iter()
            .map(|n| {
                // audit: allow(expect, reason = "iterating the chunk's own column names, so every lookup succeeds")
                let kind = chunk.column(n).expect("column exists").kind();
                (n.clone(), kind)
            })
            .collect();
        if self.chunks.is_empty() {
            self.spec = chunk_spec;
        } else if self.spec != chunk_spec {
            return Err(Error::InvalidParameter {
                name: "push_chunk",
                message: "chunk columns differ from the first chunk".to_string(),
            });
        }
        self.offsets.push(self.n_rows() + chunk.n_rows());
        self.chunks.push(chunk);
        Ok(())
    }

    /// Locates global `row` as `(chunk index, offset within chunk)`.
    fn locate(&self, row: usize) -> Result<(usize, usize)> {
        if row >= self.n_rows() {
            return Err(Error::InvalidParameter {
                name: "row",
                message: format!("row {row} out of bounds for {} rows", self.n_rows()),
            });
        }
        // First chunk whose exclusive end exceeds `row`; empty chunks have
        // `end == previous end` and are skipped by the strict comparison.
        let c = self.offsets.partition_point(|&end| end <= row);
        let start = if c == 0 { 0 } else { self.offsets[c - 1] };
        Ok((c, row - start))
    }

    /// Assembles all chunks into one frame, bit-identical to a single-pass
    /// build of the same rows (see the module docs for the dictionary
    /// argument). Linear in the total row count.
    pub fn to_frame(&self) -> Result<DataFrame> {
        let spec_refs: Vec<(&str, ColumnKind)> =
            self.spec.iter().map(|(n, k)| (n.as_str(), *k)).collect();
        let mut out = FrameBuilder::new(&spec_refs).finish()?;
        for chunk in &self.chunks {
            out.append(chunk)?;
        }
        Ok(out)
    }

    /// Gathers the rows at global `indices` (duplicates allowed, order
    /// preserved) into one materialized frame — bit-identical to
    /// `self.to_frame()?.take(indices)`, without materializing the
    /// intermediate full frame.
    ///
    /// Categorical output columns carry the full merged dictionary (all
    /// chunks, in chunk order), exactly as a materialized `take` preserves
    /// the global dictionary.
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for (name, kind) in &self.spec {
            let per_chunk: Vec<&Column> = self
                .chunks
                .iter()
                .map(|chunk| chunk.column(name))
                .collect::<Result<_>>()?;
            let column = match kind {
                ColumnKind::Numeric => {
                    let mut values = Vec::with_capacity(indices.len());
                    for &i in indices {
                        let (c, off) = self.locate(i)?;
                        values.push(per_chunk[c].as_numeric()?[off]);
                    }
                    Column::Numeric(values)
                }
                ColumnKind::Categorical => {
                    let mut merged = crate::column::CategoricalData::new();
                    // Chunk-local code → merged-dictionary code.
                    let mut remaps = Vec::with_capacity(per_chunk.len());
                    for col in &per_chunk {
                        let cat = col.as_categorical()?;
                        let remap: Vec<u32> =
                            cat.categories().iter().map(|c| merged.intern(c)).collect();
                        remaps.push(remap);
                    }
                    for &i in indices {
                        let (c, off) = self.locate(i)?;
                        let code = per_chunk[c].as_categorical()?.codes()[off];
                        merged.push_code(code.map(|code| remaps[c][code as usize]))?;
                    }
                    Column::Categorical(merged)
                }
            };
            out.add_column(name, column)?;
        }
        Ok(out)
    }

    /// Streaming complete-case filter: drops every row with a missing cell,
    /// chunk at a time, and returns the filtered chunked frame plus the
    /// kept **global** row indices.
    ///
    /// Per-chunk filtering preserves each chunk's dictionary (like
    /// [`Column::take`]), and empty filtered chunks are kept for their
    /// dictionaries, so the assembled result is bit-identical to the
    /// materialized `frame.filter(|i| !frame.row_has_missing(i))`.
    #[must_use]
    pub fn retain_complete(&self) -> (ChunkedFrame, Vec<usize>) {
        let mut out = ChunkedFrame::new();
        let mut kept_global = Vec::new();
        let mut base = 0usize;
        for chunk in &self.chunks {
            let (filtered, kept) = chunk.filter(|i| !chunk.row_has_missing(i));
            kept_global.extend(kept.iter().map(|&i| base + i));
            base += chunk.n_rows();
            // audit: allow(expect, reason = "filtered chunks keep the source chunk's schema, which push_chunk already accepted")
            out.push_chunk(filtered).expect("schema preserved");
        }
        (out, kept_global)
    }
}

impl ChunkSink for ChunkedFrame {
    fn chunk(&mut self, chunk: DataFrame) -> Result<()> {
        self.push_chunk(chunk)
    }
}

/// Seeded train/validation/test split over a chunked frame: computes the
/// same shuffled partition indices as
/// [`train_val_test_split`](crate::split::train_val_test_split) (identical
/// RNG consumption from the `"splitter"` component stream), then gathers
/// each partition chunk-at-a-time with [`ChunkedFrame::take`].
///
/// The partitions are materialized [`BinaryLabelDataset`]s — learners need
/// their training matrix — carrying the same provenance tags as the
/// materialized split (`Train` / `Derived` / `Test`). The result is
/// bit-identical to materializing the whole frame first and splitting it.
pub fn train_val_test_split_chunked(
    frame: &ChunkedFrame,
    schema: &Schema,
    protected: &ProtectedAttribute,
    favorable_label: &str,
    spec: SplitSpec,
    seed: u64,
) -> Result<TrainValTest> {
    // Validate the whole stream exactly as `BinaryLabelDataset::new` would
    // validate the materialized frame: every label binarized, every
    // protected cell evaluated, group presence checked once globally.
    // Partitions are then assembled without re-validation — matching the
    // materialized split, where `take` never re-checks group presence.
    schema.validate()?;
    let label_name = schema.label_name()?.to_string();
    let n = frame.n_rows();
    let mut labels = Vec::with_capacity(n);
    let mut mask = Vec::with_capacity(n);
    let mut base = 0usize;
    for chunk in frame.chunks() {
        let label_col = chunk.column(&label_name)?;
        let protected_col = chunk.column(&protected.name)?;
        for i in 0..chunk.n_rows() {
            labels.push(crate::dataset::binarize_label(
                label_col.get(i),
                favorable_label,
                base + i,
            )?);
            mask.push(crate::dataset::row_privileged(
                protected,
                protected_col.get(i),
                base + i,
            )?);
        }
        base += chunk.n_rows();
    }
    crate::dataset::validate_group_presence(&mask)?;

    let indices = split_row_indices(n, spec, seed)?;
    let partition = |idx: &[usize], tag: Provenance| -> Result<BinaryLabelDataset> {
        let mut ds = BinaryLabelDataset::from_validated_parts(
            frame.take(idx)?,
            schema.clone(),
            protected.clone(),
            favorable_label,
            idx.iter().map(|&i| labels[i]).collect(),
            idx.iter().map(|&i| mask[i]).collect(),
        );
        ds.set_provenance(tag);
        Ok(ds)
    };
    let train = partition(&indices.train, Provenance::Train)?;
    // Validation stays `Derived` for the same reason as the materialized
    // split: postprocessors legitimately fit on validation predictions.
    let validation = partition(&indices.validation, Provenance::Derived)?;
    let test = partition(&indices.test, Provenance::Test)?;
    Ok(TrainValTest {
        train,
        validation,
        test,
        indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;
    use std::io::Cursor;

    const SAMPLE: &str = "age,job,income\n25,clerk,low\n?,\"cook, senior\",high\n40,,low\n64,clerk,high\n33,maid,low\n";

    fn kinds() -> Vec<(&'static str, ColumnKind)> {
        vec![
            ("age", ColumnKind::Numeric),
            ("job", ColumnKind::Categorical),
            ("income", ColumnKind::Categorical),
        ]
    }

    fn ingest(chunk_rows: usize) -> ChunkedFrame {
        let mut frame = ChunkedFrame::new();
        read_csv_chunked(
            Cursor::new(SAMPLE),
            &kinds(),
            crate::csv::DEFAULT_MISSING_TOKENS,
            chunk_rows,
            &mut frame,
        )
        .unwrap();
        frame
    }

    #[test]
    fn chunked_ingest_assembles_to_read_csv_result() {
        let reference = crate::csv::read_csv(
            Cursor::new(SAMPLE),
            &kinds(),
            crate::csv::DEFAULT_MISSING_TOKENS,
        )
        .unwrap();
        for chunk_rows in [1, 2, 3, 4096] {
            let chunked = ingest(chunk_rows);
            assert_eq!(chunked.n_rows(), 5);
            assert_eq!(
                chunked.to_frame().unwrap(),
                reference,
                "chunk_rows={chunk_rows}"
            );
        }
    }

    #[test]
    fn chunk_sizes_are_bounded_by_target() {
        let chunked = ingest(2);
        assert_eq!(chunked.n_chunks(), 3);
        let sizes: Vec<usize> = chunked.chunks().iter().map(DataFrame::n_rows).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn zero_chunk_rows_rejected() {
        let mut sink = ChunkStats::default();
        assert!(read_csv_chunked(Cursor::new(SAMPLE), &kinds(), &[], 0, &mut sink).is_err());
    }

    #[test]
    fn stats_sink_counts_without_retaining() {
        let mut stats = ChunkStats::default();
        read_csv_chunked(
            Cursor::new(SAMPLE),
            &kinds(),
            crate::csv::DEFAULT_MISSING_TOKENS,
            2,
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.chunks, 3);
        assert_eq!(stats.columns, vec!["age", "job", "income"]);
        assert_eq!(stats.missing, vec![1, 1, 0]);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut frame = ChunkedFrame::new();
        let mut stats = ChunkStats::default();
        read_csv_chunked(
            Cursor::new(SAMPLE),
            &kinds(),
            crate::csv::DEFAULT_MISSING_TOKENS,
            2,
            &mut Tee(&mut stats, &mut frame),
        )
        .unwrap();
        assert_eq!(stats.rows, 5);
        assert_eq!(frame.n_rows(), 5);
    }

    #[test]
    fn take_matches_materialized_take() {
        let chunked = ingest(2);
        let reference = chunked.to_frame().unwrap();
        let indices = vec![4, 0, 4, 2, 1];
        assert_eq!(chunked.take(&indices).unwrap(), reference.take(&indices));
        // Out-of-bounds rows are an error, not a panic.
        assert!(chunked.take(&[99]).is_err());
    }

    #[test]
    fn retain_complete_matches_materialized_filter() {
        let chunked = ingest(2);
        let reference = chunked.to_frame().unwrap();
        let (filtered, kept) = chunked.retain_complete();
        let (ref_filtered, ref_kept) = reference.filter(|i| !reference.row_has_missing(i));
        assert_eq!(kept, ref_kept);
        assert_eq!(filtered.to_frame().unwrap(), ref_filtered);
        assert_eq!(filtered.n_rows(), 3);
    }

    #[test]
    fn mismatched_chunk_schema_rejected() {
        let mut frame = ingest(2);
        let stray = DataFrame::new()
            .with_column("other", Column::from_f64([1.0]))
            .unwrap();
        assert!(frame.push_chunk(stray).is_err());
    }

    #[test]
    fn values_survive_chunking() {
        let chunked = ingest(1);
        let assembled = chunked.to_frame().unwrap();
        assert_eq!(
            assembled.value(1, "job").unwrap(),
            Value::Categorical("cook, senior")
        );
        assert_eq!(assembled.value(2, "job").unwrap(), Value::Missing);
        assert_eq!(assembled.value(3, "age").unwrap(), Value::Numeric(64.0));
    }
}
