//! Training-set resampling — the first (optional) lifecycle step.
//!
//! "In the first (optional) step, we allow users to resample the training
//! data: to apply bootstrapping, to balance classes, or to generate
//! additional synthetic examples" (§3). Resamplers only ever see the
//! training partition; the framework never applies them to validation or
//! test data.

use rand::seq::IndexedRandom;
use rand::Rng;

use crate::dataset::BinaryLabelDataset;
use crate::error::{Error, Result};
use crate::rng::component_rng;

/// A training-set resampling strategy.
pub trait Resampler: Send + Sync {
    /// Human-readable name (for run metadata).
    fn name(&self) -> &'static str;

    /// Produces the resampled training set. Implementations must derive all
    /// randomness from `seed` for reproducibility.
    fn resample(&self, train: &BinaryLabelDataset, seed: u64) -> Result<BinaryLabelDataset>;
}

/// Identity resampler (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoResampling;

impl Resampler for NoResampling {
    fn name(&self) -> &'static str {
        "no_resampling"
    }

    fn resample(&self, train: &BinaryLabelDataset, _seed: u64) -> Result<BinaryLabelDataset> {
        Ok(train.clone())
    }
}

/// Bootstrap resampling: draws `fraction * n` rows with replacement.
#[derive(Debug, Clone, Copy)]
pub struct Bootstrap {
    /// Size of the bootstrap sample relative to the input (1.0 = same size).
    pub fraction: f64,
}

impl Default for Bootstrap {
    fn default() -> Self {
        Bootstrap { fraction: 1.0 }
    }
}

impl Resampler for Bootstrap {
    fn name(&self) -> &'static str {
        "bootstrap"
    }

    fn resample(&self, train: &BinaryLabelDataset, seed: u64) -> Result<BinaryLabelDataset> {
        if !(self.fraction.is_finite() && self.fraction > 0.0) {
            return Err(Error::InvalidParameter {
                name: "fraction",
                message: format!("{} is not a positive finite number", self.fraction),
            });
        }
        let n = train.n_rows();
        if n == 0 {
            return Err(Error::EmptyData("bootstrap input".to_string()));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let m = ((n as f64) * self.fraction).round().max(1.0) as usize;
        let mut rng = component_rng(seed, "resampler/bootstrap");
        let indices: Vec<usize> = (0..m).map(|_| rng.random_range(0..n)).collect();
        Ok(train.take(&indices))
    }
}

/// Class balancing by random oversampling of the minority label.
///
/// After resampling, the positive and negative classes have equal counts;
/// majority-class rows are kept as-is, minority-class rows are duplicated
/// uniformly at random.
#[derive(Debug, Clone, Copy, Default)]
pub struct OversampleMinorityClass;

impl Resampler for OversampleMinorityClass {
    fn name(&self) -> &'static str {
        "oversample_minority_class"
    }

    fn resample(&self, train: &BinaryLabelDataset, seed: u64) -> Result<BinaryLabelDataset> {
        let labels = train.labels();
        let pos: Vec<usize> = labels
            .iter()
            .enumerate()
            // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
            .filter(|(_, &y)| y == 1.0)
            .map(|(i, _)| i)
            .collect();
        let neg: Vec<usize> = labels
            .iter()
            .enumerate()
            // audit: allow(float-eq, reason = "binary labels are exactly 0.0/1.0 by construction")
            .filter(|(_, &y)| y == 0.0)
            .map(|(i, _)| i)
            .collect();
        if pos.is_empty() || neg.is_empty() {
            return Err(Error::EmptyData(
                "one label class is empty; cannot balance".to_string(),
            ));
        }
        let (minority, majority) = if pos.len() < neg.len() {
            (&pos, &neg)
        } else {
            (&neg, &pos)
        };
        let deficit = majority.len() - minority.len();
        let mut rng = component_rng(seed, "resampler/oversample");
        let mut indices: Vec<usize> = (0..train.n_rows()).collect();
        indices.reserve(deficit);
        for _ in 0..deficit {
            // audit: allow(expect, reason = "the empty-class check above guarantees both classes are non-empty")
            indices.push(*minority.choose(&mut rng).expect("minority non-empty"));
        }
        Ok(train.take(&indices))
    }
}

/// Stratified subsampling to a target size, preserving the joint
/// (label × group) cell proportions. Listed as future work in the paper
/// ("preprocessing techniques such as stratified sampling", §7).
#[derive(Debug, Clone, Copy)]
pub struct StratifiedSubsample {
    /// Fraction of rows to keep in each (label × group) cell, in `(0, 1]`.
    pub fraction: f64,
}

impl Resampler for StratifiedSubsample {
    fn name(&self) -> &'static str {
        "stratified_subsample"
    }

    fn resample(&self, train: &BinaryLabelDataset, seed: u64) -> Result<BinaryLabelDataset> {
        if !(self.fraction.is_finite() && self.fraction > 0.0 && self.fraction <= 1.0) {
            return Err(Error::InvalidParameter {
                name: "fraction",
                message: format!("{} not in (0, 1]", self.fraction),
            });
        }
        let mut rng = component_rng(seed, "resampler/stratified");
        let labels = train.labels();
        let mask = train.privileged_mask();
        let mut keep: Vec<usize> = Vec::new();
        for y in [0.0, 1.0] {
            for p in [false, true] {
                let mut cell: Vec<usize> = (0..train.n_rows())
                    .filter(|&i| labels[i] == y && mask[i] == p)
                    .collect();
                if cell.is_empty() {
                    continue;
                }
                use rand::seq::SliceRandom;
                cell.shuffle(&mut rng);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let k = ((cell.len() as f64) * self.fraction).round().max(1.0) as usize;
                keep.extend_from_slice(&cell[..k.min(cell.len())]);
            }
        }
        keep.sort_unstable();
        if keep.is_empty() {
            return Err(Error::EmptyData(
                "stratified subsample produced no rows".to_string(),
            ));
        }
        Ok(train.take(&keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnKind};
    use crate::frame::DataFrame;
    use crate::schema::{ProtectedAttribute, Schema};

    fn dataset() -> BinaryLabelDataset {
        // 8 rows: 6 negatives, 2 positives; alternating groups.
        let n = 8;
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(f64::from)))
            .unwrap()
            .with_column(
                "g",
                Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })),
            )
            .unwrap()
            .with_column(
                "y",
                Column::from_strs((0..n).map(|i| if i < 2 { "pos" } else { "neg" })),
            )
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        BinaryLabelDataset::new(
            frame,
            schema,
            ProtectedAttribute::categorical("g", &["a"]),
            "pos",
        )
        .unwrap()
    }

    #[test]
    fn no_resampling_is_identity() {
        let ds = dataset();
        let out = NoResampling.resample(&ds, 1).unwrap();
        assert_eq!(out.labels(), ds.labels());
        assert_eq!(out.n_rows(), ds.n_rows());
    }

    #[test]
    fn bootstrap_size_and_determinism() {
        let ds = dataset();
        let a = Bootstrap { fraction: 1.5 }.resample(&ds, 3).unwrap();
        assert_eq!(a.n_rows(), 12);
        let b = Bootstrap { fraction: 1.5 }.resample(&ds, 3).unwrap();
        assert_eq!(a.labels(), b.labels());
        let c = Bootstrap { fraction: 1.5 }.resample(&ds, 4).unwrap();
        assert_eq!(c.n_rows(), 12); // same size, very likely different rows
    }

    #[test]
    fn bootstrap_rejects_bad_fraction() {
        let ds = dataset();
        assert!(Bootstrap { fraction: 0.0 }.resample(&ds, 0).is_err());
        assert!(Bootstrap { fraction: f64::NAN }.resample(&ds, 0).is_err());
    }

    #[test]
    fn oversampling_balances_classes() {
        let ds = dataset();
        let out = OversampleMinorityClass.resample(&ds, 5).unwrap();
        let pos = out.labels().iter().filter(|&&y| y == 1.0).count();
        let neg = out.labels().iter().filter(|&&y| y == 0.0).count();
        assert_eq!(pos, neg);
        assert_eq!(out.n_rows(), 12); // 6 + 6
    }

    #[test]
    fn oversampling_requires_both_classes() {
        let ds = dataset();
        let only_neg_idx: Vec<usize> = (2..8).collect();
        let only_neg = ds.take(&only_neg_idx);
        assert!(OversampleMinorityClass.resample(&only_neg, 0).is_err());
    }

    #[test]
    fn stratified_preserves_cells() {
        let ds = dataset();
        let out = StratifiedSubsample { fraction: 0.5 }
            .resample(&ds, 11)
            .unwrap();
        // Each nonempty (label, group) cell keeps >= 1 row.
        assert!(out.n_rows() >= 4);
        assert!(out.n_rows() < ds.n_rows());
        assert!(out.labels().contains(&1.0));
        assert!(out.labels().contains(&0.0));
    }

    #[test]
    fn stratified_rejects_bad_fraction() {
        let ds = dataset();
        assert!(StratifiedSubsample { fraction: 1.5 }
            .resample(&ds, 0)
            .is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NoResampling.name(), "no_resampling");
        assert_eq!(Bootstrap::default().name(), "bootstrap");
        assert_eq!(OversampleMinorityClass.name(), "oversample_minority_class");
        assert_eq!(
            StratifiedSubsample { fraction: 0.5 }.name(),
            "stratified_subsample"
        );
    }
}
