//! Generic work-stealing parallelism over scoped threads.
//!
//! The paper's experiments are sweeps (1,344 runs in §5.1; 216 in §5.2;
//! 530 in §5.3), and each tuned run performs a 5-fold × many-candidate grid
//! search — hundreds of independent model fits. [`parallel_map`] is the one
//! primitive both levels share: it distributes independent items over a
//! fixed thread budget via an atomic work-stealing cursor (idle workers
//! claim the next unclaimed item, so uneven item costs cannot stall the
//! pool) and returns results in **submission order**, which keeps every
//! parallel caller bit-identical to its sequential equivalent.
//!
//! No extra dependency is needed: `std::thread::scope` lets the workers
//! borrow the closure and input non-`'static` data directly.

// audit: allow-file(expect, reason = "a poisoned slot mutex means a worker closure panicked; surfacing that panic is the intended behavior")
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `threads` worker threads.
///
/// Results come back in submission order regardless of which worker ran
/// which item, so `parallel_map(v, t, f)` is observationally identical to
/// `v.into_iter().map(f).collect()` for any `t` — callers that derive all
/// randomness from per-item seeds therefore get bit-identical output at
/// every thread count.
///
/// `threads` is clamped to `[1, items.len()]`; a budget of 1 runs inline
/// without spawning. If `f` panics, the panic propagates to the caller
/// once the scope unwinds.
#[must_use]
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // One lock per slot: claiming item i and storing result i never
    // contends with work on any other slot. The atomic cursor is the
    // work-stealing queue — workers race to increment it and own whatever
    // index they receive.
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|item| Mutex::new((Some(item), None)))
        .collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                if ix >= n {
                    break;
                }
                let item = slots[ix]
                    .lock()
                    .expect("slot poisoned")
                    .0
                    .take()
                    .expect("item claimed once");
                let out = f(item);
                slots[ix].lock().expect("slot poisoned").1 = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .1
                .expect("item ran")
        })
        .collect()
}

/// Splits a total core budget between an outer job level and an inner
/// per-job level so the two do not oversubscribe: the outer level gets
/// `min(total, outer_jobs)` workers and each job's inner work gets the
/// remaining factor (`total / outer`, at least 1).
///
/// This is the contract between sweep-level parallelism
/// (`fairprep-core::runner`) and model-selection parallelism
/// (`fairprep-ml::selection`): a sweep of 4 jobs on 16 cores runs 4 jobs
/// × 4 CV threads, while a single run on 16 cores gives all 16 to CV.
#[must_use]
pub fn split_budget(total: usize, outer_jobs: usize) -> (usize, usize) {
    let total = total.max(1);
    let outer = total.min(outer_jobs.max(1));
    let inner = (total / outer).max(1);
    (outer, inner)
}

/// The machine's available parallelism, falling back to 1 when unknown.
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map(items.clone(), 1, |i| {
            i.wrapping_mul(0x9E37_79B9).rotate_left(13)
        });
        for threads in [2, 3, 8, 64] {
            let par = parallel_map(items.clone(), threads, |i| {
                i.wrapping_mul(0x9E37_79B9).rotate_left(13)
            });
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_item_costs_are_stolen_not_stalled() {
        // One expensive item up front must not serialize the rest: with 4
        // workers the total wall time stays far below the sequential sum.
        let items: Vec<u64> = (0..16).collect();
        let start = std::time::Instant::now();
        let out = parallel_map(items, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis(if i == 0 {
                40
            } else {
                10
            }));
            i
        });
        let elapsed = start.elapsed();
        assert_eq!(out.len(), 16);
        // Sequential would take 40 + 15*10 = 190ms; 4 workers need ~50-90ms.
        assert!(elapsed.as_millis() < 190, "no speedup: {elapsed:?}");
    }

    #[test]
    fn non_static_borrows_are_allowed() {
        let base = [10.0_f64, 20.0, 30.0];
        let items: Vec<usize> = (0..3).collect();
        let out = parallel_map(items, 2, |i| base[i] + 1.0);
        assert_eq!(out, vec![11.0, 21.0, 31.0]);
    }

    #[test]
    fn budget_split_covers_the_shapes() {
        assert_eq!(split_budget(16, 4), (4, 4)); // sweep: 4 jobs x 4 CV threads
        assert_eq!(split_budget(16, 1), (1, 16)); // single run: all cores to CV
        assert_eq!(split_budget(4, 100), (4, 1)); // more jobs than cores
        assert_eq!(split_budget(0, 0), (1, 1)); // degenerate inputs clamp
        assert_eq!(split_budget(7, 2), (2, 3)); // floor division, no oversubscription
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
