//! Generic work-stealing parallelism over scoped threads.
//!
//! The paper's experiments are sweeps (1,344 runs in §5.1; 216 in §5.2;
//! 530 in §5.3), and each tuned run performs a 5-fold × many-candidate grid
//! search — hundreds of independent model fits. [`parallel_map`] is the one
//! primitive both levels share: it distributes independent items over a
//! fixed thread budget via an atomic work-stealing cursor (idle workers
//! claim the next unclaimed item, so uneven item costs cannot stall the
//! pool) and returns results in **submission order**, which keeps every
//! parallel caller bit-identical to its sequential equivalent.
//!
//! No extra dependency is needed: `std::thread::scope` lets the workers
//! borrow the closure and input non-`'static` data directly.

// audit: allow-file(expect, reason = "a poisoned slot mutex means a worker closure panicked; surfacing that panic is the intended behavior")
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A captured worker panic: the payload message of a job that unwound.
///
/// Produced by [`parallel_map_catching`] and [`catch_panic`]. Sweep
/// runners convert this into a per-slot error so one poisoned run cannot
/// discard the results of every other run in the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload rendered as text (`&str` and `String` payloads
    /// verbatim; anything else becomes `"opaque panic payload"`).
    pub message: String,
}

impl JobPanic {
    fn from_payload(payload: &(dyn std::any::Any + Send)) -> JobPanic {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        JobPanic { message }
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panic: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Runs `f`, converting an unwind into `Err(JobPanic)`.
///
/// The `AssertUnwindSafe` is sound by construction for sweep jobs: each
/// job owns its state (experiments are built inside the job closure) and
/// a panicked job's partial state is dropped with the closure, so no
/// broken invariant can be observed afterwards.
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> std::result::Result<R, JobPanic> {
    std::panic::catch_unwind(AssertUnwindSafe(f)).map_err(|p| JobPanic::from_payload(p.as_ref()))
}

/// Maps `f` over `items` on up to `threads` worker threads.
///
/// Results come back in submission order regardless of which worker ran
/// which item, so `parallel_map(v, t, f)` is observationally identical to
/// `v.into_iter().map(f).collect()` for any `t` — callers that derive all
/// randomness from per-item seeds therefore get bit-identical output at
/// every thread count.
///
/// `threads` is clamped to `[1, items.len()]`; a budget of 1 runs inline
/// without spawning. If `f` panics, the panic propagates to the caller
/// once the scope unwinds.
#[must_use]
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_worker(items, threads, |_worker, item| f(item))
}

/// Like [`parallel_map`], but the closure also receives the stable index
/// of the worker thread running the item (`0..threads`).
///
/// The worker index exists for *sharded side effects*: a job that bumps
/// per-worker telemetry shards (see `fairprep_trace::telemetry`) uses it
/// to land on a contention-free cache line. Because shard merges are
/// commutative sums, results — and any sharded totals — remain identical
/// at every thread count; the submission-order return contract is the
/// same as [`parallel_map`]'s. With a budget of 1 everything runs inline
/// as worker 0.
#[must_use]
pub fn parallel_map_worker<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(|item| f(0, item)).collect();
    }

    // One lock per slot: claiming item i and storing result i never
    // contends with work on any other slot. The atomic cursor is the
    // work-stealing queue — workers race to increment it and own whatever
    // index they receive.
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|item| Mutex::new((Some(item), None)))
        .collect();
    let next = AtomicUsize::new(0);

    scoped_workers(threads, |worker| loop {
        let ix = next.fetch_add(1, Ordering::Relaxed);
        if ix >= n {
            break;
        }
        let item = slots[ix]
            // audit: allow(shared-mut-capture, reason = "slot i is claimed by exactly one worker via the atomic cursor; results land by index, so the merge order is submission order regardless of scheduling")
            .lock()
            .expect("slot poisoned")
            .0
            .take()
            .expect("item claimed once");
        let out = f(worker, item);
        // audit: allow(shared-mut-capture, reason = "same per-slot lock: one writer per index, deterministic merge by position")
        slots[ix].lock().expect("slot poisoned").1 = Some(out);
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .1
                .expect("item ran")
        })
        .collect()
}

/// Like [`parallel_map`], but isolates panics per item: a job that
/// unwinds yields `Err(JobPanic)` in its slot while every other slot
/// keeps its result.
///
/// [`parallel_map`] deliberately propagates the first panic and discards
/// all completed work — correct for programming errors inside fold jobs,
/// but fatal for sweep engines where one poisoned run out of a thousand
/// must not kill hours of completed work. Sweep-level callers use this
/// variant and record the panic as a per-run failure.
///
/// The unwind-safety argument for the blanket `AssertUnwindSafe` lives on
/// [`catch_panic`]; submission order and thread-count invariance are
/// inherited from [`parallel_map`] (the catching wrapper is applied
/// per-item, inside the slot).
#[must_use]
pub fn parallel_map_catching<T, R, F>(
    items: Vec<T>,
    threads: usize,
    f: F,
) -> Vec<std::result::Result<R, JobPanic>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map(items, threads, |item| catch_panic(|| f(item)))
}

/// Spawns `threads` scoped workers running `worker(worker_index)` and
/// joins them all before returning.
///
/// This is the worker-spawn substrate under [`parallel_map`], exposed so
/// other fixed-pool callers (the scoring server's accept loop, bench
/// client fleets) share one spawning idiom instead of re-rolling
/// `std::thread::scope` each time. The closure borrows non-`'static`
/// state directly; a panic in any worker propagates once the scope
/// unwinds, exactly as in [`parallel_map`].
///
/// `threads` is clamped to at least 1.
pub fn scoped_workers<F>(threads: usize, worker: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let worker = &worker;
            scope.spawn(move || worker(w));
        }
    });
}

/// Splits a total core budget between an outer job level and an inner
/// per-job level so the two do not oversubscribe: the outer level gets
/// `min(total, outer_jobs)` workers and each job's inner work gets the
/// remaining factor (`total / outer`, at least 1).
///
/// This is the contract between sweep-level parallelism
/// (`fairprep-core::runner`) and model-selection parallelism
/// (`fairprep-ml::selection`): a sweep of 4 jobs on 16 cores runs 4 jobs
/// × 4 CV threads, while a single run on 16 cores gives all 16 to CV.
#[must_use]
pub fn split_budget(total: usize, outer_jobs: usize) -> (usize, usize) {
    let total = total.max(1);
    let outer = total.min(outer_jobs.max(1));
    let inner = (total / outer).max(1);
    (outer, inner)
}

/// The machine's available parallelism, falling back to 1 when unknown.
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map(items.clone(), 1, |i| {
            i.wrapping_mul(0x9E37_79B9).rotate_left(13)
        });
        for threads in [2, 3, 8, 64] {
            let par = parallel_map(items.clone(), threads, |i| {
                i.wrapping_mul(0x9E37_79B9).rotate_left(13)
            });
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_item_costs_are_stolen_not_stalled() {
        // One expensive item up front must not serialize the rest: with 4
        // workers the total wall time stays far below the sequential sum.
        let items: Vec<u64> = (0..16).collect();
        let start = std::time::Instant::now();
        let out = parallel_map(items, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis(if i == 0 {
                40
            } else {
                10
            }));
            i
        });
        let elapsed = start.elapsed();
        assert_eq!(out.len(), 16);
        // Sequential would take 40 + 15*10 = 190ms; 4 workers need ~50-90ms.
        assert!(elapsed.as_millis() < 190, "no speedup: {elapsed:?}");
    }

    #[test]
    fn non_static_borrows_are_allowed() {
        let base = [10.0_f64, 20.0, 30.0];
        let items: Vec<usize> = (0..3).collect();
        let out = parallel_map(items, 2, |i| base[i] + 1.0);
        assert_eq!(out, vec![11.0, 21.0, 31.0]);
    }

    #[test]
    fn budget_split_covers_the_shapes() {
        assert_eq!(split_budget(16, 4), (4, 4)); // sweep: 4 jobs x 4 CV threads
        assert_eq!(split_budget(16, 1), (1, 16)); // single run: all cores to CV
        assert_eq!(split_budget(4, 100), (4, 1)); // more jobs than cores
        assert_eq!(split_budget(0, 0), (1, 1)); // degenerate inputs clamp
        assert_eq!(split_budget(7, 2), (2, 3)); // floor division, no oversubscription
    }

    /// A zero anywhere in the budget arithmetic must clamp to 1, never
    /// underflow or hand out a zero-thread level (`0 / outer` and
    /// `total / 0` were both reachable from `--threads 0` sweeps).
    #[test]
    fn budget_split_clamps_zero_inputs_to_one() {
        assert_eq!(split_budget(0, 4), (1, 1)); // no cores, 4 jobs
        assert_eq!(split_budget(4, 0), (1, 4)); // 4 cores, empty job list
        assert_eq!(split_budget(0, 0), (1, 1)); // nothing at all
        for total in 0..6 {
            for jobs in 0..6 {
                let (outer, inner) = split_budget(total, jobs);
                assert!(outer >= 1 && inner >= 1, "({total}, {jobs}) -> zero level");
                assert!(
                    outer * inner <= total.max(1),
                    "({total}, {jobs}) oversubscribed"
                );
            }
        }
    }

    /// Regression test for the sweep-killing panic: one panicking job out
    /// of 16 must surface as a single `Err` slot while the other 15 keep
    /// their results. `parallel_map` itself deliberately propagates the
    /// panic (and with it discards all completed work); the catching
    /// variant is what sweep engines run on.
    #[test]
    fn one_panicking_job_does_not_kill_the_batch() {
        let items: Vec<usize> = (0..16).collect();
        let out = parallel_map_catching(items, 4, |i| {
            assert!(i != 7, "injected failure in job 7");
            i * 10
        });
        assert_eq!(out.len(), 16);
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 15);
        for (i, slot) in out.iter().enumerate() {
            if i == 7 {
                let panic = slot.as_ref().expect_err("job 7 panicked");
                assert!(panic.message.contains("injected failure"), "{panic}");
            } else {
                assert_eq!(slot.as_ref().ok().copied(), Some(i * 10));
            }
        }
    }

    #[test]
    fn catching_map_is_order_and_thread_invariant() {
        let run = |threads| {
            parallel_map_catching((0..20).collect::<Vec<usize>>(), threads, |i| {
                assert!(i % 5 != 3, "boom {i}");
                i
            })
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq, par);
        assert_eq!(seq.iter().filter(|r| r.is_err()).count(), 4);
    }

    #[test]
    fn catch_panic_renders_str_string_and_opaque_payloads() {
        assert_eq!(catch_panic(|| 3), Ok(3));
        let p = catch_panic(|| panic!("plain &str")).unwrap_err();
        assert_eq!(p.message, "plain &str");
        let p = catch_panic(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(p.message, "formatted 7");
        let p = catch_panic(|| std::panic::panic_any(42_i32)).unwrap_err();
        assert_eq!(p.message, "opaque panic payload");
        assert_eq!(p.to_string(), "panic: opaque panic payload");
    }

    #[test]
    fn worker_indices_stay_in_range_and_results_stay_ordered() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4, 8] {
            let out = parallel_map_worker(items.clone(), threads, |w, i| {
                assert!(w < threads, "worker {w} out of range at {threads} threads");
                (w, i * 3)
            });
            assert_eq!(
                out.iter().map(|(_, r)| *r).collect::<Vec<_>>(),
                (0..64).map(|i| i * 3).collect::<Vec<_>>(),
                "threads={threads}"
            );
            if threads == 1 {
                assert!(out.iter().all(|(w, _)| *w == 0), "inline runs as worker 0");
            }
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn scoped_workers_runs_each_index_once_and_joins() {
        let hits = Mutex::new(vec![0usize; 6]);
        scoped_workers(6, |w| {
            hits.lock().expect("slot poisoned")[w] += 1;
        });
        // The call returned, so every worker has been joined.
        assert_eq!(*hits.lock().expect("slot poisoned"), vec![1; 6]);
    }

    #[test]
    fn scoped_workers_clamps_zero_threads_to_one() {
        let ran = AtomicUsize::new(0);
        scoped_workers(0, |w| {
            assert_eq!(w, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
