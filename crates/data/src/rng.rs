//! Reproducible random-number generation.
//!
//! One of the shortcomings the paper identifies (§2.5) is that existing
//! studies do not thread a fixed random seed through *all* components.
//! FairPrep fixes this by deriving a dedicated, stable sub-seed for every
//! component from the experiment's master seed, so that
//!
//! * the same master seed always reproduces the same run, and
//! * adding or removing one component never perturbs the random stream
//!   consumed by another (each component's stream depends only on the master
//!   seed and the component's own label).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a stable 64-bit sub-seed from a master seed and a component label.
///
/// The derivation is a small, documented mixing function (an FNV-1a hash of
/// the label folded into a SplitMix64 step over the master seed). It is *not*
/// cryptographic; it only needs to decorrelate streams for statistically
/// independent component behaviour.
#[must_use]
pub fn derive_seed(master: u64, label: &str) -> u64 {
    // FNV-1a over the label bytes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finalizer over (master ^ label-hash).
    let mut z = master ^ h;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Creates a seeded [`StdRng`] for a component, derived from the master seed.
#[must_use]
pub fn component_rng(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// Creates a seeded [`StdRng`] directly from a master seed.
#[must_use]
pub fn master_rng(master: u64) -> StdRng {
    StdRng::seed_from_u64(master)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, "splitter"), derive_seed(42, "splitter"));
    }

    #[test]
    fn derive_seed_separates_labels() {
        assert_ne!(derive_seed(42, "splitter"), derive_seed(42, "learner"));
        assert_ne!(derive_seed(42, "a"), derive_seed(42, "b"));
    }

    #[test]
    fn derive_seed_separates_masters() {
        assert_ne!(derive_seed(1, "splitter"), derive_seed(2, "splitter"));
    }

    #[test]
    fn component_rng_streams_are_reproducible() {
        let mut a = component_rng(7, "imputer");
        let mut b = component_rng(7, "imputer");
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn component_rng_streams_differ_between_components() {
        let mut a = component_rng(7, "imputer");
        let mut b = component_rng(7, "scaler");
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 2, "streams should be decorrelated");
    }

    #[test]
    fn empty_label_is_valid() {
        // No panic, still deterministic.
        assert_eq!(derive_seed(0, ""), derive_seed(0, ""));
    }
}
