//! Runtime taint-tracking for test-set isolation.
//!
//! The static audit pass (`fairprep-audit`) catches *lexical* isolation
//! violations — a `.fit(` call on something named `test` — but cannot see
//! through aliasing: a test partition bound to an innocently-named variable
//! slips past any lexer. This module is the dynamic complement: every
//! [`DataFrame`](crate::frame::DataFrame) carries a [`Provenance`] tag that
//! records which side of the train/test wall its rows came from, and every
//! data-dependent `fit` entry point in the workspace guards against
//! [`Provenance::Test`] inputs with a `debug_assert!` (via [`guard_fit`]).
//!
//! Tags propagate through the row-preserving operations the lifecycle uses
//! (`take`, `filter`, `select`, `concat`, resampling, imputation on clones)
//! and are assigned at the single place partitions are born: the seeded
//! split. Rebuilding a frame from scratch (e.g. `FrameBuilder`) resets the
//! tag to [`Provenance::Derived`]; the guards are a debug-build safety net
//! for the lifecycle paths, not an information-flow type system.

/// Which partition a frame's rows were drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Provenance {
    /// Rows from the training partition: fitting on them is allowed.
    Train,
    /// Rows from the sealed test partition: fitting on them is a leak.
    Test,
    /// Rows of unknown or mixed origin (freshly built frames, validation
    /// data, concatenations across partitions). Fitting is allowed — the
    /// guard only rejects provable leaks, it never false-positives.
    #[default]
    Derived,
}

impl Provenance {
    /// `true` when the tag proves the rows came from the sealed test set.
    #[must_use]
    pub fn is_test(self) -> bool {
        self == Provenance::Test
    }

    /// Combines the tags of two inputs feeding one output (e.g. `concat`):
    /// equal tags survive, mixed origins degrade to [`Provenance::Derived`].
    #[must_use]
    pub fn merged(self, other: Provenance) -> Provenance {
        if self == other {
            self
        } else {
            Provenance::Derived
        }
    }

    /// Stable lowercase name (for diagnostics).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Provenance::Train => "train",
            Provenance::Test => "test",
            Provenance::Derived => "derived",
        }
    }
}

/// The leak guard called by every data-dependent `fit` entry point: rejects
/// test-tagged inputs in debug builds with a diagnostic naming the
/// component. Release builds compile this to nothing, so the hot path pays
/// zero cost.
#[inline]
pub fn guard_fit(provenance: Provenance, component: &str) {
    debug_assert!(
        !provenance.is_test(),
        "test-set isolation violation: {component} was asked to fit on \
         data tagged Provenance::Test; fitting may only see training data \
         (FairPrep §3 — the test set is sealed in the vault)"
    );
    // `component` is deliberately read in release builds too, so callers
    // cannot accidentally compile the guard into dead code warnings.
    let _ = component;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_derived() {
        assert_eq!(Provenance::default(), Provenance::Derived);
    }

    #[test]
    fn merge_rules() {
        use Provenance::{Derived, Test, Train};
        assert_eq!(Train.merged(Train), Train);
        assert_eq!(Test.merged(Test), Test);
        assert_eq!(Train.merged(Test), Derived);
        assert_eq!(Train.merged(Derived), Derived);
    }

    #[test]
    fn only_test_is_test() {
        assert!(Provenance::Test.is_test());
        assert!(!Provenance::Train.is_test());
        assert!(!Provenance::Derived.is_test());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Provenance::Train.name(), "train");
        assert_eq!(Provenance::Test.name(), "test");
        assert_eq!(Provenance::Derived.name(), "derived");
    }

    #[test]
    fn guard_accepts_train_and_derived() {
        guard_fit(Provenance::Train, "unit-test");
        guard_fit(Provenance::Derived, "unit-test");
    }

    #[test]
    #[should_panic(expected = "test-set isolation violation")]
    #[cfg(debug_assertions)]
    fn guard_fires_on_test() {
        guard_fit(Provenance::Test, "unit-test");
    }
}
