//! # fairprep-data
//!
//! The tabular data substrate of the FairPrep workspace: typed columns with
//! first-class missing values, a minimal column-oriented data frame, the
//! [`BinaryLabelDataset`](dataset::BinaryLabelDataset) abstraction (protected
//! groups, binary labels, instance weights), seeded splitting and resampling,
//! CSV ingestion, and exploratory statistics.
//!
//! This crate replaces the pandas + AIF360-dataset layer the original Python
//! FairPrep builds on. It is deliberately scoped to exactly the operations
//! the FairPrep lifecycle needs.
//!
//! ## Example
//!
//! ```
//! use fairprep_data::prelude::*;
//!
//! let frame = DataFrame::new()
//!     .with_column("score", Column::from_f64([700.0, 520.0, 640.0, 480.0]))
//!     .unwrap()
//!     .with_column("sex", Column::from_strs(["m", "f", "m", "f"]))
//!     .unwrap()
//!     .with_column("risk", Column::from_strs(["good", "bad", "good", "bad"]))
//!     .unwrap();
//!
//! let schema = Schema::new()
//!     .numeric_feature("score")
//!     .metadata("sex", ColumnKind::Categorical)
//!     .label("risk");
//!
//! let dataset = BinaryLabelDataset::new(
//!     frame,
//!     schema,
//!     ProtectedAttribute::categorical("sex", &["m"]),
//!     "good",
//! )
//! .unwrap();
//!
//! assert_eq!(dataset.labels(), &[1.0, 0.0, 1.0, 0.0]);
//! assert_eq!(dataset.base_rate(Some(true)), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chunked;
pub mod column;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod frame;
pub mod parallel;
pub mod profile;
pub mod provenance;
pub mod resample;
pub mod rng;
pub mod schema;
pub mod split;
pub mod stats;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::chunked::{
        read_csv_chunked, train_val_test_split_chunked, ChunkSink, ChunkStats, ChunkedFrame,
    };
    pub use crate::column::{Column, ColumnKind, OwnedValue, Value};
    pub use crate::dataset::BinaryLabelDataset;
    pub use crate::error::{Error, Result};
    pub use crate::frame::{DataFrame, FrameBuilder};
    pub use crate::parallel::{available_threads, parallel_map, split_budget};
    pub use crate::provenance::Provenance;
    pub use crate::resample::{Bootstrap, NoResampling, OversampleMinorityClass, Resampler};
    pub use crate::schema::{GroupSpec, ProtectedAttribute, Role, Schema};
    pub use crate::split::{
        stratified_train_val_test_split, train_val_test_split, SplitSpec, TrainValTest,
    };
}
