//! Minimal CSV reading/writing for frames.
//!
//! Experiments "write an output file with these metrics by default" (§4) and
//! datasets are commonly distributed as CSV. The parser supports RFC-4180
//! style quoting, configurable missing-value tokens, and typed ingestion
//! driven by a column-kind specification.

use std::io::{BufRead, Write};

use crate::column::{ColumnKind, OwnedValue, Value};
use crate::error::{Error, Result};
use crate::frame::{DataFrame, FrameBuilder};

/// Tokens interpreted as missing values when reading (compared after
/// trimming surrounding whitespace).
pub const DEFAULT_MISSING_TOKENS: &[&str] = &["", "?", "NA", "N/A", "null", "NULL"];

/// Strips a single trailing carriage return from a record.
///
/// Windows-saved dataset files end records with `\r\n`. `BufRead::lines`
/// strips the pair itself, but lines that reach the parser through other
/// routes (pre-split strings, readers with unusual buffering) can still
/// carry the `\r` — which would otherwise survive inside a quoted last
/// field and leak into its categorical value, splitting one category into
/// two (`"high"` vs `"high\r"`).
fn strip_cr(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

/// Splits one CSV record into fields, honoring double-quote escaping.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let line = strip_cr(line);
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(Error::Csv {
                            line: line_no,
                            message: "quote inside unquoted field".to_string(),
                        });
                    }
                }
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            line: line_no,
            message: "unterminated quote".to_string(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// A header-resolved, typed CSV record stream — the shared core of the
/// in-memory [`read_csv`] and the chunked
/// [`read_csv_chunked`](crate::chunked::read_csv_chunked).
///
/// Both readers drive the *same* record splitter, header resolution,
/// missing-token matching, and cell typing through this type, which is what
/// makes chunked ingest bit-identical to a single-pass read by
/// construction: the only difference between the two paths is how the typed
/// rows are batched afterwards.
pub struct TypedCsvReader<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    header_len: usize,
    positions: Vec<(usize, String, ColumnKind)>,
    missing_tokens: Vec<String>,
}

impl<R: BufRead> TypedCsvReader<R> {
    /// Parses the header record and resolves the requested columns.
    ///
    /// The first record must be a header; `kinds` maps each header name to
    /// the column type to ingest. Header columns absent from `kinds` are
    /// skipped. Cells matching one of `missing_tokens` (compared after
    /// trimming surrounding whitespace) become missing values.
    pub fn new(reader: R, kinds: &[(&str, ColumnKind)], missing_tokens: &[&str]) -> Result<Self> {
        let mut lines = reader.lines().enumerate();
        let header = match lines.next() {
            Some((_, line)) => parse_record(&line?, 1)?,
            None => {
                return Err(Error::Csv {
                    line: 1,
                    message: "empty input".to_string(),
                })
            }
        };
        let mut positions = Vec::with_capacity(kinds.len());
        for (name, kind) in kinds {
            let pos = header
                .iter()
                .position(|h| h.trim() == *name)
                .ok_or_else(|| Error::ColumnNotFound((*name).to_string()))?;
            positions.push((pos, (*name).to_string(), *kind));
        }
        Ok(TypedCsvReader {
            lines,
            header_len: header.len(),
            positions,
            missing_tokens: missing_tokens.iter().map(|t| (*t).to_string()).collect(),
        })
    }

    /// The resolved output columns as a [`FrameBuilder`]/chunk spec, in
    /// request order.
    #[must_use]
    pub fn spec(&self) -> Vec<(String, ColumnKind)> {
        self.positions
            .iter()
            .map(|(_, n, k)| (n.clone(), *k))
            .collect()
    }

    /// Reads the next data record as typed cells in request-column order.
    /// Blank lines are skipped; `None` signals end of input.
    #[allow(clippy::should_implement_trait)]
    pub fn next_row(&mut self) -> Option<Result<Vec<OwnedValue>>> {
        for (idx, line) in self.lines.by_ref() {
            let line_no = idx + 1;
            let line = match line {
                Ok(line) => line,
                Err(e) => return Some(Err(e.into())),
            };
            if line.trim().is_empty() {
                continue;
            }
            return Some(self.typed_row(&line, line_no));
        }
        None
    }

    fn typed_row(&self, line: &str, line_no: usize) -> Result<Vec<OwnedValue>> {
        let record = parse_record(line, line_no)?;
        if record.len() != self.header_len {
            return Err(Error::Csv {
                line: line_no,
                message: format!("expected {} fields, got {}", self.header_len, record.len()),
            });
        }
        let mut row = Vec::with_capacity(self.positions.len());
        for (pos, name, kind) in &self.positions {
            let raw = record[*pos].trim();
            if self.missing_tokens.iter().any(|t| t == raw) {
                row.push(OwnedValue::Missing);
                continue;
            }
            match kind {
                ColumnKind::Numeric => {
                    let v: f64 = raw.parse().map_err(|_| Error::Csv {
                        line: line_no,
                        message: format!("column {name}: `{raw}` is not numeric"),
                    })?;
                    row.push(OwnedValue::Numeric(v));
                }
                ColumnKind::Categorical => row.push(OwnedValue::Categorical(raw.to_string())),
            }
        }
        Ok(row)
    }
}

/// Reads a typed frame from CSV text.
///
/// The first record must be a header; `kinds` maps each header name to the
/// column type to ingest. Header columns absent from `kinds` are skipped.
/// Cells matching one of `missing_tokens` become missing values.
pub fn read_csv<R: BufRead>(
    reader: R,
    kinds: &[(&str, ColumnKind)],
    missing_tokens: &[&str],
) -> Result<DataFrame> {
    let mut records = TypedCsvReader::new(reader, kinds, missing_tokens)?;
    let spec = records.spec();
    let spec_refs: Vec<(&str, ColumnKind)> = spec.iter().map(|(n, k)| (n.as_str(), *k)).collect();
    let mut builder = FrameBuilder::new(&spec_refs);
    while let Some(row) = records.next_row() {
        builder.push_row(row?)?;
    }
    builder.finish()
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes a frame as CSV (header + records). Missing cells become empty
/// fields.
pub fn write_csv<W: Write>(frame: &DataFrame, writer: &mut W) -> Result<()> {
    let header: Vec<String> = frame.column_names().iter().map(|n| escape(n)).collect();
    writeln!(writer, "{}", header.join(","))?;
    let mut record = String::new();
    for i in 0..frame.n_rows() {
        record.clear();
        for (j, name) in frame.column_names().iter().enumerate() {
            if j > 0 {
                record.push(',');
            }
            // audit: allow(expect, reason = "iterating the frame's own column names, so every lookup succeeds")
            match frame.column(name).expect("column exists").get(i) {
                Value::Numeric(v) => record.push_str(&format_float(v)),
                Value::Categorical(s) => record.push_str(&escape(s)),
                Value::Missing => {}
            }
        }
        writeln!(writer, "{record}")?;
    }
    Ok(())
}

/// Formats a float with full roundtrip precision but without unnecessary
/// trailing digits.
fn format_float(v: f64) -> String {
    let s = format!("{v}");
    // `{}` on f64 already uses the shortest representation that roundtrips.
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "age,job,income\n25,clerk,low\n?,\"cook, senior\",high\n40,,low\n";

    fn kinds() -> Vec<(&'static str, ColumnKind)> {
        vec![
            ("age", ColumnKind::Numeric),
            ("job", ColumnKind::Categorical),
            ("income", ColumnKind::Categorical),
        ]
    }

    #[test]
    fn reads_typed_columns_with_missing() {
        let df = read_csv(Cursor::new(SAMPLE), &kinds(), DEFAULT_MISSING_TOKENS).unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.value(0, "age").unwrap(), Value::Numeric(25.0));
        assert_eq!(df.value(1, "age").unwrap(), Value::Missing);
        assert_eq!(
            df.value(1, "job").unwrap(),
            Value::Categorical("cook, senior")
        );
        assert_eq!(df.value(2, "job").unwrap(), Value::Missing);
    }

    #[test]
    fn column_subset_can_be_requested() {
        let df = read_csv(
            Cursor::new(SAMPLE),
            &[("income", ColumnKind::Categorical)],
            DEFAULT_MISSING_TOKENS,
        )
        .unwrap();
        assert_eq!(df.n_cols(), 1);
        assert_eq!(df.value(1, "income").unwrap(), Value::Categorical("high"));
    }

    #[test]
    fn missing_header_column_is_error() {
        let err = read_csv(
            Cursor::new(SAMPLE),
            &[("salary", ColumnKind::Numeric)],
            DEFAULT_MISSING_TOKENS,
        )
        .unwrap_err();
        assert_eq!(err, Error::ColumnNotFound("salary".to_string()));
    }

    #[test]
    fn malformed_number_is_error_with_line() {
        let bad = "x\nhello\n";
        let err = read_csv(Cursor::new(bad), &[("x", ColumnKind::Numeric)], &[]).unwrap_err();
        match err {
            Error::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ragged_record_is_error() {
        let bad = "a,b\n1\n";
        let err = read_csv(Cursor::new(bad), &[("a", ColumnKind::Numeric)], &[]).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let bad = "a\n\"oops\n";
        let err = read_csv(Cursor::new(bad), &[("a", ColumnKind::Categorical)], &[]).unwrap_err();
        assert!(matches!(err, Error::Csv { .. }));
    }

    #[test]
    fn quoted_quote_roundtrips() {
        let csv = "a\n\"he said \"\"hi\"\"\"\n";
        let df = read_csv(Cursor::new(csv), &[("a", ColumnKind::Categorical)], &[]).unwrap();
        assert_eq!(
            df.value(0, "a").unwrap(),
            Value::Categorical("he said \"hi\"")
        );
    }

    #[test]
    fn write_then_read_roundtrips() {
        let df = read_csv(Cursor::new(SAMPLE), &kinds(), DEFAULT_MISSING_TOKENS).unwrap();
        let mut out = Vec::new();
        write_csv(&df, &mut out).unwrap();
        let back = read_csv(Cursor::new(out), &kinds(), DEFAULT_MISSING_TOKENS).unwrap();
        assert_eq!(back.n_rows(), df.n_rows());
        for name in df.column_names() {
            for i in 0..df.n_rows() {
                assert_eq!(
                    back.value(i, name).unwrap(),
                    df.value(i, name).unwrap(),
                    "mismatch in {name} row {i}"
                );
            }
        }
    }

    /// CRLF fixture: a Windows-saved file must parse identically to its
    /// LF twin — in particular no `\r` may leak into the last field's
    /// categorical value (that would silently split one category into
    /// two, e.g. `high` vs `high\r`).
    #[test]
    fn crlf_line_endings_parse_identically_to_lf() {
        let lf = SAMPLE.to_string();
        let crlf = SAMPLE.replace('\n', "\r\n");
        let a = read_csv(Cursor::new(lf), &kinds(), DEFAULT_MISSING_TOKENS).unwrap();
        let b = read_csv(Cursor::new(crlf), &kinds(), DEFAULT_MISSING_TOKENS).unwrap();
        assert_eq!(a.n_rows(), b.n_rows());
        for name in a.column_names() {
            for i in 0..a.n_rows() {
                assert_eq!(a.value(i, name).unwrap(), b.value(i, name).unwrap());
            }
        }
        if let Value::Categorical(s) = b.value(0, "income").unwrap() {
            assert!(!s.contains('\r'), "carriage return leaked: {s:?}");
            assert_eq!(s, "low");
        } else {
            panic!("income must be categorical");
        }
    }

    /// A quoted last field on a CRLF record keeps the `\r` *outside* the
    /// quoted content, so the value must come back clean even when the
    /// raw record string still carries the terminator.
    #[test]
    fn crlf_after_quoted_last_field_is_stripped() {
        let fields = parse_record("25,\"cook, senior\",\"high\"\r", 1).unwrap();
        assert_eq!(fields, vec!["25", "cook, senior", "high"]);
        // Header lookups are unaffected too.
        let csv = "age,income\r\n25,high\r\n";
        let df = read_csv(
            Cursor::new(csv),
            &[("income", ColumnKind::Categorical)],
            DEFAULT_MISSING_TOKENS,
        )
        .unwrap();
        assert_eq!(df.value(0, "income").unwrap(), Value::Categorical("high"));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a\n1\n\n2\n";
        let df = read_csv(Cursor::new(csv), &[("a", ColumnKind::Numeric)], &[]).unwrap();
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn empty_input_is_error() {
        let err = read_csv(Cursor::new(""), &[("a", ColumnKind::Numeric)], &[]).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 1, .. }));
    }
}
