//! Typed columns with first-class missing values.
//!
//! FairPrep promotes data to a first-class citizen: records with missing
//! values are *kept* and tracked, not silently dropped (§2.4 of the paper
//! criticizes previous studies for removing them). Every cell is therefore
//! an `Option`: `None` models a missing value.

// Ordered maps only: the category dictionary and the mode counters live on
// the seeded path, where `HashMap`'s randomized iteration order is banned
// (enforced by the `fairprep-audit` nondeterminism lints). `mode()` already
// resolves ties deterministically, but a BTreeMap makes the iteration order
// itself reproducible instead of merely harmless.
use std::collections::BTreeMap;

use crate::error::{Error, Result};

/// A single cell value, borrowed from a column.
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    /// A numeric observation.
    Numeric(f64),
    /// A categorical observation.
    Categorical(&'a str),
    /// A missing observation.
    Missing,
}

impl Value<'_> {
    /// Returns `true` for [`Value::Missing`].
    #[must_use]
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Returns the numeric payload, if any.
    #[must_use]
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Numeric(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the categorical payload, if any.
    #[must_use]
    pub fn as_categorical(&self) -> Option<&str> {
        match self {
            Value::Categorical(s) => Some(s),
            _ => None,
        }
    }
}

/// An owned cell value, used when constructing or mutating columns.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// A numeric observation.
    Numeric(f64),
    /// A categorical observation.
    Categorical(String),
    /// A missing observation.
    Missing,
}

impl From<f64> for OwnedValue {
    fn from(v: f64) -> Self {
        OwnedValue::Numeric(v)
    }
}

impl From<&str> for OwnedValue {
    fn from(v: &str) -> Self {
        OwnedValue::Categorical(v.to_string())
    }
}

impl From<String> for OwnedValue {
    fn from(v: String) -> Self {
        OwnedValue::Categorical(v)
    }
}

/// The kind of data a column holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// Floating-point values.
    Numeric,
    /// String categories (dictionary-encoded).
    Categorical,
}

/// A dictionary-encoded categorical column payload.
///
/// Categories are interned once; cells store `u32` codes. This keeps per-cell
/// storage small and makes group-by operations cheap, which matters for the
/// large sweep workloads the benchmark harnesses run.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalData {
    codes: Vec<Option<u32>>,
    categories: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl CategoricalData {
    /// Creates an empty categorical payload.
    #[must_use]
    pub fn new() -> Self {
        CategoricalData {
            codes: Vec::new(),
            categories: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Interns `category` and returns its code.
    pub fn intern(&mut self, category: &str) -> u32 {
        if let Some(&code) = self.index.get(category) {
            return code;
        }
        // audit: allow(expect, reason = "u32 codes overflow only beyond 4 billion distinct categories, far past any supported dataset")
        let code = u32::try_from(self.categories.len()).expect("too many categories");
        self.categories.push(category.to_string());
        self.index.insert(category.to_string(), code);
        code
    }

    /// Appends a (possibly missing) category.
    pub fn push(&mut self, category: Option<&str>) {
        let code = category.map(|c| self.intern(c));
        self.codes.push(code);
    }

    /// Appends a (possibly missing) pre-interned code. The code must
    /// already be valid for this dictionary; out-of-range codes are
    /// rejected so the payload can never hold a dangling code.
    pub fn push_code(&mut self, code: Option<u32>) -> Result<()> {
        if let Some(c) = code {
            if c as usize >= self.categories.len() {
                return Err(Error::InvalidParameter {
                    name: "code",
                    message: format!(
                        "code {c} out of range for {} categories",
                        self.categories.len()
                    ),
                });
            }
        }
        self.codes.push(code);
        Ok(())
    }

    /// Returns the code for `category` if it has been interned.
    #[must_use]
    pub fn code_of(&self, category: &str) -> Option<u32> {
        self.index.get(category).copied()
    }

    /// Returns the category string for `code`.
    #[must_use]
    pub fn category_of(&self, code: u32) -> Option<&str> {
        self.categories.get(code as usize).map(String::as_str)
    }

    /// The distinct categories, in interning order.
    #[must_use]
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// The per-row codes.
    #[must_use]
    pub fn codes(&self) -> &[Option<u32>] {
        &self.codes
    }
}

impl Default for CategoricalData {
    fn default() -> Self {
        Self::new()
    }
}

/// A typed column: a name-less vector of optional values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Numeric payload.
    Numeric(Vec<Option<f64>>),
    /// Categorical payload.
    Categorical(CategoricalData),
}

impl Column {
    /// Creates an empty column of the requested kind.
    #[must_use]
    pub fn new(kind: ColumnKind) -> Self {
        match kind {
            ColumnKind::Numeric => Column::Numeric(Vec::new()),
            ColumnKind::Categorical => Column::Categorical(CategoricalData::new()),
        }
    }

    /// Creates a numeric column from complete values.
    #[must_use]
    pub fn from_f64(values: impl IntoIterator<Item = f64>) -> Self {
        Column::Numeric(values.into_iter().map(Some).collect())
    }

    /// Creates a numeric column that may contain missing values.
    #[must_use]
    pub fn from_optional_f64(values: impl IntoIterator<Item = Option<f64>>) -> Self {
        Column::Numeric(values.into_iter().collect())
    }

    /// Creates a categorical column from complete string values.
    #[must_use]
    pub fn from_strs<'a>(values: impl IntoIterator<Item = &'a str>) -> Self {
        let mut data = CategoricalData::new();
        for v in values {
            data.push(Some(v));
        }
        Column::Categorical(data)
    }

    /// Creates a categorical column that may contain missing values.
    #[must_use]
    pub fn from_optional_strs<'a>(values: impl IntoIterator<Item = Option<&'a str>>) -> Self {
        let mut data = CategoricalData::new();
        for v in values {
            data.push(v);
        }
        Column::Categorical(data)
    }

    /// The kind of the column.
    #[must_use]
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Numeric(_) => ColumnKind::Numeric,
            Column::Categorical(_) => ColumnKind::Categorical,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical(c) => c.codes.len(),
        }
    }

    /// `true` when the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i` (panics when out of bounds).
    #[must_use]
    pub fn get(&self, i: usize) -> Value<'_> {
        match self {
            Column::Numeric(v) => v[i].map_or(Value::Missing, Value::Numeric),
            Column::Categorical(c) => match c.codes[i] {
                Some(code) => Value::Categorical(&c.categories[code as usize]),
                None => Value::Missing,
            },
        }
    }

    /// `true` when the value at row `i` is missing.
    #[must_use]
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            Column::Numeric(v) => v[i].is_none(),
            Column::Categorical(c) => c.codes[i].is_none(),
        }
    }

    /// Number of missing cells.
    #[must_use]
    pub fn missing_count(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Categorical(c) => c.codes.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Appends an owned value, checking the type.
    pub fn push(&mut self, value: OwnedValue) -> Result<()> {
        match (self, value) {
            (Column::Numeric(v), OwnedValue::Numeric(x)) => v.push(Some(x)),
            (Column::Numeric(v), OwnedValue::Missing) => v.push(None),
            (Column::Categorical(c), OwnedValue::Categorical(s)) => c.push(Some(&s)),
            (Column::Categorical(c), OwnedValue::Missing) => c.push(None),
            (col, _) => {
                let expected = if col.kind() == ColumnKind::Numeric {
                    "numeric"
                } else {
                    "categorical"
                };
                return Err(Error::ColumnTypeMismatch {
                    column: String::new(),
                    expected,
                });
            }
        }
        Ok(())
    }

    /// Overwrites row `i` with `value` (same typing rules as [`Column::push`]).
    pub fn set(&mut self, i: usize, value: OwnedValue) -> Result<()> {
        match (self, value) {
            (Column::Numeric(v), OwnedValue::Numeric(x)) => v[i] = Some(x),
            (Column::Numeric(v), OwnedValue::Missing) => v[i] = None,
            (Column::Categorical(c), OwnedValue::Categorical(s)) => {
                let code = c.intern(&s);
                c.codes[i] = Some(code);
            }
            (Column::Categorical(c), OwnedValue::Missing) => c.codes[i] = None,
            (col, _) => {
                let expected = if col.kind() == ColumnKind::Numeric {
                    "numeric"
                } else {
                    "categorical"
                };
                return Err(Error::ColumnTypeMismatch {
                    column: String::new(),
                    expected,
                });
            }
        }
        Ok(())
    }

    /// Materializes a new column containing the rows at `indices` (in order,
    /// duplicates allowed — this is what resamplers rely on).
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical(c) => {
                // Preserve the dictionary so that codes remain comparable
                // across splits of the same frame.
                let mut out = CategoricalData {
                    codes: Vec::with_capacity(indices.len()),
                    categories: c.categories.clone(),
                    index: c.index.clone(),
                };
                for &i in indices {
                    out.codes.push(c.codes[i]);
                }
                Column::Categorical(out)
            }
        }
    }

    /// Appends all rows of `other` to `self` in order.
    ///
    /// For categorical columns, `other`'s **entire dictionary** is interned
    /// into `self` (in `other`'s encounter order) before the codes are
    /// remapped — even categories no surviving row references. This is the
    /// invariant the chunked data path relies on: appending the chunks of a
    /// row-ordered partitioning reproduces the global first-encounter
    /// dictionary of a single-pass read, so chunked assembly is
    /// bit-identical (`PartialEq` compares codes *and* dictionaries).
    pub fn append(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Numeric(a), Column::Numeric(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::Categorical(a), Column::Categorical(b)) => {
                let remap: Vec<u32> = b.categories().iter().map(|c| a.intern(c)).collect();
                a.codes
                    .extend(b.codes().iter().map(|code| code.map(|c| remap[c as usize])));
                Ok(())
            }
            (a, _) => Err(Error::ColumnTypeMismatch {
                column: String::new(),
                expected: if a.kind() == ColumnKind::Numeric {
                    "numeric"
                } else {
                    "categorical"
                },
            }),
        }
    }

    /// Returns the numeric payload or a type error.
    pub fn as_numeric(&self) -> Result<&[Option<f64>]> {
        match self {
            Column::Numeric(v) => Ok(v),
            Column::Categorical(_) => Err(Error::ColumnTypeMismatch {
                column: String::new(),
                expected: "numeric",
            }),
        }
    }

    /// Returns the categorical payload or a type error.
    pub fn as_categorical(&self) -> Result<&CategoricalData> {
        match self {
            Column::Categorical(c) => Ok(c),
            Column::Numeric(_) => Err(Error::ColumnTypeMismatch {
                column: String::new(),
                expected: "categorical",
            }),
        }
    }

    /// Iterates over the values of the column.
    pub fn iter(&self) -> impl Iterator<Item = Value<'_>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Mean of the non-missing numeric values, `None` when all are missing
    /// or the column is categorical.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let v = self.as_numeric().ok()?;
        let (sum, n) = v
            .iter()
            .flatten()
            .fold((0.0_f64, 0usize), |(s, n), &x| (s + x, n + 1));
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Most frequent non-missing value, as an owned value. Ties break towards
    /// the value seen first, which keeps the operation deterministic.
    #[must_use]
    pub fn mode(&self) -> Option<OwnedValue> {
        match self {
            Column::Numeric(v) => {
                // Bucket by bit pattern: exact-equality mode for numerics.
                let mut counts: BTreeMap<u64, (usize, usize, f64)> = BTreeMap::new();
                for (pos, x) in v.iter().enumerate() {
                    if let Some(x) = x {
                        let e = counts.entry(x.to_bits()).or_insert((0, pos, *x));
                        e.0 += 1;
                    }
                }
                counts
                    .into_values()
                    .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
                    .map(|(_, _, x)| OwnedValue::Numeric(x))
            }
            Column::Categorical(c) => {
                let mut counts: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
                for (pos, code) in c.codes.iter().enumerate() {
                    if let Some(code) = code {
                        let e = counts.entry(*code).or_insert((0, pos));
                        e.0 += 1;
                    }
                }
                counts
                    .into_iter()
                    .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
                    .map(|(code, _)| OwnedValue::Categorical(c.categories[code as usize].clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_roundtrip() {
        let col = Column::from_f64([1.0, 2.0, 3.0]);
        assert_eq!(col.len(), 3);
        assert_eq!(col.kind(), ColumnKind::Numeric);
        assert_eq!(col.get(1), Value::Numeric(2.0));
        assert_eq!(col.missing_count(), 0);
    }

    #[test]
    fn numeric_missing_tracked() {
        let col = Column::from_optional_f64([Some(1.0), None, Some(3.0)]);
        assert!(col.is_missing(1));
        assert!(!col.is_missing(0));
        assert_eq!(col.missing_count(), 1);
        assert_eq!(col.get(1), Value::Missing);
    }

    #[test]
    fn categorical_interning_dedupes() {
        let col = Column::from_strs(["a", "b", "a", "c", "b"]);
        let cat = col.as_categorical().unwrap();
        assert_eq!(cat.categories(), &["a", "b", "c"]);
        assert_eq!(cat.code_of("b"), Some(1));
        assert_eq!(cat.category_of(2), Some("c"));
    }

    #[test]
    fn take_preserves_dictionary_and_order() {
        let col = Column::from_strs(["a", "b", "c"]);
        let taken = col.take(&[2, 0, 2]);
        assert_eq!(taken.get(0), Value::Categorical("c"));
        assert_eq!(taken.get(1), Value::Categorical("a"));
        assert_eq!(taken.get(2), Value::Categorical("c"));
        // Dictionary survives even for categories absent from the selection.
        assert_eq!(taken.as_categorical().unwrap().code_of("b"), Some(1));
    }

    #[test]
    fn push_type_checked() {
        let mut col = Column::new(ColumnKind::Numeric);
        col.push(OwnedValue::Numeric(1.0)).unwrap();
        col.push(OwnedValue::Missing).unwrap();
        assert!(col.push(OwnedValue::Categorical("x".into())).is_err());
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn set_replaces_and_interns() {
        let mut col = Column::from_strs(["a", "a"]);
        col.set(1, OwnedValue::Categorical("z".into())).unwrap();
        assert_eq!(col.get(1), Value::Categorical("z"));
        col.set(0, OwnedValue::Missing).unwrap();
        assert!(col.is_missing(0));
    }

    #[test]
    fn mean_skips_missing() {
        let col = Column::from_optional_f64([Some(1.0), None, Some(3.0)]);
        assert_eq!(col.mean(), Some(2.0));
        let all_missing = Column::from_optional_f64([None, None]);
        assert_eq!(all_missing.mean(), None);
    }

    #[test]
    fn mode_categorical() {
        let col = Column::from_optional_strs([Some("x"), Some("y"), Some("y"), None]);
        assert_eq!(col.mode(), Some(OwnedValue::Categorical("y".into())));
    }

    #[test]
    fn mode_numeric_tie_breaks_to_first_seen() {
        let col = Column::from_f64([5.0, 7.0, 7.0, 5.0]);
        assert_eq!(col.mode(), Some(OwnedValue::Numeric(5.0)));
    }

    #[test]
    fn mode_all_missing_is_none() {
        let col = Column::from_optional_strs([None, None]);
        assert_eq!(col.mode(), None);
    }

    #[test]
    fn value_accessors() {
        assert!(Value::Missing.is_missing());
        assert_eq!(Value::Numeric(2.0).as_numeric(), Some(2.0));
        assert_eq!(Value::Categorical("q").as_categorical(), Some("q"));
        assert_eq!(Value::Numeric(2.0).as_categorical(), None);
    }
}
