//! Dataset schemas: which attributes are features, labels, or protected.
//!
//! Integrating a custom dataset with FairPrep "only requires users to load
//! the data as a pandas dataframe and configure several class variables that
//! denote which attributes to use as numeric and categorical features, which
//! attribute to use as the class label, and how to identify the protected
//! groups" (§4). [`Schema`] is the Rust equivalent of those class variables.

use crate::column::ColumnKind;
use crate::error::{Error, Result};

/// The role an attribute plays in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Used as a numeric model feature (scaled by the featurizer).
    NumericFeature,
    /// Used as a categorical model feature (one-hot encoded).
    CategoricalFeature,
    /// The binary class label.
    Label,
    /// Carried through for bookkeeping but not fed to the model
    /// (e.g. a sensitive attribute excluded from the feature set).
    Metadata,
}

/// Membership test for the privileged group of a protected attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupSpec {
    /// Privileged iff the (categorical) attribute equals one of these values.
    CategoryIn(Vec<String>),
    /// Privileged iff the (numeric) attribute is `>=` this threshold.
    NumericAtLeast(f64),
}

/// A protected attribute together with its privileged-group definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedAttribute {
    /// Column name of the sensitive attribute (e.g. `"race"`).
    pub name: String,
    /// Which values count as privileged (e.g. `race == "White"`).
    pub privileged: GroupSpec,
}

impl ProtectedAttribute {
    /// Convenience constructor for the common "privileged iff value in set"
    /// case.
    #[must_use]
    pub fn categorical(name: &str, privileged_values: &[&str]) -> Self {
        ProtectedAttribute {
            name: name.to_string(),
            privileged: GroupSpec::CategoryIn(
                privileged_values.iter().map(ToString::to_string).collect(),
            ),
        }
    }
}

/// One attribute's declaration in a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Physical type of the column.
    pub kind: ColumnKind,
    /// Experiment role.
    pub role: Role,
}

/// The declared structure of a dataset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates an empty schema.
    #[must_use]
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds a numeric feature attribute.
    #[must_use]
    pub fn numeric_feature(mut self, name: &str) -> Self {
        self.fields.push(Field {
            name: name.to_string(),
            kind: ColumnKind::Numeric,
            role: Role::NumericFeature,
        });
        self
    }

    /// Adds a categorical feature attribute.
    #[must_use]
    pub fn categorical_feature(mut self, name: &str) -> Self {
        self.fields.push(Field {
            name: name.to_string(),
            kind: ColumnKind::Categorical,
            role: Role::CategoricalFeature,
        });
        self
    }

    /// Declares the (categorical) binary label attribute.
    #[must_use]
    pub fn label(mut self, name: &str) -> Self {
        self.fields.push(Field {
            name: name.to_string(),
            kind: ColumnKind::Categorical,
            role: Role::Label,
        });
        self
    }

    /// Adds a metadata attribute (kept, not featurized) of the given kind.
    #[must_use]
    pub fn metadata(mut self, name: &str, kind: ColumnKind) -> Self {
        self.fields.push(Field {
            name: name.to_string(),
            kind,
            role: Role::Metadata,
        });
        self
    }

    /// All declared fields, in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Looks up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of all numeric feature attributes.
    #[must_use]
    pub fn numeric_features(&self) -> Vec<&str> {
        self.by_role(Role::NumericFeature)
    }

    /// Names of all categorical feature attributes.
    #[must_use]
    pub fn categorical_features(&self) -> Vec<&str> {
        self.by_role(Role::CategoricalFeature)
    }

    /// Names of all feature attributes (numeric then categorical,
    /// declaration order within each).
    #[must_use]
    pub fn feature_names(&self) -> Vec<&str> {
        let mut out = self.numeric_features();
        out.extend(self.categorical_features());
        out
    }

    /// Name of the label attribute.
    pub fn label_name(&self) -> Result<&str> {
        self.by_role(Role::Label)
            .first()
            .copied()
            .ok_or_else(|| Error::InvalidParameter {
                name: "schema",
                message: "no label attribute declared".to_string(),
            })
    }

    /// Validates internal consistency: unique names, exactly one label.
    pub fn validate(&self) -> Result<()> {
        for (i, f) in self.fields.iter().enumerate() {
            if self.fields[..i].iter().any(|g| g.name == f.name) {
                return Err(Error::DuplicateColumn(f.name.clone()));
            }
        }
        let labels = self.by_role(Role::Label);
        if labels.len() != 1 {
            return Err(Error::InvalidParameter {
                name: "schema",
                message: format!(
                    "expected exactly one label attribute, found {}",
                    labels.len()
                ),
            });
        }
        Ok(())
    }

    fn by_role(&self, role: Role) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.role == role)
            .map(|f| f.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new()
            .numeric_feature("age")
            .numeric_feature("hours")
            .categorical_feature("workclass")
            .metadata("race", ColumnKind::Categorical)
            .label("income")
    }

    #[test]
    fn role_queries() {
        let s = sample();
        assert_eq!(s.numeric_features(), vec!["age", "hours"]);
        assert_eq!(s.categorical_features(), vec!["workclass"]);
        assert_eq!(s.feature_names(), vec!["age", "hours", "workclass"]);
        assert_eq!(s.label_name().unwrap(), "income");
    }

    #[test]
    fn validate_accepts_wellformed() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let s = Schema::new()
            .numeric_feature("x")
            .categorical_feature("x")
            .label("y");
        assert!(matches!(s.validate(), Err(Error::DuplicateColumn(_))));
    }

    #[test]
    fn validate_rejects_missing_label() {
        let s = Schema::new().numeric_feature("x");
        assert!(s.validate().is_err());
        assert!(s.label_name().is_err());
    }

    #[test]
    fn validate_rejects_two_labels() {
        let s = Schema::new().label("a").label("b");
        assert!(s.validate().is_err());
    }

    #[test]
    fn field_lookup() {
        let s = sample();
        assert_eq!(s.field("age").unwrap().role, Role::NumericFeature);
        assert!(s.field("nope").is_none());
    }

    #[test]
    fn protected_attribute_constructor() {
        let p = ProtectedAttribute::categorical("race", &["White"]);
        assert_eq!(p.name, "race");
        assert_eq!(
            p.privileged,
            GroupSpec::CategoryIn(vec!["White".to_string()])
        );
    }
}
