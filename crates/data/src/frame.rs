//! A minimal column-oriented data frame.
//!
//! This is the pandas substitute the framework is built on: named, typed
//! columns of equal length, with row selection (`take`), filtering, and
//! per-row views. It deliberately supports only the operations the FairPrep
//! lifecycle needs — it is a substrate, not a general analytics engine.

// The name index is a BTreeMap, not a HashMap: lookups are the only use
// today, but an ordered map guarantees that any future iteration over the
// index is deterministic — a seeded-path invariant enforced by the
// `fairprep-audit` nondeterminism lints.
use std::collections::BTreeMap;

use crate::column::{Column, ColumnKind, OwnedValue, Value};
use crate::error::{Error, Result};
use crate::provenance::Provenance;

/// A named collection of equal-length [`Column`]s.
#[derive(Debug, Clone, Default)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    index: BTreeMap<String, usize>,
    provenance: Provenance,
}

/// Equality compares the data (names and columns) only; the provenance tag
/// is bookkeeping, and two identical frames from different partitions must
/// still compare equal (reproducibility tests rely on this).
impl PartialEq for DataFrame {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names && self.columns == other.columns
    }
}

impl DataFrame {
    /// Creates an empty frame (no columns, no rows).
    #[must_use]
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Adds a column. All columns must have equal length.
    pub fn add_column(&mut self, name: &str, column: Column) -> Result<()> {
        if self.index.contains_key(name) {
            return Err(Error::DuplicateColumn(name.to_string()));
        }
        if let Some(first) = self.columns.first() {
            if first.len() != column.len() {
                return Err(Error::LengthMismatch {
                    expected: first.len(),
                    actual: column.len(),
                });
            }
        }
        self.index.insert(name.to_string(), self.columns.len());
        self.names.push(name.to_string());
        self.columns.push(column);
        Ok(())
    }

    /// Builder-style [`DataFrame::add_column`].
    pub fn with_column(mut self, name: &str, column: Column) -> Result<Self> {
        self.add_column(name, column)?;
        Ok(self)
    }

    /// The partition-provenance tag of the frame's rows.
    #[must_use]
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// Re-tags the frame. Called by the seeded split when partitions are
    /// born; everything downstream only propagates.
    pub fn set_provenance(&mut self, provenance: Provenance) {
        self.provenance = provenance;
    }

    /// Builder-style [`DataFrame::set_provenance`].
    #[must_use]
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the frame holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Column names in insertion order.
    #[must_use]
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// `true` when a column with `name` exists.
    #[must_use]
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Borrows a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| Error::ColumnNotFound(name.to_string()))
    }

    /// Mutably borrows a column by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        match self.index.get(name) {
            Some(&i) => Ok(&mut self.columns[i]),
            None => Err(Error::ColumnNotFound(name.to_string())),
        }
    }

    /// Replaces an existing column with a new one of equal length.
    pub fn replace_column(&mut self, name: &str, column: Column) -> Result<()> {
        if column.len() != self.n_rows() {
            return Err(Error::LengthMismatch {
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        match self.index.get(name) {
            Some(&i) => {
                self.columns[i] = column;
                Ok(())
            }
            None => Err(Error::ColumnNotFound(name.to_string())),
        }
    }

    /// The cell at (`row`, `column`).
    pub fn value(&self, row: usize, column: &str) -> Result<Value<'_>> {
        Ok(self.column(column)?.get(row))
    }

    /// Overwrites the cell at (`row`, `column`).
    pub fn set_value(&mut self, row: usize, column: &str, value: OwnedValue) -> Result<()> {
        self.column_mut(column)?.set(row, value)
    }

    /// Materializes a new frame with the rows at `indices` (duplicates
    /// allowed, order preserved). The provenance tag travels with the rows.
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let mut out = DataFrame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            out.add_column(name, col.take(indices))
                // audit: allow(expect, reason = "source columns are unique and equal-length by construction, so re-adding them cannot fail")
                .expect("take preserves schema");
        }
        out.provenance = self.provenance;
        out
    }

    /// Keeps only rows where `predicate(row_index)` holds; returns the new
    /// frame and the kept original row indices.
    #[must_use]
    pub fn filter(&self, predicate: impl Fn(usize) -> bool) -> (DataFrame, Vec<usize>) {
        let indices: Vec<usize> = (0..self.n_rows()).filter(|&i| predicate(i)).collect();
        (self.take(&indices), indices)
    }

    /// Row indices that contain at least one missing value.
    #[must_use]
    pub fn incomplete_rows(&self) -> Vec<usize> {
        (0..self.n_rows())
            .filter(|&i| self.columns.iter().any(|c| c.is_missing(i)))
            .collect()
    }

    /// `true` when row `i` has a missing value in any column.
    #[must_use]
    pub fn row_has_missing(&self, i: usize) -> bool {
        self.columns.iter().any(|c| c.is_missing(i))
    }

    /// Total number of missing cells across the frame.
    #[must_use]
    pub fn missing_cells(&self) -> usize {
        self.columns.iter().map(Column::missing_count).sum()
    }

    /// Appends all rows of `other` in place (columns matched by position;
    /// names and kinds must agree).
    ///
    /// Unlike [`DataFrame::concat`] this neither clones `self`'s columns
    /// nor round-trips cells through [`OwnedValue`], so assembling a frame
    /// from a sequence of chunks is linear in the total row count.
    /// Categorical dictionaries are merged in encounter order (see
    /// [`Column::append`]), which keeps chunked assembly bit-identical to
    /// a single-pass build. Provenance merges like [`DataFrame::concat`].
    pub fn append(&mut self, other: &DataFrame) -> Result<()> {
        if self.names != other.names {
            return Err(Error::InvalidParameter {
                name: "append",
                message: "column names differ".to_string(),
            });
        }
        for (name, (a, b)) in self
            .names
            .iter()
            .zip(self.columns.iter().zip(&other.columns))
        {
            if a.kind() != b.kind() {
                return Err(Error::ColumnTypeMismatch {
                    column: name.clone(),
                    expected: "matching kind",
                });
            }
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            // audit: allow(expect, reason = "kinds were verified for every column pair in the loop above")
            a.append(b).expect("kinds verified above");
        }
        self.provenance = self.provenance.merged(other.provenance);
        Ok(())
    }

    /// Vertically concatenates two frames with identical column names/kinds.
    pub fn concat(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.names != other.names {
            return Err(Error::InvalidParameter {
                name: "concat",
                message: "column names differ".to_string(),
            });
        }
        let mut out = DataFrame::new();
        for (name, (a, b)) in self
            .names
            .iter()
            .zip(self.columns.iter().zip(&other.columns))
        {
            if a.kind() != b.kind() {
                return Err(Error::ColumnTypeMismatch {
                    column: name.clone(),
                    expected: "matching kind",
                });
            }
            let mut col = a.clone();
            for i in 0..b.len() {
                let v = match b.get(i) {
                    Value::Numeric(x) => OwnedValue::Numeric(x),
                    Value::Categorical(s) => OwnedValue::Categorical(s.to_string()),
                    Value::Missing => OwnedValue::Missing,
                };
                col.push(v)?;
            }
            out.add_column(name, col)?;
        }
        // Mixed-partition concatenation degrades to Derived; stacking two
        // train frames is still train data.
        out.provenance = self.provenance.merged(other.provenance);
        Ok(out)
    }

    /// Projects the frame onto a subset of columns (in the given order).
    /// The provenance tag travels with the rows.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for &name in names {
            out.add_column(name, self.column(name)?.clone())?;
        }
        out.provenance = self.provenance;
        Ok(out)
    }
}

/// A builder that assembles a frame row by row — convenient for dataset
/// generators and CSV ingestion.
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl FrameBuilder {
    /// Declares the columns (name, kind) the builder will accept.
    #[must_use]
    pub fn new(spec: &[(&str, ColumnKind)]) -> Self {
        FrameBuilder {
            names: spec.iter().map(|(n, _)| (*n).to_string()).collect(),
            columns: spec.iter().map(|(_, k)| Column::new(*k)).collect(),
        }
    }

    /// Appends one row; `values` must match the declared column count and
    /// kinds. Runs once per ingested row, so it must stay allocation-free.
    // audit: hot-path
    pub fn push_row(&mut self, values: Vec<OwnedValue>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(Error::LengthMismatch {
                expected: self.columns.len(),
                actual: values.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v)?;
        }
        Ok(())
    }

    /// Finalizes the frame.
    pub fn finish(self) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for (name, col) in self.names.into_iter().zip(self.columns) {
            out.add_column(&name, col)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new()
            .with_column(
                "age",
                Column::from_optional_f64([Some(25.0), None, Some(40.0)]),
            )
            .unwrap()
            .with_column("job", Column::from_strs(["clerk", "none", "chef"]))
            .unwrap()
    }

    #[test]
    fn shape_and_lookup() {
        let df = sample();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.n_cols(), 2);
        assert_eq!(df.column_names(), &["age", "job"]);
        assert!(df.has_column("age"));
        assert!(!df.has_column("income"));
        assert_eq!(df.value(2, "age").unwrap(), Value::Numeric(40.0));
        assert!(df.column("nope").is_err());
    }

    #[test]
    fn add_column_length_checked() {
        let mut df = sample();
        let err = df.add_column("short", Column::from_f64([1.0]));
        assert_eq!(
            err,
            Err(Error::LengthMismatch {
                expected: 3,
                actual: 1
            })
        );
    }

    #[test]
    fn add_column_duplicate_rejected() {
        let mut df = sample();
        let err = df.add_column("age", Column::from_f64([1.0, 2.0, 3.0]));
        assert_eq!(err, Err(Error::DuplicateColumn("age".to_string())));
    }

    #[test]
    fn take_and_filter() {
        let df = sample();
        let taken = df.take(&[2, 0]);
        assert_eq!(taken.n_rows(), 2);
        assert_eq!(taken.value(0, "job").unwrap(), Value::Categorical("chef"));

        let (complete, kept) = df.filter(|i| !df.row_has_missing(i));
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(complete.n_rows(), 2);
        assert_eq!(complete.missing_cells(), 0);
    }

    #[test]
    fn incomplete_rows_detected() {
        let df = sample();
        assert_eq!(df.incomplete_rows(), vec![1]);
        assert!(df.row_has_missing(1));
        assert!(!df.row_has_missing(0));
        assert_eq!(df.missing_cells(), 1);
    }

    #[test]
    fn set_value_roundtrip() {
        let mut df = sample();
        df.set_value(1, "age", OwnedValue::Numeric(33.0)).unwrap();
        assert_eq!(df.value(1, "age").unwrap(), Value::Numeric(33.0));
    }

    #[test]
    fn concat_stacks_rows() {
        let df = sample();
        let both = df.concat(&df).unwrap();
        assert_eq!(both.n_rows(), 6);
        assert_eq!(both.value(4, "age").unwrap(), Value::Missing);
    }

    #[test]
    fn concat_rejects_mismatched_names() {
        let df = sample();
        let other = DataFrame::new()
            .with_column("x", Column::from_f64([1.0]))
            .unwrap();
        assert!(df.concat(&other).is_err());
    }

    #[test]
    fn select_projects() {
        let df = sample();
        let only_job = df.select(&["job"]).unwrap();
        assert_eq!(only_job.n_cols(), 1);
        assert!(df.select(&["missing_col"]).is_err());
    }

    #[test]
    fn replace_column_checks_length() {
        let mut df = sample();
        df.replace_column("age", Column::from_f64([1.0, 2.0, 3.0]))
            .unwrap();
        assert_eq!(df.value(0, "age").unwrap(), Value::Numeric(1.0));
        assert!(df.replace_column("age", Column::from_f64([1.0])).is_err());
        assert!(df
            .replace_column("zzz", Column::from_f64([1.0, 2.0, 3.0]))
            .is_err());
    }

    #[test]
    fn builder_assembles_rows() {
        let mut b =
            FrameBuilder::new(&[("a", ColumnKind::Numeric), ("b", ColumnKind::Categorical)]);
        b.push_row(vec![
            OwnedValue::Numeric(1.0),
            OwnedValue::Categorical("x".into()),
        ])
        .unwrap();
        b.push_row(vec![OwnedValue::Missing, OwnedValue::Missing])
            .unwrap();
        let df = b.finish().unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.missing_cells(), 2);
    }

    #[test]
    fn builder_rejects_bad_arity() {
        let mut b = FrameBuilder::new(&[("a", ColumnKind::Numeric)]);
        assert!(b.push_row(vec![]).is_err());
    }

    #[test]
    fn provenance_defaults_to_derived_and_propagates() {
        use crate::provenance::Provenance;
        let df = sample();
        assert_eq!(df.provenance(), Provenance::Derived);

        let tagged = sample().with_provenance(Provenance::Test);
        assert_eq!(tagged.provenance(), Provenance::Test);
        assert_eq!(tagged.take(&[0, 2]).provenance(), Provenance::Test);
        assert_eq!(
            tagged.select(&["age"]).unwrap().provenance(),
            Provenance::Test
        );
        let (filtered, _) = tagged.filter(|i| i == 0);
        assert_eq!(filtered.provenance(), Provenance::Test);
    }

    #[test]
    fn provenance_merges_on_concat() {
        use crate::provenance::Provenance;
        let train = sample().with_provenance(Provenance::Train);
        let test = sample().with_provenance(Provenance::Test);
        assert_eq!(
            train.concat(&train).unwrap().provenance(),
            Provenance::Train
        );
        assert_eq!(
            train.concat(&test).unwrap().provenance(),
            Provenance::Derived
        );
    }

    #[test]
    fn provenance_does_not_affect_equality() {
        use crate::provenance::Provenance;
        let a = sample().with_provenance(Provenance::Train);
        let b = sample().with_provenance(Provenance::Test);
        assert_eq!(a, b);
    }
}
