//! Error types shared across the FairPrep workspace.
//!
//! The framework is designed to surface data problems (schema mismatches,
//! empty groups, missing columns) as typed errors rather than panics, so that
//! experiment sweeps can record a failed configuration and continue.

use std::fmt;

/// The error type used throughout the FairPrep crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A column name was referenced that does not exist in the frame.
    ColumnNotFound(String),
    /// A column already exists and cannot be added again.
    DuplicateColumn(String),
    /// An operation expected a numeric column but found a categorical one
    /// (or vice versa).
    ColumnTypeMismatch {
        /// Name of the offending column.
        column: String,
        /// What the operation expected, e.g. `"numeric"`.
        expected: &'static str,
    },
    /// Two columns (or a column and the frame) have different lengths.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// The dataset (or one of its splits / groups) is empty where data is
    /// required.
    EmptyData(String),
    /// A component was used before being fitted.
    NotFitted(&'static str),
    /// Split fractions do not form a valid partition.
    InvalidSplit(String),
    /// A label value outside `{0, 1}` was encountered in a binary-label
    /// dataset.
    InvalidLabel(f64),
    /// A protected-group specification did not match any rows.
    EmptyGroup {
        /// `true` for the privileged group.
        privileged: bool,
    },
    /// A parameter value was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Wrapper for I/O failures (stringified to keep `Error: Clone + PartialEq`).
    Io(String),
    /// A model failed to converge or produced non-finite parameters.
    ModelFailure(String),
    /// A sweep job panicked; the payload message was captured by the
    /// panic-isolating runner (see `parallel::catch_panic`) so the sweep
    /// can record the failure and continue.
    JobPanic(String),
    /// A sealed-pipeline artifact could not be serialized or loaded:
    /// corrupted/truncated files, unknown component kinds, or schema
    /// versions this build does not understand. Loading a damaged
    /// artifact must surface this typed error, never a panic.
    Seal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            Error::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            Error::ColumnTypeMismatch { column, expected } => {
                write!(f, "column {column} is not {expected}")
            }
            Error::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            Error::EmptyData(what) => write!(f, "empty data: {what}"),
            Error::NotFitted(component) => {
                write!(f, "{component} must be fitted before use")
            }
            Error::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
            Error::InvalidLabel(v) => write!(f, "invalid binary label: {v}"),
            Error::EmptyGroup { privileged } => {
                let g = if *privileged {
                    "privileged"
                } else {
                    "unprivileged"
                };
                write!(f, "{g} group matches no rows")
            }
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            Error::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::ModelFailure(msg) => write!(f, "model failure: {msg}"),
            Error::JobPanic(msg) => write!(f, "panic: {msg}"),
            Error::Seal(msg) => write!(f, "sealed artifact: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::ColumnNotFound("age".into()), "column not found: age"),
            (
                Error::DuplicateColumn("age".into()),
                "duplicate column: age",
            ),
            (
                Error::ColumnTypeMismatch {
                    column: "age".into(),
                    expected: "numeric",
                },
                "column age is not numeric",
            ),
            (
                Error::LengthMismatch {
                    expected: 3,
                    actual: 2,
                },
                "length mismatch: expected 3, got 2",
            ),
            (
                Error::EmptyData("train set".into()),
                "empty data: train set",
            ),
            (
                Error::NotFitted("StandardScaler"),
                "StandardScaler must be fitted before use",
            ),
            (Error::InvalidLabel(2.0), "invalid binary label: 2"),
            (
                Error::EmptyGroup { privileged: true },
                "privileged group matches no rows",
            ),
            (
                Error::JobPanic("index out of bounds".into()),
                "panic: index out of bounds",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::ColumnNotFound("x".into()),
            Error::ColumnNotFound("x".into())
        );
        assert_ne!(
            Error::ColumnNotFound("x".into()),
            Error::ColumnNotFound("y".into())
        );
    }
}
