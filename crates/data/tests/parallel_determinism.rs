//! Property test: `parallel_map` is bit-identical regardless of the thread
//! budget. Floating-point summation is order-sensitive, so this catches any
//! scheduling scheme that would let the worker count leak into results —
//! the L2 invariant behind the experiment-level reproducibility guarantee.

use fairprep_data::parallel::parallel_map;
use proptest::prelude::*;

/// Order-sensitive sequential sum: the exact reduction a work item performs.
fn chunk_sum(chunk: &[f64]) -> f64 {
    let mut acc = 0.0_f64;
    for v in chunk {
        acc += v;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn parallel_map_is_bit_identical_across_thread_counts(
        chunks in prop::collection::vec(
            prop::collection::vec(-1.0e6_f64..1.0e6, 0..40),
            1..30,
        ),
    ) {
        let baseline: Vec<f64> =
            parallel_map(chunks.clone(), 1, |chunk| chunk_sum(&chunk));
        for threads in [2_usize, 8] {
            let run: Vec<f64> =
                parallel_map(chunks.clone(), threads, |chunk| chunk_sum(&chunk));
            prop_assert_eq!(baseline.len(), run.len());
            for (i, (a, b)) in baseline.iter().zip(&run).enumerate() {
                // Bit equality, not approximate: reordering additions would
                // produce a different rounding trace.
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "item {} differs at {} threads: {} vs {}",
                    i, threads, a, b
                );
            }
        }
    }
}
