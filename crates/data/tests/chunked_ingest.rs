//! Property tests: the chunked/streaming data path is bit-identical to the
//! materialized path — same `DataFrame`, same `DatasetProfile`, same split
//! partitions — for any chunk size, including pathological CSV inputs
//! (CRLF line endings, quoted fields with embedded commas and quotes,
//! missing-value tokens).

use std::io::Cursor;

use fairprep_data::chunked::{read_csv_chunked, train_val_test_split_chunked, ChunkedFrame, Tee};
use fairprep_data::csv::{read_csv, DEFAULT_MISSING_TOKENS};
use fairprep_data::prelude::*;
use fairprep_data::profile::{DatasetProfile, ProfileSketch};
use fairprep_data::split::SplitSpec;
use proptest::prelude::*;

/// Chunk sizes exercised for every generated input: degenerate (one row
/// per chunk), prime (chunks never align with anything), and larger than
/// any generated input (single chunk).
const CHUNK_SIZES: [usize; 3] = [1, 7, 4096];

/// Category strings chosen to stress RFC-4180 quoting: embedded commas,
/// embedded quotes, and both at once.
const CATEGORIES: [&str; 5] = ["plain", "cook, senior", "say \"hi\"", "a,b\"c\"", "zed"];

const KINDS: [(&str, ColumnKind); 4] = [
    ("num", ColumnKind::Numeric),
    ("cat", ColumnKind::Categorical),
    ("group", ColumnKind::Categorical),
    ("label", ColumnKind::Categorical),
];

/// Quotes a CSV field the way RFC 4180 requires when it contains commas
/// or quotes.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders one deterministic CSV document from per-row entropy words.
/// Two fixed rows pin both protected groups so the materialized dataset
/// constructor never rejects the input.
fn render_csv(rows: &[u64], crlf: bool) -> String {
    let eol = if crlf { "\r\n" } else { "\n" };
    let mut text = format!("num,cat,group,label{eol}");
    text.push_str(&format!("1.5,plain,a,yes{eol}"));
    text.push_str(&format!("2.5,zed,b,no{eol}"));
    for &r in rows {
        let num = if r % 7 == 0 {
            if r % 2 == 0 { "?" } else { "NA" }.to_string()
        } else {
            // Eighths are exact in binary, so the round-trip is lossless.
            format!("{}", (r % 1000) as f64 / 8.0)
        };
        let cat = if r % 5 == 0 {
            String::new()
        } else {
            escape(CATEGORIES[(r / 7) as usize % CATEGORIES.len()])
        };
        let group = if r & 1 == 0 { "a" } else { "b" };
        let label = if (r >> 1) & 1 == 0 { "yes" } else { "no" };
        text.push_str(&format!("{num},{cat},{group},{label}{eol}"));
    }
    text
}

fn schema() -> Schema {
    Schema::new()
        .numeric_feature("num")
        .categorical_feature("cat")
        .metadata("group", ColumnKind::Categorical)
        .label("label")
}

fn protected() -> ProtectedAttribute {
    ProtectedAttribute::categorical("group", &["a"])
}

fn ingest(text: &str, chunk_rows: usize) -> (ChunkedFrame, ProfileSketch) {
    let mut frame = ChunkedFrame::new();
    let mut sketch = ProfileSketch::new(&schema(), &protected(), "yes").unwrap();
    read_csv_chunked(
        Cursor::new(text),
        &KINDS,
        DEFAULT_MISSING_TOKENS,
        chunk_rows,
        &mut Tee(&mut sketch, &mut frame),
    )
    .unwrap();
    (frame, sketch)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Chunked ingest assembles to the exact frame `read_csv` produces,
    /// and the streamed profile sketch finishes to the exact profile of
    /// the materialized dataset — for every chunk size and line ending.
    #[test]
    fn chunked_ingest_matches_materialized_read(
        rows in prop::collection::vec(any::<u64>(), 1..60),
        crlf in any::<bool>(),
    ) {
        let text = render_csv(&rows, crlf);
        let reference = read_csv(Cursor::new(text.as_str()), &KINDS, DEFAULT_MISSING_TOKENS)
            .unwrap();
        let reference_profile = DatasetProfile::compute(
            &BinaryLabelDataset::new(reference.clone(), schema(), protected(), "yes").unwrap(),
        );
        for chunk_rows in CHUNK_SIZES {
            let (frame, sketch) = ingest(&text, chunk_rows);
            prop_assert_eq!(
                frame.to_frame().unwrap(),
                reference.clone(),
                "frame mismatch at chunk_rows={}",
                chunk_rows
            );
            prop_assert_eq!(
                sketch.finish(),
                reference_profile.clone(),
                "profile mismatch at chunk_rows={}",
                chunk_rows
            );
        }
    }

    /// The chunked split produces partitions equal (by `PartialEq`, which
    /// covers frame contents, labels, masks, and weights) to the
    /// materialized split, with the same indices and provenance tags.
    #[test]
    fn chunked_split_matches_materialized_split(
        rows in prop::collection::vec(any::<u64>(), 4..60),
        crlf in any::<bool>(),
        seed in 0_u64..1000,
    ) {
        let text = render_csv(&rows, crlf);
        let reference = read_csv(Cursor::new(text.as_str()), &KINDS, DEFAULT_MISSING_TOKENS)
            .unwrap();
        let dataset =
            BinaryLabelDataset::new(reference, schema(), protected(), "yes").unwrap();
        let spec = SplitSpec::paper_default();
        let materialized = train_val_test_split(&dataset, spec, seed).unwrap();
        for chunk_rows in CHUNK_SIZES {
            let (frame, _) = ingest(&text, chunk_rows);
            let chunked =
                train_val_test_split_chunked(&frame, &schema(), &protected(), "yes", spec, seed)
                    .unwrap();
            prop_assert_eq!(&chunked.indices, &materialized.indices);
            prop_assert_eq!(&chunked.train, &materialized.train);
            prop_assert_eq!(&chunked.validation, &materialized.validation);
            prop_assert_eq!(&chunked.test, &materialized.test);
            prop_assert_eq!(chunked.train.provenance(), Provenance::Train);
            prop_assert_eq!(chunked.validation.provenance(), Provenance::Derived);
            prop_assert_eq!(chunked.test.provenance(), Provenance::Test);
        }
    }

    /// Streaming complete-case filtering keeps the same rows (same global
    /// indices) and assembles to the same frame as the materialized filter,
    /// dictionaries included.
    #[test]
    fn chunked_retain_complete_matches_materialized_filter(
        rows in prop::collection::vec(any::<u64>(), 1..60),
        crlf in any::<bool>(),
    ) {
        let text = render_csv(&rows, crlf);
        let reference = read_csv(Cursor::new(text.as_str()), &KINDS, DEFAULT_MISSING_TOKENS)
            .unwrap();
        let (ref_filtered, ref_kept) = reference.filter(|i| !reference.row_has_missing(i));
        for chunk_rows in CHUNK_SIZES {
            let (frame, _) = ingest(&text, chunk_rows);
            let (filtered, kept) = frame.retain_complete();
            prop_assert_eq!(&kept, &ref_kept, "kept rows differ at chunk_rows={}", chunk_rows);
            prop_assert_eq!(
                filtered.to_frame().unwrap(),
                ref_filtered.clone(),
                "filtered frame mismatch at chunk_rows={}",
                chunk_rows
            );
        }
    }
}
