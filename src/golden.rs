//! Golden-trace experiments: two small, fully seeded lifecycle runs whose
//! canonical run manifests are committed under `tests/golden/` and diffed
//! byte-for-byte in CI.
//!
//! The experiments are chosen to cover the observability surface between
//! them: a *tuned* learner (cross-validated grid search → `tune` span,
//! fold counters) and an *imputing, intervening* pipeline (mode imputation
//! → `cells_imputed`, reweighing, reject-option → `postprocess` span).
//! Both run with profiling on, so the goldens also pin the `profile`
//! section (per-stage dataset snapshots and drift diffs) and any drift
//! `warnings` byte-for-byte.
//! Because [`RunManifest::canonical`](fairprep_trace::RunManifest::canonical)
//! excludes every timing field, the rendered strings must be identical
//! across repeated runs and across thread budgets — that invariant is the
//! golden-trace test suite.

use fairprep_core::experiment::Experiment;
use fairprep_core::learners::{DecisionTreeLearner, LogisticRegressionLearner};
use fairprep_core::results::RunResult;
use fairprep_data::error::{Error, Result};
use fairprep_datasets::{generate_german, generate_payment};
use fairprep_fairness::postprocess::RejectOptionClassification;
use fairprep_fairness::preprocess::Reweighing;
use fairprep_impute::ModeImputer;
use fairprep_trace::Tracer;

/// Names of the golden experiments, in golden-file order.
pub const GOLDEN_CASES: &[&str] = &["german-tuned", "payment-impute"];

/// Runs the named golden experiment with tracing enabled on the given
/// thread budget and returns the full result (manifest populated).
pub fn run_golden(name: &str, threads: usize) -> Result<RunResult> {
    let tracer = Tracer::enabled();
    let experiment = match name {
        // Cross-validated grid search: exercises the `tune` span and the
        // fold / fold-cache counters.
        "german-tuned" => Experiment::builder("german", generate_german(200, 7)?)
            .seed(7)
            .threads(threads)
            .learner(DecisionTreeLearner { tuned: true })
            .tracer(tracer)
            .profile(true)
            .build()?,
        // Imputation + pre/post interventions: exercises `cells_imputed`,
        // the `preprocess` span, and the `postprocess` span.
        "payment-impute" => Experiment::builder("payment", generate_payment(300, 11)?)
            .seed(11)
            .threads(threads)
            .missing_value_handler(ModeImputer)
            .preprocessor(Reweighing)
            .postprocessor(RejectOptionClassification::default())
            .learner(LogisticRegressionLearner { tuned: false })
            .tracer(tracer)
            .profile(true)
            .build()?,
        other => {
            return Err(Error::InvalidParameter {
                name: "golden",
                message: format!(
                    "unknown golden case `{other}` (expected one of {GOLDEN_CASES:?})"
                ),
            })
        }
    };
    experiment.run()
}

/// The canonical manifest serialization of the named golden experiment —
/// the exact bytes committed as `tests/golden/<name>.json`.
pub fn golden_canonical(name: &str, threads: usize) -> Result<String> {
    let result = run_golden(name, threads)?;
    result
        .manifest
        .as_ref()
        .map(fairprep_trace::RunManifest::canonical)
        .ok_or_else(|| Error::InvalidParameter {
            name: "golden",
            message: "traced run produced no manifest".to_string(),
        })
}

/// The golden file name for a case (`tests/golden/<file>`).
#[must_use]
pub fn golden_file(name: &str) -> String {
    format!("{}.json", name.replace('-', "_"))
}
