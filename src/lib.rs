//! # FairPrep (Rust)
//!
//! A reproduction of **"FairPrep: Promoting Data to a First-Class Citizen
//! in Studies on Fairness-Enhancing Interventions"** (Schelter, He,
//! Khilnani, Stoyanovich — EDBT 2020) as a self-contained Rust workspace.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`data`] | columns, frames, [`data::dataset::BinaryLabelDataset`], splits, resampling, CSV, stats |
//! | [`ml`] | matrix, scalers/one-hot/featurizer, logistic regression, decision tree, naive Bayes, grid search + k-fold CV |
//! | [`impute`] | complete-case analysis, mode / mean-mode imputation, learned per-column imputation (Datawig substitute), missingness injection |
//! | [`fairness`] | 25 per-group + 22 between-group metrics; reweighing, DI remover, massaging; adversarial debiasing, prejudice remover; reject-option, calibrated equalized odds, equalized odds |
//! | [`datasets`] | seeded synthetic adult / germancredit / propublica / ricci / payment generators |
//! | [`core`] | the three-phase lifecycle: experiments, isolation vault, learners, parallel sweeps, result files |
//!
//! See the `examples/` directory for runnable walkthroughs (start with
//! `cargo run --example quickstart`).

#![warn(missing_docs)]

pub use fairprep_core as core;
pub use fairprep_data as data;
pub use fairprep_datasets as datasets;
pub use fairprep_fairness as fairness;
pub use fairprep_impute as impute;
pub use fairprep_ml as ml;
pub use fairprep_trace as trace;

pub mod golden;

/// One-stop import for applications.
pub mod prelude {
    pub use fairprep_core::prelude::*;
    pub use fairprep_data::prelude::*;
    pub use fairprep_datasets::{
        generate_adult, generate_compas, generate_german, generate_german_with, generate_payment,
        generate_ricci, AdultProtected, CompasProtected, GermanProtected,
    };
    pub use fairprep_fairness::prelude::*;
    pub use fairprep_impute::{
        CompleteCaseAnalysis, MeanModeImputer, MissingValueHandler, ModeImputer, ModelBasedImputer,
    };
    pub use fairprep_ml::prelude::*;
}
