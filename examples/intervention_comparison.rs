//! Comparing pre-, in-, and post-processing interventions on one task.
//!
//! Interventions "may be incorporated at different pipeline stages — during
//! data preprocessing, immediately before or after a classifier is invoked,
//! or as part of the classification itself" (§1.1). This example runs the
//! COMPAS task through all three stages and prints an accuracy/fairness
//! comparison table:
//!
//! * pre-processing: reweighing, disparate-impact removal, massaging;
//! * in-processing: adversarial debiasing, prejudice remover;
//! * post-processing: reject-option classification, calibrated equalized
//!   odds, equalized odds.
//!
//! ```text
//! cargo run --release --example intervention_comparison
//! ```

use fairprep::prelude::*;
use fairprep_core::runner::{run_parallel, Job};

fn base(dataset: BinaryLabelDataset, seed: u64) -> fairprep_core::experiment::ExperimentBuilder {
    Experiment::builder("compas", dataset)
        .seed(seed)
        .scaler(ScalerSpec::Standard)
}

fn main() -> Result<()> {
    let seed = 46947;
    let n = 3000;

    let configs: Vec<(&str, Job)> = vec![
        (
            "baseline (no intervention)",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .build()?
                    .run()
            }),
        ),
        (
            "pre: reweighing",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .preprocessor(Reweighing)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .build()?
                    .run()
            }),
        ),
        (
            "pre: di-remover (1.0)",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .preprocessor(DisparateImpactRemover::new(1.0))
                    .learner(LogisticRegressionLearner { tuned: true })
                    .build()?
                    .run()
            }),
        ),
        (
            "pre: preferential sampling",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .preprocessor(PreferentialSampling)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .build()?
                    .run()
            }),
        ),
        (
            "pre: massaging",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .preprocessor(Massaging)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .build()?
                    .run()
            }),
        ),
        (
            "in: adversarial debiasing",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(InProcessLearner::new(AdversarialDebiasing::default()))
                    .build()?
                    .run()
            }),
        ),
        (
            "in: prejudice remover",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(InProcessLearner::new(PrejudiceRemover::default()))
                    .build()?
                    .run()
            }),
        ),
        (
            "in: LFR",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(InProcessLearner::new(LearnedFairRepresentations::default()))
                    .build()?
                    .run()
            }),
        ),
        (
            "post: reject option",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .postprocessor(RejectOptionClassification::default())
                    .build()?
                    .run()
            }),
        ),
        (
            "post: calibrated eq odds",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .postprocessor(CalibratedEqOdds::default())
                    .build()?
                    .run()
            }),
        ),
        (
            "post: group thresholds",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .postprocessor(GroupThresholdOptimizer::default())
                    .build()?
                    .run()
            }),
        ),
        (
            "post: equalized odds",
            Box::new(move || {
                base(generate_compas(n, 1, CompasProtected::Race)?, seed)
                    .learner(LogisticRegressionLearner { tuned: true })
                    .postprocessor(EqOddsPostprocessing::default())
                    .build()?
                    .run()
            }),
        ),
    ];

    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    let jobs: Vec<Job> = configs.into_iter().map(|(_, j)| j).collect();
    println!(
        "running {} intervention configurations on compas...",
        jobs.len()
    );
    let results = run_parallel(jobs, 4);

    println!(
        "\n{:<28} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "intervention", "acc", "DI", "SPD", "EOD", "AOD"
    );
    for (name, result) in names.iter().zip(&results) {
        match result {
            Ok(r) => {
                let t = &r.test_report;
                println!(
                    "{:<28} {:>7.3} {:>7.3} {:>+8.3} {:>+8.3} {:>+8.3}",
                    name,
                    t.overall.accuracy,
                    t.differences.disparate_impact,
                    t.differences.statistical_parity_difference,
                    t.differences.equal_opportunity_difference,
                    t.differences.average_odds_difference,
                );
            }
            Err(e) => println!("{name:<28} FAILED: {e}"),
        }
    }
    println!(
        "\n(DI → 1 and the differences → 0 are the fair points; the baseline\n\
         row shows the uncorrected disparity of the task.)"
    );
    Ok(())
}
