//! Regenerates the golden request/response fixtures of the scoring
//! service.
//!
//! ```text
//! cargo run --release --example golden_serve [-- --out DIR]
//! ```
//!
//! For every shipped dataset this fits the fixed golden pipeline (see
//! `fairprep_cli::golden`), serves it on an ephemeral port, replays the
//! golden requests over real HTTP, and writes one fixture file per
//! dataset into `--out` (default `tests/golden_serve/`) holding the
//! requests together with their **byte-exact** response bodies. CI
//! replays the committed fixtures against an in-process server — any
//! byte of drift in the serving path fails the build.

use fairprep_cli::golden::{golden_bodies, golden_pipeline, GOLDEN_DATASETS};
use fairprep_cli::serve::{http_request, http_request_accept, Registry, ServerHandle};
use fairprep_trace::json::{obj, Value};

fn main() {
    let mut out_dir = std::path::PathBuf::from("tests/golden_serve");
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(dir) = iter.next() {
                    out_dir = std::path::PathBuf::from(dir);
                }
            }
            other => {
                eprintln!("usage: golden_serve [--out DIR] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    for dataset in GOLDEN_DATASETS {
        let sealed = golden_pipeline(dataset)
            .unwrap_or_else(|e| panic!("golden pipeline `{dataset}` failed: {e}"));
        let fingerprint = sealed.fingerprint.clone();
        let predict_path = format!("/predict/{}", fingerprint.replace(':', "-"));
        let bodies = golden_bodies(dataset).expect("golden requests");

        let mut registry = Registry::new();
        registry.insert(sealed);
        let server = ServerHandle::spawn(registry, 0, 2).expect("spawn server");

        let requests: Vec<Value> = bodies
            .iter()
            .map(|body| {
                let (status, response) =
                    http_request(server.addr(), "POST", &predict_path, Some(body))
                        .expect("request");
                assert_eq!(status, 200, "{dataset}: {response}");
                obj(vec![
                    ("path", Value::Str(predict_path.clone())),
                    ("body", Value::Str(body.clone())),
                    ("status", Value::from_u64(u64::from(status))),
                    ("response", Value::Str(response)),
                ])
            })
            .collect();
        server.stop();

        let fixture = obj(vec![
            ("dataset", Value::Str((*dataset).to_string())),
            ("fingerprint", Value::Str(fingerprint)),
            ("requests", Value::Arr(requests)),
        ])
        .to_json();
        let path = out_dir.join(format!("{dataset}.json"));
        std::fs::write(&path, &fixture).expect("cannot write fixture");
        println!("{} ({} bytes)", path.display(), fixture.len());
    }

    // Golden Prometheus exposition: replay the german golden requests
    // sequentially on one worker with a pinned fake latency, then scrape
    // `/metrics` as Prometheus text. Everything else in the exposition —
    // counters, rings, decision rates, PSI — is deterministic, so the
    // committed bytes replay exactly on any machine.
    let sealed = golden_pipeline("german").expect("golden pipeline");
    let predict_path = format!("/predict/{}", sealed.fingerprint.replace(':', "-"));
    let bodies = golden_bodies("german").expect("golden requests");
    let mut registry = Registry::new();
    registry.insert(sealed);
    let server = ServerHandle::spawn(registry, 0, 1).expect("spawn server");
    server.registry().set_fixed_latency_us(1000);
    for body in &bodies {
        let (status, _) =
            http_request(server.addr(), "POST", &predict_path, Some(body)).expect("request");
        assert_eq!(status, 200);
    }
    let (status, exposition) = http_request_accept(
        server.addr(),
        "GET",
        "/metrics",
        None,
        Some("text/plain; version=0.0.4"),
    )
    .expect("scrape");
    assert_eq!(status, 200);
    server.stop();
    let path = out_dir.join("german.metrics.prom");
    std::fs::write(&path, &exposition).expect("cannot write exposition fixture");
    println!("{} ({} bytes)", path.display(), exposition.len());
}
