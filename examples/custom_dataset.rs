//! Integrating a custom dataset with FairPrep.
//!
//! "Integrating a custom dataset with FairPrep only requires users to load
//! the data as a pandas dataframe and configure several class variables
//! that denote which attributes to use as numeric and categorical features,
//! which attribute to use as the class label, and how to identify the
//! protected groups in the dataset." (§4)
//!
//! The Rust equivalent: parse a CSV into a `DataFrame`, declare a `Schema`,
//! and name the protected group. This example embeds a small hiring CSV
//! (with missing values and a quoted field, to exercise the parser) and
//! runs the full lifecycle on it.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use std::io::Cursor;

use fairprep::prelude::*;
use fairprep_data::csv::{read_csv, DEFAULT_MISSING_TOKENS};

/// A toy hiring dataset: 40 applicants, experience/score features, a
/// missing `referral` value here and there, gender as protected attribute.
fn hiring_csv() -> String {
    let mut csv = String::from("years_exp,score,referral,gender,hired\n");
    for i in 0..200 {
        let male = i % 2 == 0;
        let years = 1 + (i * 7) % 15;
        let score = 40 + (i * 13) % 55;
        let referral = match i % 5 {
            0 => "", // missing
            1 => "employee",
            2 => "agency",
            _ => "none",
        };
        // Hiring is mostly score-driven, with a thumb on the scale.
        let hired = score + years + i32::from(male) * 12 > 70;
        csv.push_str(&format!(
            "{years},{score},{referral},{},{}\n",
            if male { "m" } else { "f" },
            if hired { "yes" } else { "no" }
        ));
    }
    csv
}

fn main() -> Result<()> {
    // 1. Load the relational view (pandas-dataframe equivalent).
    let frame = read_csv(
        Cursor::new(hiring_csv()),
        &[
            ("years_exp", ColumnKind::Numeric),
            ("score", ColumnKind::Numeric),
            ("referral", ColumnKind::Categorical),
            ("gender", ColumnKind::Categorical),
            ("hired", ColumnKind::Categorical),
        ],
        DEFAULT_MISSING_TOKENS,
    )?;
    println!(
        "loaded {} rows, {} columns, {} missing cells",
        frame.n_rows(),
        frame.n_cols(),
        frame.missing_cells()
    );

    // 2. Declare the experiment schema — the "several class variables".
    let schema = Schema::new()
        .numeric_feature("years_exp")
        .numeric_feature("score")
        .categorical_feature("referral")
        .metadata("gender", ColumnKind::Categorical)
        .label("hired");

    // 3. Identify the protected groups and the favorable outcome.
    let dataset = BinaryLabelDataset::new(
        frame,
        schema,
        ProtectedAttribute::categorical("gender", &["m"]),
        "yes",
    )?;

    // 4. Run the lifecycle with mode imputation for the missing referrals
    //    and a disparate-impact check across two candidate models.
    let result = Experiment::builder("hiring", dataset)
        .seed(7)
        .missing_value_handler(ModeImputer)
        .learner(LogisticRegressionLearner { tuned: true })
        .learner(NaiveBayesLearner)
        .model_selector(AccuracyUnderDiBound {
            max_di_deviation: 0.3,
        })
        .build()?
        .run()?;

    println!(
        "selected {} (of {:?})",
        result.metadata.candidates[result.metadata.selected], result.metadata.candidates
    );
    println!(
        "test accuracy    = {:.3}",
        result.test_report.overall.accuracy
    );
    println!(
        "disparate impact = {:.3}",
        result.test_report.differences.disparate_impact
    );
    for candidate in &result.candidates {
        println!(
            "  candidate {:<28} val acc {:.3}  val DI {:.3}",
            candidate.learner,
            candidate.validation_report.overall.accuracy,
            candidate.validation_report.differences.disparate_impact,
        );
    }
    Ok(())
}
