//! Controlled missingness study: inject → impute → measure.
//!
//! Previous studies "are unable to investigate the effects of fairness
//! enhancing interventions on records with missing values" (§2.4).
//! FairPrep closes that loop. This example takes the *complete*
//! germancredit dataset, injects group-dependent (MAR) missingness at
//! increasing rates — mimicking the documented adult pattern where the
//! unprivileged group loses data 4× more often — and measures how each
//! missing-value strategy copes, overall and for the unprivileged group.
//!
//! ```text
//! cargo run --release --example missingness_study
//! ```

use fairprep::prelude::*;
use fairprep_fairness::metrics::DatasetMetrics;
use fairprep_impute::inject::{Mechanism, MissingnessInjector};

fn main() -> Result<()> {
    let base = generate_german(1000, 20_19)?;
    println!("germancredit: {} rows, initially complete", base.n_rows());
    let dm = DatasetMetrics::compute(&base)?;
    println!(
        "label audit: base rate {:.3}, label DI {:.3}, label SPD {:+.3}\n",
        dm.base_rate, dm.disparate_impact, dm.statistical_parity_difference
    );

    println!(
        "{:<10} {:<26} {:>9} {:>10} {:>9} {:>8}",
        "miss rate", "strategy", "acc", "acc_unpr", "acc_imp", "DI"
    );

    for &unpriv_rate in &[0.1, 0.25, 0.4] {
        // The unprivileged group loses data 4x more often (the §2.4 adult
        // pattern).
        let injector = MissingnessInjector::new(
            &["credit-amount", "employment", "savings"],
            Mechanism::MarByGroup {
                privileged_rate: unpriv_rate / 4.0,
                unprivileged_rate: unpriv_rate,
            },
        );
        let injected = injector.inject(&base, 7)?;
        let incomplete = injected.incomplete_rows().len();

        for strategy in ["complete_case", "mode", "model_based"] {
            let builder = Experiment::builder("german_missing", injected.clone())
                .seed(46947)
                .learner(LogisticRegressionLearner { tuned: true });
            let builder = match strategy {
                "complete_case" => builder.missing_value_handler(CompleteCaseAnalysis),
                "mode" => builder.missing_value_handler(ModeImputer),
                _ => builder.missing_value_handler(ModelBasedImputer::default()),
            };
            let result = builder.build()?.run()?;
            let t = &result.test_report;
            println!(
                "{:<10.2} {:<26} {:>9.3} {:>10.3} {:>9.3} {:>8.3}",
                unpriv_rate,
                format!("{strategy} ({incomplete} inc.)"),
                t.overall.accuracy,
                t.unprivileged.accuracy,
                t.incomplete_records
                    .as_ref()
                    .map_or(f64::NAN, |g| g.accuracy),
                t.differences.disparate_impact,
            );
        }
    }

    println!(
        "\nComplete-case analysis silently evaluates fewer (and different)\n\
         records as the missingness rate grows — and the records it drops\n\
         come disproportionately from the unprivileged group. The imputation\n\
         strategies keep every record in the study."
    );
    Ok(())
}
