//! Regenerates the golden-trace manifests.
//!
//! ```text
//! cargo run --release --example golden_trace -- --threads 8 --out target/golden-8
//! ```
//!
//! Writes the canonical manifest of every golden experiment (see
//! `fairprep::golden`) into `--out` (default `tests/golden/`). CI runs
//! this at two thread budgets and diffs the output directories against
//! the committed goldens — any byte of drift fails the build.

use fairprep::golden::{golden_canonical, golden_file, GOLDEN_CASES};

fn main() {
    let mut threads = 1usize;
    let mut out_dir = std::path::PathBuf::from("tests/golden");
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                if let Some(t) = iter.next().and_then(|v| v.parse().ok()) {
                    threads = t;
                }
            }
            "--out" => {
                if let Some(dir) = iter.next() {
                    out_dir = std::path::PathBuf::from(dir);
                }
            }
            other => {
                eprintln!("usage: golden_trace [--threads N] [--out DIR] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }

    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    for case in GOLDEN_CASES {
        let canonical = golden_canonical(case, threads)
            .unwrap_or_else(|e| panic!("golden case `{case}` failed: {e}"));
        let path = out_dir.join(golden_file(case));
        std::fs::write(&path, &canonical).expect("cannot write golden file");
        println!(
            "{} ({} bytes, {} threads)",
            path.display(),
            canonical.len(),
            threads
        );
    }
}
