//! Quickstart: one FairPrep experiment, end to end.
//!
//! Runs the germancredit task with a reweighing intervention and a tuned
//! logistic-regression baseline, then prints the headline test metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fairprep::prelude::*;

fn main() -> Result<()> {
    // 1. Load a dataset. The generators are fully seeded, so this line is
    //    reproducible (see fairprep-datasets for the substitution notes).
    let dataset = generate_german(1000, 20_19)?;
    println!(
        "germancredit: {} rows, base rate {:.3} (privileged {:.3} / unprivileged {:.3})",
        dataset.n_rows(),
        dataset.base_rate(None),
        dataset.base_rate(Some(true)),
        dataset.base_rate(Some(false)),
    );

    // 2. Configure the lifecycle. Every slot is a component; everything not
    //    set falls back to the paper's defaults (70/10/20 split,
    //    standardisation, complete-case analysis, no interventions).
    let experiment = Experiment::builder("germancredit", dataset)
        .seed(46947) // the first seed of the paper's §4 example
        .preprocessor(Reweighing)
        .learner(LogisticRegressionLearner { tuned: true })
        .learner(DecisionTreeLearner { tuned: true })
        .build()?;

    // 3. Run the three phases. The test set stays sealed inside the
    //    framework; we only see the final metric report.
    let result = experiment.run()?;

    println!(
        "selected model: {}",
        result.metadata.candidates[result.metadata.selected]
    );
    let t = &result.test_report;
    println!("test accuracy          = {:.3}", t.overall.accuracy);
    println!("  privileged accuracy  = {:.3}", t.privileged.accuracy);
    println!("  unprivileged accuracy= {:.3}", t.unprivileged.accuracy);
    println!(
        "disparate impact       = {:.3}",
        t.differences.disparate_impact
    );
    println!(
        "stat. parity difference= {:+.3}",
        t.differences.statistical_parity_difference
    );
    println!(
        "FNR / FPR difference   = {:+.3} / {:+.3}",
        t.differences.false_negative_rate_difference, t.differences.false_positive_rate_difference,
    );

    // 4. Write the full 25+25+25+22-metric report like the Python original
    //    ("every experiment writes an output file with these metrics").
    std::fs::create_dir_all("results")?;
    let mut file = std::fs::File::create("results/quickstart_metrics.csv")?;
    result.write_csv(&mut file)?;
    println!("full metric report written to results/quickstart_metrics.csv");
    Ok(())
}
