//! Ann's payment-options study — the paper's running example (§1.1, §4).
//!
//! Ann wants to know which payment options to offer customers. Her data has
//! `age` missing far more often for female customers, and age matters for
//! the label. She compares fairness-enhancing interventions under a learned
//! imputer (the §4 `DatawigImputer('age')` pattern), over a set of fixed
//! seeds — the exact sweep of the paper's §4 code listing:
//!
//! ```python
//! seeds = [46947, 71735, 94246, ...]
//! interventions = [NoIntervention(), Reweighing(), DiRemover(0.5)]
//! for seed in seeds:
//!     for intervention in interventions:
//!         exp = PaymentOptionGenderExperiment(
//!             random_seed=seed,
//!             missing_value_handler=DatawigImputer('age'),
//!             numeric_attribute_scaler=StandardScaler(),
//!             learner=LogisticRegression(),
//!             pre_processor=intervention)
//!         exp.run()
//! ```
//!
//! ```text
//! cargo run --release --example ann_payment_options
//! ```

use fairprep::prelude::*;
use fairprep_core::runner::{run_parallel, Job};

fn main() -> Result<()> {
    // The paper's fixed seeds for reproducibility.
    let seeds: [u64; 4] = [46947, 71735, 94246, 31807];
    let interventions = ["no_intervention", "reweighing", "di_remover(0.5)"];

    let mut jobs: Vec<Job> = Vec::new();
    for &seed in &seeds {
        for &intervention in &interventions {
            jobs.push(Box::new(move || {
                let dataset = generate_payment(2000, 7)?;
                let builder = Experiment::builder("payment_options", dataset)
                    .seed(seed)
                    // Datawig-style learned imputation of the age attribute.
                    .missing_value_handler(ModelBasedImputer::for_columns(&["age"]))
                    .scaler(ScalerSpec::Standard)
                    .learner(LogisticRegressionLearner { tuned: true });
                let builder = match intervention {
                    "reweighing" => builder.preprocessor(Reweighing),
                    "di_remover(0.5)" => builder.preprocessor(DisparateImpactRemover::new(0.5)),
                    _ => builder,
                };
                builder.build()?.run()
            }));
        }
    }

    let n_jobs = jobs.len();
    println!("running {n_jobs} experiments (4 seeds x 3 interventions)...");
    let results = run_parallel(jobs, 4);

    // Collect into the sweep output file Ann would explore in a notebook.
    let mut sweep = SweepWriter::new(&[
        "overall_accuracy",
        "privileged_accuracy",
        "unprivileged_accuracy",
        "incomplete_records_accuracy",
        "disparate_impact",
        "statistical_parity_difference",
    ]);

    println!(
        "\n{:<18} {:>6} {:>9} {:>9} {:>9} {:>7}",
        "intervention", "seed", "acc", "acc_unpr", "acc_imp", "DI"
    );
    for result in &results {
        let r = result.as_ref().expect("run failed");
        sweep.add(r);
        let t = &r.test_report;
        println!(
            "{:<18} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>7.3}",
            r.metadata.preprocessor,
            r.metadata.seed,
            t.overall.accuracy,
            t.unprivileged.accuracy,
            t.incomplete_records
                .as_ref()
                .map_or(f64::NAN, |g| g.accuracy),
            t.differences.disparate_impact,
        );
    }

    std::fs::create_dir_all("results")?;
    let mut file = std::fs::File::create("results/ann_payment_options.csv")?;
    sweep.write(&mut file)?;
    println!("\nsweep written to results/ann_payment_options.csv ({n_jobs} runs)");
    Ok(())
}
