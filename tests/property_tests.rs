//! Property-based tests (proptest) over the substrates' core invariants.

use proptest::prelude::*;

use fairprep::prelude::*;
use fairprep_data::split::k_fold_indices;
use fairprep_fairness::metrics::generalized_entropy_index;
use fairprep_ml::eval::{roc_auc, ConfusionMatrix};
use fairprep_ml::transform::scaler::FittedScaler;

fn toy_dataset(n: usize) -> BinaryLabelDataset {
    let frame = DataFrame::new()
        .with_column("x", Column::from_f64((0..n).map(|i| i as f64)))
        .unwrap()
        .with_column(
            "g",
            Column::from_strs((0..n).map(|i| if i % 3 == 0 { "a" } else { "b" })),
        )
        .unwrap()
        .with_column(
            "y",
            Column::from_strs((0..n).map(|i| if i % 2 == 0 { "p" } else { "n" })),
        )
        .unwrap();
    let schema = Schema::new()
        .numeric_feature("x")
        .metadata("g", ColumnKind::Categorical)
        .label("y");
    BinaryLabelDataset::new(
        frame,
        schema,
        ProtectedAttribute::categorical("g", &["a"]),
        "p",
    )
    .unwrap()
}

proptest! {
    /// Train/validation/test always partitions the rows: disjoint, complete.
    #[test]
    fn split_partitions_rows(n in 10usize..300, seed in any::<u64>()) {
        let ds = toy_dataset(n);
        let split = train_val_test_split(&ds, SplitSpec::paper_default(), seed).unwrap();
        let mut all: Vec<usize> = split.indices.train.iter()
            .chain(&split.indices.validation)
            .chain(&split.indices.test)
            .copied()
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert!(!split.indices.test.is_empty());
        prop_assert!(!split.indices.train.is_empty());
    }

    /// k-fold validation folds partition the rows; fold sizes differ by <= 1.
    #[test]
    fn kfold_partitions_rows(n in 5usize..200, k in 2usize..5, seed in any::<u64>()) {
        prop_assume!(n >= k);
        let folds = k_fold_indices(n, k, seed).unwrap();
        let mut val: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        val.sort_unstable();
        prop_assert_eq!(val, (0..n).collect::<Vec<_>>());
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Scalers invert exactly (within float tolerance) on arbitrary values.
    #[test]
    fn scaler_roundtrips(
        values in prop::collection::vec(-1e6f64..1e6, 2..50),
        probe in -1e6f64..1e6,
    ) {
        for spec in [ScalerSpec::Standard, ScalerSpec::MinMax, ScalerSpec::NoScaling] {
            let fitted: FittedScaler = spec.fit(std::slice::from_ref(&values)).unwrap();
            let y = fitted.transform_value(0, probe).unwrap();
            let back = fitted.inverse_value(0, y).unwrap();
            // Constant columns legitimately collapse to the constant.
            let constant = values.iter().all(|v| v == &values[0]);
            if constant {
                prop_assert!((back - values[0]).abs() < 1e-6);
            } else {
                prop_assert!((back - probe).abs() < 1e-6 * probe.abs().max(1.0),
                    "{spec:?}: {probe} -> {y} -> {back}");
            }
        }
    }

    /// One-hot encodings of observed values sum to exactly 1.
    #[test]
    fn onehot_is_one_hot(
        cats in prop::collection::vec("[a-d]", 1..30),
        probe in "[a-f]",
    ) {
        let refs: Vec<&str> = cats.iter().map(String::as_str).collect();
        let col = Column::from_strs(refs);
        let enc = OneHotEncoder::fit(&col).unwrap();
        let e = enc.encode(Some(&probe));
        prop_assert_eq!(e.iter().filter(|&&v| v == 1.0).count(), 1);
        prop_assert_eq!(e.iter().filter(|&&v| v == 0.0).count(), e.len() - 1);
    }

    /// Reweighing always makes the weighted label distribution independent
    /// of the group, and preserves total mass.
    #[test]
    fn reweighing_independence(
        pattern in prop::collection::vec((any::<bool>(), any::<bool>()), 8..100),
    ) {
        // The Kamiran–Calders weights assume all four (group, label) cells
        // are occupied; with an empty cell, independence and mass
        // preservation do not hold (nothing carries the reweighed mass).
        let has = |g: bool, y: bool| pattern.iter().any(|&(pg, py)| pg == g && py == y);
        prop_assume!(has(true, true) && has(true, false));
        prop_assume!(has(false, true) && has(false, false));

        let frame = DataFrame::new()
            .with_column("x", Column::from_f64(pattern.iter().enumerate().map(|(i, _)| i as f64)))
            .unwrap()
            .with_column("g", Column::from_strs(pattern.iter().map(|&(g, _)| if g { "a" } else { "b" })))
            .unwrap()
            .with_column("y", Column::from_strs(pattern.iter().map(|&(_, y)| if y { "p" } else { "n" })))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame, schema, ProtectedAttribute::categorical("g", &["a"]), "p",
        ).unwrap();
        let out = Reweighing.fit(&ds, 0).unwrap().transform_train(&ds).unwrap();

        let w = out.instance_weights();
        let total: f64 = w.iter().sum();
        prop_assert!((total - pattern.len() as f64).abs() < 1e-6);

        let rate = |g: bool| -> Option<f64> {
            let (pos, tot) = (0..out.n_rows())
                .filter(|&i| out.privileged_mask()[i] == g)
                .fold((0.0, 0.0), |(p, t), i| (p + w[i] * out.labels()[i], t + w[i]));
            if tot > 0.0 { Some(pos / tot) } else { None }
        };
        if let (Some(rp), Some(ru)) = (rate(true), rate(false)) {
            prop_assert!((rp - ru).abs() < 1e-9, "weighted rates {rp} vs {ru}");
        }
    }

    /// DI-remover preserves within-group rank order for any repair level.
    #[test]
    fn di_remover_preserves_ranks(
        values in prop::collection::vec(-1e3f64..1e3, 8..60),
        lambda in 0.0f64..=1.0,
    ) {
        let n = values.len();
        let frame = DataFrame::new()
            .with_column("v", Column::from_f64(values.iter().copied()))
            .unwrap()
            .with_column("g", Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })))
            .unwrap()
            .with_column("y", Column::from_strs((0..n).map(|i| if i % 3 == 0 { "p" } else { "n" })))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("v")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame, schema, ProtectedAttribute::categorical("g", &["a"]), "p",
        ).unwrap();
        let out = DisparateImpactRemover::new(lambda)
            .fit(&ds, 0).unwrap().transform_train(&ds).unwrap();
        let repaired: Vec<f64> = out.frame().column("v").unwrap()
            .as_numeric().unwrap().iter().map(|v| v.unwrap()).collect();
        for g in [true, false] {
            let idx: Vec<usize> = (0..n).filter(|&i| ds.privileged_mask()[i] == g).collect();
            for a in 0..idx.len() {
                for b in (a + 1)..idx.len() {
                    let (i, j) = (idx[a], idx[b]);
                    if values[i] < values[j] {
                        prop_assert!(repaired[i] <= repaired[j] + 1e-9);
                    }
                }
            }
        }
    }

    /// Confusion-matrix identities hold for arbitrary prediction patterns.
    #[test]
    fn confusion_matrix_identities(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..100),
    ) {
        let y: Vec<f64> = pairs.iter().map(|&(t, _)| f64::from(u8::from(t))).collect();
        let p: Vec<f64> = pairs.iter().map(|&(_, q)| f64::from(u8::from(q))).collect();
        let cm = ConfusionMatrix::compute(&y, &p, None).unwrap();
        prop_assert!((cm.total() - pairs.len() as f64).abs() < 1e-9);
        prop_assert!(cm.accuracy() >= 0.0 && cm.accuracy() <= 1.0);
        if cm.tp + cm.fn_ > 0.0 {
            prop_assert!((cm.tpr() + cm.fnr() - 1.0).abs() < 1e-9);
        }
        if cm.fp + cm.tn > 0.0 {
            prop_assert!((cm.fpr() + cm.tnr() - 1.0).abs() < 1e-9);
        }
        prop_assert!((cm.selection_rate() + (cm.fn_ + cm.tn) / cm.total() - 1.0).abs() < 1e-9);
    }

    /// GEI is non-negative and zero exactly for perfect predictions.
    #[test]
    fn gei_nonnegative(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..100),
    ) {
        let y: Vec<f64> = pairs.iter().map(|&(t, _)| f64::from(u8::from(t))).collect();
        let p: Vec<f64> = pairs.iter().map(|&(_, q)| f64::from(u8::from(q))).collect();
        let gei = generalized_entropy_index(&y, &p, 2.0);
        // All-wrong-negative edge (mean benefit 0) yields NaN; otherwise >= 0.
        if !gei.is_nan() {
            prop_assert!(gei >= -1e-12, "gei {gei}");
        }
        let perfect = generalized_entropy_index(&y, &y, 2.0);
        prop_assert!(perfect.abs() < 1e-12);
    }

    /// ROC-AUC stays within [0, 1] whenever defined.
    #[test]
    fn auc_bounded(
        labels in prop::collection::vec(any::<bool>(), 2..80),
        raw_scores in prop::collection::vec(0.0f64..1.0, 2..80),
    ) {
        let n = labels.len().min(raw_scores.len());
        let y: Vec<f64> = labels[..n].iter().map(|&b| f64::from(u8::from(b))).collect();
        let s = &raw_scores[..n];
        let auc = roc_auc(&y, s).unwrap();
        if !auc.is_nan() {
            prop_assert!((0.0..=1.0).contains(&auc), "auc {auc}");
        }
    }

    /// CSV write → read roundtrips arbitrary frames (including tricky
    /// strings and missing cells).
    #[test]
    fn csv_roundtrip(
        rows in prop::collection::vec(
            (proptest::option::of(-1e6f64..1e6), proptest::option::of("[a-z ,\"]{0,8}")),
            1..40,
        ),
    ) {
        use fairprep_data::csv::{read_csv, write_csv, DEFAULT_MISSING_TOKENS};
        // Categories that trim to a missing token or to empty would not
        // roundtrip by design; skip those inputs.
        let rows: Vec<_> = rows
            .into_iter()
            .map(|(num, cat)| {
                let cat = cat.filter(|c| {
                    let t = c.trim();
                    !t.is_empty() && !DEFAULT_MISSING_TOKENS.contains(&t) && t == c
                });
                (num, cat)
            })
            .collect();
        let frame = DataFrame::new()
            .with_column("n", Column::from_optional_f64(rows.iter().map(|(v, _)| *v)))
            .unwrap()
            .with_column(
                "c",
                Column::from_optional_strs(rows.iter().map(|(_, c)| c.as_deref())),
            )
            .unwrap();
        let mut buffer = Vec::new();
        write_csv(&frame, &mut buffer).unwrap();
        let back = read_csv(
            std::io::Cursor::new(buffer),
            &[("n", ColumnKind::Numeric), ("c", ColumnKind::Categorical)],
            DEFAULT_MISSING_TOKENS,
        ).unwrap();
        prop_assert_eq!(back.n_rows(), frame.n_rows());
        for i in 0..frame.n_rows() {
            prop_assert_eq!(back.value(i, "n").unwrap(), frame.value(i, "n").unwrap());
            prop_assert_eq!(back.value(i, "c").unwrap(), frame.value(i, "c").unwrap());
        }
    }

    /// Mode/mean-mode imputation always produces a complete dataset and
    /// never alters observed cells.
    #[test]
    fn imputation_completes_without_touching_observed(
        cells in prop::collection::vec(proptest::option::of(-100f64..100.0), 8..60),
    ) {
        prop_assume!(cells.iter().any(Option::is_some));
        let n = cells.len();
        let frame = DataFrame::new()
            .with_column("v", Column::from_optional_f64(cells.iter().copied()))
            .unwrap()
            .with_column("g", Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })))
            .unwrap()
            .with_column("y", Column::from_strs((0..n).map(|i| if i % 3 == 0 { "p" } else { "n" })))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("v")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame, schema, ProtectedAttribute::categorical("g", &["a"]), "p",
        ).unwrap();
        for handler in [&ModeImputer as &dyn MissingValueHandler, &MeanModeImputer] {
            let out = handler.fit(&ds, 0).unwrap().handle_missing(&ds).unwrap();
            prop_assert_eq!(out.frame().missing_cells(), 0);
            for (i, cell) in cells.iter().enumerate() {
                if let Some(v) = cell {
                    prop_assert_eq!(
                        out.frame().value(i, "v").unwrap(),
                        Value::Numeric(*v)
                    );
                }
            }
        }
    }
}

/// Span-tree properties of traced lifecycle runs: for arbitrary component
/// stacks, the recorded span events form a well-formed tree (every stage
/// entered exactly once per occurrence, properly nested, no orphan
/// exits), the manifest's span structure mirrors the configured pipeline,
/// and the counters are mutually consistent.
mod span_tree_properties {
    use super::*;
    use fairprep::trace::{validate_span_events, Counter, Tracer};
    use fairprep_trace::SpanNode;

    fn child_names(node: &SpanNode) -> Vec<&str> {
        node.children.iter().map(|c| c.stage.as_str()).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn traced_runs_record_wellformed_span_trees(
            missing in 0usize..3,
            with_pre in any::<bool>(),
            with_post in any::<bool>(),
            learners in prop::collection::vec(0usize..3, 1..3),
            seed in 0u64..10_000,
        ) {
            let n_rows = 160usize;
            let dataset = generate_payment(n_rows, 5).unwrap();
            let tracer = Tracer::enabled();
            let mut builder = Experiment::builder("payment", dataset)
                .seed(seed)
                .tracer(tracer.clone());
            builder = match missing {
                0 => builder.missing_value_handler(CompleteCaseAnalysis),
                1 => builder.missing_value_handler(ModeImputer),
                _ => builder.missing_value_handler(MeanModeImputer),
            };
            if with_pre {
                builder = builder.preprocessor(Reweighing);
            }
            if with_post {
                builder = builder.postprocessor(RejectOptionClassification::default());
            }
            let mut any_tuned = false;
            for &choice in &learners {
                builder = match choice {
                    0 => builder.learner(LogisticRegressionLearner { tuned: false }),
                    1 => builder.learner(DecisionTreeLearner { tuned: false }),
                    _ => {
                        any_tuned = true;
                        builder.learner(DecisionTreeLearner { tuned: true })
                    }
                };
            }
            let result = builder.build().unwrap().run().unwrap();

            // The raw event stream obeys stack discipline: every exit
            // matches the innermost open span and nothing is left open.
            let events = tracer.span_events();
            prop_assert!(validate_span_events(&events).is_ok(),
                "{:?}", validate_span_events(&events));
            prop_assert_eq!(events.iter().filter(|e| e.enter).count(), events.len() / 2);

            let manifest = result.manifest.as_ref().unwrap();

            // Root layout: split, one candidate per learner, select, evaluate.
            let roots: Vec<&str> = manifest.spans.iter().map(|s| s.stage.as_str()).collect();
            prop_assert_eq!(roots.first().copied(), Some("split"));
            prop_assert_eq!(roots.last().copied(), Some("evaluate"));
            prop_assert_eq!(
                roots.iter().filter(|s| **s == "candidate").count(),
                learners.len()
            );
            prop_assert_eq!(roots.iter().filter(|s| **s == "select").count(), 1);
            prop_assert_eq!(manifest.spans.len(), learners.len() + 3);

            // Every candidate runs the same stage sequence; postprocess
            // appears exactly when a postprocessor is configured.
            for (node, &choice) in manifest
                .spans
                .iter()
                .filter(|s| s.stage == "candidate")
                .zip(&learners)
            {
                let mut expected =
                    vec!["impute", "preprocess", "scale", "train"];
                if with_post {
                    expected.push("postprocess");
                }
                expected.push("evaluate");
                prop_assert_eq!(child_names(node), expected);
                // A cross-validated learner nests `tune` under `train`.
                let train = node
                    .children
                    .iter()
                    .find(|c| c.stage == "train")
                    .unwrap();
                prop_assert_eq!(child_names(train), if choice == 2 { vec!["tune"] } else { Vec::new() });
            }

            // Counter consistency.
            prop_assert_eq!(tracer.counter(Counter::RowsSeen), n_rows as u64);
            prop_assert_eq!(
                tracer.counter(Counter::CandidatesEvaluated),
                learners.len() as u64
            );
            prop_assert_eq!(tracer.counter(Counter::JobsFailed), 0);
            prop_assert!(manifest.failures.is_empty());
            // A record-removing handler never imputes, and vice versa.
            if missing == 0 {
                prop_assert_eq!(tracer.counter(Counter::CellsImputed), 0);
            } else {
                prop_assert_eq!(tracer.counter(Counter::RowsDropped), 0);
            }
            // Fold counters appear exactly when some learner cross-validates.
            if any_tuned {
                prop_assert!(tracer.counter(Counter::FoldsEvaluated) > 0);
            } else {
                prop_assert_eq!(tracer.counter(Counter::FoldsEvaluated), 0);
                prop_assert_eq!(tracer.counter(Counter::FoldCacheHits), 0);
            }
        }
    }
}
