//! Golden request/response suite of the scoring service.
//!
//! For every shipped dataset: re-fit the fixed golden pipeline, serve
//! it in-process on an ephemeral port, replay the committed requests
//! from `tests/golden_serve/<dataset>.json` over real HTTP, and demand
//! the responses match the committed bytes exactly. Regenerate the
//! fixtures with `cargo run --release --example golden_serve` when a
//! serving-path change is intentional.

use fairprep_cli::golden::{fixture_path, golden_pipeline, GOLDEN_DATASETS};
use fairprep_cli::serve::{http_request, Registry, ServerHandle};
use fairprep_trace::json::{parse, Value};

#[test]
fn golden_serve_fixtures_replay_byte_identically() {
    for dataset in GOLDEN_DATASETS {
        let text = std::fs::read_to_string(fixture_path(dataset))
            .unwrap_or_else(|e| panic!("missing fixture for `{dataset}`: {e}"));
        let fixture = parse(&text).unwrap();

        let sealed = golden_pipeline(dataset).unwrap();
        assert_eq!(
            fixture.get("fingerprint").and_then(Value::as_str),
            Some(sealed.fingerprint.as_str()),
            "{dataset}: pipeline fingerprint drifted from the committed fixture"
        );

        let mut registry = Registry::new();
        registry.insert(sealed);
        let server = ServerHandle::spawn(registry, 0, 2).unwrap();

        let requests = fixture
            .get("requests")
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{dataset}: fixture carries no requests"));
        assert!(requests.len() >= 2, "{dataset}: fixture is too small");
        for (i, request) in requests.iter().enumerate() {
            let path = request.get("path").and_then(Value::as_str).unwrap();
            let body = request.get("body").and_then(Value::as_str).unwrap();
            let expected_status = request.get("status").and_then(Value::as_u64_any).unwrap();
            let expected_response = request.get("response").and_then(Value::as_str).unwrap();

            let (status, response) = http_request(server.addr(), "POST", path, Some(body)).unwrap();
            assert_eq!(u64::from(status), expected_status, "{dataset} request {i}");
            assert_eq!(
                response, expected_response,
                "{dataset} request {i}: response bytes drifted"
            );
        }
        server.stop();
    }
}
