//! End-to-end lifecycle runs over every integrated benchmark dataset, with
//! interventions from all three stages — the cross-crate smoke matrix.

use fairprep::prelude::*;

fn sanity(result: &fairprep_core::results::RunResult, min_accuracy: f64) {
    let t = &result.test_report;
    assert!(
        t.overall.accuracy >= min_accuracy && t.overall.accuracy <= 1.0,
        "accuracy {} out of range",
        t.overall.accuracy
    );
    assert!(t.overall.n_instances > 0);
    assert!(t.privileged.n_instances > 0);
    assert!(t.unprivileged.n_instances > 0);
    assert_eq!(
        t.overall.n_instances,
        t.privileged.n_instances + t.unprivileged.n_instances
    );
    // The report carries the full metric surface.
    assert!(t.to_map().len() >= 97);
}

#[test]
fn german_with_reweighing_and_tuned_lr() {
    let result = Experiment::builder("german", generate_german(500, 1).unwrap())
        .seed(46947)
        .preprocessor(Reweighing)
        .learner(LogisticRegressionLearner { tuned: true })
        .build()
        .unwrap()
        .run()
        .unwrap();
    sanity(&result, 0.55);
}

#[test]
fn ricci_with_di_remover_and_tree() {
    let result = Experiment::builder("ricci", generate_ricci(118, 2).unwrap())
        .seed(94246)
        .preprocessor(DisparateImpactRemover::new(0.5))
        .learner(DecisionTreeLearner { tuned: false })
        .build()
        .unwrap()
        .run()
        .unwrap();
    // Tiny dataset: just require better-than-chance behavior end to end.
    sanity(&result, 0.4);
}

#[test]
fn adult_with_mode_imputation() {
    let ds = generate_adult(2500, 3, AdultProtected::Race).unwrap();
    let result = Experiment::builder("adult", ds)
        .seed(71735)
        .missing_value_handler(ModeImputer)
        .learner(DecisionTreeLearner { tuned: false })
        .build()
        .unwrap()
        .run()
        .unwrap();
    // An untuned full-depth tree overfits here — exactly the §2.2 point
    // about untuned baselines — so the bar is modest.
    sanity(&result, 0.6);
    // Completeness tracking is active under imputation.
    assert!(result.test_report.complete_records.is_some());
    assert!(result.test_report.incomplete_records.is_some());
}

#[test]
fn adult_with_model_based_imputation() {
    let ds = generate_adult(1500, 4, AdultProtected::Race).unwrap();
    let result = Experiment::builder("adult", ds)
        .seed(31807)
        .missing_value_handler(ModelBasedImputer::default())
        .learner(LogisticRegressionLearner { tuned: false })
        .build()
        .unwrap()
        .run()
        .unwrap();
    sanity(&result, 0.65);
    let inc = result.test_report.incomplete_records.as_ref().unwrap();
    // §5.3 headline: "records with imputed values achieve high accuracy ...
    // these records could not have been classified at all before
    // imputation!"
    assert!(inc.n_instances > 0);
    assert!(
        inc.accuracy > 0.5,
        "imputed-record accuracy {}",
        inc.accuracy
    );
}

#[test]
fn compas_with_adversarial_debiasing() {
    let ds = generate_compas(2000, 5, CompasProtected::Race).unwrap();
    let result = Experiment::builder("compas", ds)
        .seed(11)
        .learner(InProcessLearner::new(AdversarialDebiasing::default()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    sanity(&result, 0.5);
}

#[test]
fn compas_with_postprocessors() {
    for run_idx in 0..2 {
        let ds = generate_compas(1500, 6, CompasProtected::Race).unwrap();
        let builder = Experiment::builder("compas", ds)
            .seed(17)
            .learner(LogisticRegressionLearner { tuned: false });
        let builder = if run_idx == 0 {
            builder.postprocessor(RejectOptionClassification::default())
        } else {
            builder.postprocessor(CalibratedEqOdds::default())
        };
        let result = builder.build().unwrap().run().unwrap();
        sanity(&result, 0.45);
    }
}

#[test]
fn payment_with_oversampling_and_naive_bayes() {
    let ds = generate_payment(800, 7).unwrap();
    let result = Experiment::builder("payment", ds)
        .seed(23)
        .resampler(OversampleMinorityClass)
        .missing_value_handler(MeanModeImputer)
        .learner(NaiveBayesLearner)
        .build()
        .unwrap()
        .run()
        .unwrap();
    sanity(&result, 0.5);
}

#[test]
fn multi_candidate_selection_picks_a_valid_index() {
    let ds = generate_german(400, 8).unwrap();
    let result = Experiment::builder("german", ds)
        .seed(29)
        .learner(LogisticRegressionLearner { tuned: false })
        .learner(DecisionTreeLearner { tuned: false })
        .learner(NaiveBayesLearner)
        .model_selector(AccuracyUnderDiBound {
            max_di_deviation: 0.25,
        })
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(result.metadata.selected < 3);
    assert_eq!(result.candidates.len(), 3);
    sanity(&result, 0.5);
}

#[test]
fn stratified_split_keeps_rare_cells_on_tiny_ricci() {
    // Plain splits of the 118-row ricci data can lose a (label, group) cell
    // for some seeds; the stratified split never does.
    let ds = generate_ricci(118, 2).unwrap();
    let result = Experiment::builder("ricci", ds)
        .seed(94246)
        .stratified_split(true)
        .learner(DecisionTreeLearner { tuned: false })
        .build()
        .unwrap()
        .run()
        .unwrap();
    let t = &result.test_report;
    // Both groups and both label classes exist in the evaluated test set.
    assert!(t.privileged.n_positives > 0);
    assert!(t.privileged.n_negatives > 0);
    assert!(t.unprivileged.n_positives > 0);
    assert!(t.unprivileged.n_negatives > 0);
}

#[test]
fn lfr_learner_runs_in_the_lifecycle() {
    let ds = generate_compas(1200, 8, CompasProtected::Race).unwrap();
    let result = Experiment::builder("compas", ds)
        .seed(12)
        .learner(InProcessLearner::new(LearnedFairRepresentations {
            iterations: 60,
            ..Default::default()
        }))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(result.metadata.candidates[0].starts_with("lfr"));
    sanity(&result, 0.4);
}

#[test]
fn group_threshold_postprocessor_runs_in_the_lifecycle() {
    let ds = generate_compas(1500, 9, CompasProtected::Race).unwrap();
    let result = Experiment::builder("compas", ds)
        .seed(13)
        .learner(LogisticRegressionLearner { tuned: false })
        .postprocessor(GroupThresholdOptimizer::default())
        .build()
        .unwrap()
        .run()
        .unwrap();
    sanity(&result, 0.45);
    assert!(result
        .metadata
        .postprocessor
        .starts_with("group_thresholds"));
}

#[test]
fn preferential_sampling_runs_in_the_lifecycle() {
    let ds = generate_german(400, 10).unwrap();
    let result = Experiment::builder("german", ds)
        .seed(14)
        .preprocessor(PreferentialSampling)
        .learner(LogisticRegressionLearner { tuned: false })
        .build()
        .unwrap()
        .run()
        .unwrap();
    sanity(&result, 0.5);
    assert_eq!(result.metadata.preprocessor, "preferential_sampling");
}
