//! Integration tests for the paper's core guarantee: **test-set isolation**.
//!
//! "User code should only interact with the training set, and never be able
//! to access the held-out test set" (§3). These tests demonstrate the
//! property behaviorally: everything that happens in phases 1–2 (component
//! fitting, candidate training, validation metrics, model selection) is
//! bit-identical whether or not the test partition's contents change.

use fairprep::prelude::*;
use fairprep_data::column::OwnedValue;
use fairprep_data::split::train_val_test_split;

/// Builds the german dataset and a copy whose *test rows only* are
/// perturbed (feature values overwritten with constants).
fn original_and_test_perturbed(seed: u64) -> (BinaryLabelDataset, BinaryLabelDataset) {
    let original = generate_german(400, 3).unwrap();
    // Recover the exact test rows the lifecycle will use: the split is a
    // pure function of (dataset order, seed).
    let split = train_val_test_split(&original, SplitSpec::paper_default(), seed).unwrap();

    let mut perturbed = original.clone();
    for &row in &split.indices.test {
        perturbed
            .frame_mut()
            .set_value(row, "credit-amount", OwnedValue::Numeric(999_999.0))
            .unwrap();
        perturbed
            .frame_mut()
            .set_value(row, "duration", OwnedValue::Numeric(0.0))
            .unwrap();
    }
    perturbed.refresh_caches().unwrap();
    (original, perturbed)
}

fn run(dataset: BinaryLabelDataset, seed: u64) -> fairprep_core::results::RunResult {
    Experiment::builder("german", dataset)
        .seed(seed)
        .preprocessor(Reweighing)
        .learner(LogisticRegressionLearner { tuned: false })
        .learner(DecisionTreeLearner { tuned: false })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

fn maps_equal(
    a: &std::collections::BTreeMap<String, f64>,
    b: &std::collections::BTreeMap<String, f64>,
) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ka, va), (kb, vb))| ka == kb && ((va.is_nan() && vb.is_nan()) || va == vb))
}

#[test]
fn perturbing_test_rows_does_not_change_validation_metrics_or_selection() {
    let seed = 46947;
    let (original, perturbed) = original_and_test_perturbed(seed);
    let a = run(original, seed);
    let b = run(perturbed, seed);

    // Phase 1–2 outputs are bit-identical: imputation statistics, scaler
    // statistics, trained models, and validation metrics never saw the
    // test rows.
    assert_eq!(a.candidates.len(), b.candidates.len());
    for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
        assert_eq!(ca.learner, cb.learner);
        assert!(
            maps_equal(
                &ca.validation_report.to_map(),
                &cb.validation_report.to_map()
            ),
            "validation metrics changed when only test rows changed"
        );
        assert!(
            maps_equal(&ca.train_report.to_map(), &cb.train_report.to_map()),
            "train metrics changed when only test rows changed"
        );
    }
    assert_eq!(a.metadata.selected, b.metadata.selected);

    // Phase 3, by contrast, MUST see the difference: the perturbed test
    // features flow into the final predictions.
    assert!(
        !maps_equal(&a.test_report.to_map(), &b.test_report.to_map()),
        "test metrics should differ once test features differ"
    );
}

#[test]
fn scaler_statistics_come_from_training_data_only() {
    // Direct check at the substrate level: featurizer fitted on train maps
    // an out-of-range test value beyond [0, 1] under min-max scaling.
    use fairprep_ml::transform::{FittedFeaturizer, ScalerSpec};
    let ds = generate_german(300, 5).unwrap();
    let split = train_val_test_split(&ds, SplitSpec::paper_default(), 1).unwrap();
    let featurizer = FittedFeaturizer::fit(&split.train, ScalerSpec::MinMax).unwrap();
    let x_test = featurizer.transform(&split.test).unwrap();
    // If the featurizer had peeked at the test set, every value would lie
    // inside [0, 1]. Values outside prove train-only statistics. (They are
    // not guaranteed for every seed, but for this fixed seed they exist.)
    let out_of_unit = x_test.data().iter().any(|&v| !(0.0..=1.0).contains(&v));
    assert!(
        out_of_unit,
        "expected at least one out-of-train-range test value"
    );
}

#[test]
fn vault_api_exposes_only_aggregates() {
    // Compile-time isolation: TestSetVault's data accessors are pub(crate).
    // From this external crate, only aggregate methods exist. (If this test
    // compiles, the API is closed; calling vault.data() here would not
    // build.) We verify the aggregate surface works.
    use fairprep_core::isolation::TestSetVault;
    // The only way to obtain a vault outside the crate would be through the
    // lifecycle, which never hands it out — so we just assert the type's
    // public surface via a trait-object-safe check of method existence.
    fn _surface(v: &TestSetVault) -> (usize, usize, usize) {
        (v.n_rows(), v.n_privileged(), v.n_incomplete())
    }
}

#[test]
fn postprocessor_is_fitted_on_validation_not_test() {
    // Same perturbation argument, now with a postprocessor in play: the
    // fitted reject-option band is a pure function of validation
    // predictions, so it must be identical under test perturbation.
    let seed = 71735;
    let (original, perturbed) = original_and_test_perturbed(seed);
    let run_with_post = |ds: BinaryLabelDataset| {
        Experiment::builder("german", ds)
            .seed(seed)
            .learner(LogisticRegressionLearner { tuned: false })
            .postprocessor(RejectOptionClassification::default())
            .build()
            .unwrap()
            .run()
            .unwrap()
    };
    let a = run_with_post(original);
    let b = run_with_post(perturbed);
    for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
        assert!(maps_equal(
            &ca.validation_report.to_map(),
            &cb.validation_report.to_map()
        ));
    }
}
