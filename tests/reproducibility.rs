//! Integration tests for §2.5: reproducibility.
//!
//! "A major factor ... is to fix the seeds for pseudo-random number
//! generators throughout the evaluation run, and provide the fixed seed to
//! all components (data splitters, learning algorithms, feature
//! transformations)."

use std::collections::BTreeMap;

use fairprep::prelude::*;

fn maps_equal(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ka, va), (kb, vb))| ka == kb && ((va.is_nan() && vb.is_nan()) || va == vb))
}

fn full_pipeline_run(seed: u64) -> fairprep_core::results::RunResult {
    // Exercise every randomized component at once: resampling, learned
    // imputation, DI repair, SGD training, calibrated-eq-odds mixing.
    let dataset = generate_payment(800, 13).unwrap();
    Experiment::builder("payment", dataset)
        .seed(seed)
        .resampler(Bootstrap { fraction: 1.0 })
        .missing_value_handler(ModelBasedImputer::default())
        .preprocessor(DisparateImpactRemover::new(0.8))
        .learner(LogisticRegressionLearner { tuned: false })
        .postprocessor(CalibratedEqOdds::default())
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn identical_seeds_give_bitwise_identical_runs() {
    let a = full_pipeline_run(42);
    let b = full_pipeline_run(42);
    assert!(maps_equal(&a.test_report.to_map(), &b.test_report.to_map()));
    for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
        assert!(maps_equal(
            &ca.validation_report.to_map(),
            &cb.validation_report.to_map()
        ));
    }
    assert_eq!(a.metadata.selected, b.metadata.selected);
}

#[test]
fn different_seeds_give_different_runs() {
    let a = full_pipeline_run(1);
    let b = full_pipeline_run(2);
    assert!(!maps_equal(
        &a.test_report.to_map(),
        &b.test_report.to_map()
    ));
}

#[test]
fn seed_is_threaded_to_all_components_not_just_the_splitter() {
    // Two datasets with identical content; the only difference between runs
    // is the seed. If only the splitter were seeded, bootstrap/model
    // training would consume ambient randomness and repeated runs would
    // diverge — covered by `identical_seeds...`. Here we additionally check
    // that the *candidate* seeds differ per candidate: two identical
    // learners in one run may produce different models (independent
    // streams), which is the documented per-candidate seed derivation.
    let dataset = generate_german(300, 9).unwrap();
    let result = Experiment::builder("german", dataset)
        .seed(7)
        .learner(LogisticRegressionLearner { tuned: false })
        .learner(LogisticRegressionLearner { tuned: false })
        .build()
        .unwrap()
        .run()
        .unwrap();
    // Same learner, same data — but independent random streams. SGD
    // shuffling differs, so the validation metrics are extremely unlikely
    // to coincide bitwise on every metric.
    let a = result.candidates[0].validation_report.to_map();
    let b = result.candidates[1].validation_report.to_map();
    assert!(!maps_equal(&a, &b), "candidate seeds are not independent");
}

/// Golden-trace suite: the canonical run manifest of each golden
/// experiment must match the committed golden file byte-for-byte, at one
/// thread *and* at eight. Any change to the lifecycle that alters the
/// span structure, a counter, a component name, a partition size, or the
/// output-metric digest shows up here as a diff against
/// `tests/golden/*.json` (regenerate with
/// `cargo run --example golden_trace` when the change is intentional).
#[test]
fn golden_trace_manifests_are_byte_stable() {
    use fairprep::golden::{golden_canonical, GOLDEN_CASES};

    let goldens: [(&str, &str); 2] = [
        ("german-tuned", include_str!("golden/german_tuned.json")),
        ("payment-impute", include_str!("golden/payment_impute.json")),
    ];
    assert_eq!(goldens.len(), GOLDEN_CASES.len());

    for (case, golden) in goldens {
        let at_one = golden_canonical(case, 1).unwrap();
        let at_eight = golden_canonical(case, 8).unwrap();
        assert_eq!(
            at_one, at_eight,
            "case `{case}`: canonical manifest differs between 1 and 8 threads"
        );
        assert_eq!(
            at_one, golden,
            "case `{case}`: canonical manifest drifted from tests/golden/ \
             (regenerate with `cargo run --example golden_trace` if intentional)"
        );
        // The goldens run with profiling on, so the byte-equality above
        // also pins the profile section; make its presence explicit so a
        // regression that silently drops the section cannot pass.
        assert!(
            at_one.contains("\"profile\""),
            "case `{case}`: golden manifest lost its profile section"
        );
        assert!(at_one.contains("\"snapshots\""));
        assert!(at_one.contains("\"psi\""));
    }
}

/// The profile section alone (not just the whole manifest) is a pure
/// function of `(configuration, data, seed)`: snapshots, diffs, and the
/// drift table are identical at any thread budget.
#[test]
fn golden_profile_sections_are_thread_invariant() {
    use fairprep::golden::run_golden;
    let at_one = run_golden("payment-impute", 1).unwrap();
    let at_eight = run_golden("payment-impute", 8).unwrap();
    let p1 = at_one.manifest.as_ref().unwrap().profile.as_ref().unwrap();
    let p8 = at_eight
        .manifest
        .as_ref()
        .unwrap()
        .profile
        .as_ref()
        .unwrap();
    assert_eq!(p1, p8);
    // The drift table renders at least one PSI column and the per-group
    // base-rate columns.
    let table = p1.drift_table();
    assert!(table.contains("max_psi"), "{table}");
    assert!(table.contains("Δpriv_rate"), "{table}");
    assert!(table.contains("raw->train_split"), "{table}");
}

/// Consecutive runs of the same configuration serialize identically —
/// the canonical projection contains no timing, ordering, or allocation
/// artifacts.
#[test]
fn golden_trace_consecutive_runs_are_identical() {
    use fairprep::golden::golden_canonical;
    let first = golden_canonical("payment-impute", 2).unwrap();
    let second = golden_canonical("payment-impute", 2).unwrap();
    assert_eq!(first, second);
}

/// The full manifest embeds the canonical serialization as a literal
/// prefix; only the `timing` section may differ run to run.
#[test]
fn full_manifest_embeds_canonical_prefix() {
    use fairprep::golden::run_golden;
    let result = run_golden("german-tuned", 2).unwrap();
    let manifest = result.manifest.as_ref().unwrap();
    let canonical = manifest.canonical();
    let full = manifest.to_json();
    let prefix = canonical.trim_end().trim_end_matches('}').trim_end();
    assert!(
        full.starts_with(prefix),
        "canonical body must be a literal prefix of the full manifest"
    );
    assert!(full.contains("\"timing\""));
    assert!(!canonical.contains("\"timing\""));
    assert!(!canonical.contains("wall_ns"));
}

#[test]
fn sweeps_are_reproducible_under_parallelism() {
    use fairprep_core::runner::{run_parallel, Job};
    let make_jobs = || -> Vec<Job> {
        (0..6)
            .map(|i| {
                Box::new(move || {
                    Experiment::builder("german", generate_german(150, 2)?)
                        .seed(100 + i)
                        .learner(DecisionTreeLearner { tuned: false })
                        .build()?
                        .run()
                }) as Job
            })
            .collect()
    };
    let serial = run_parallel(make_jobs(), 1);
    let parallel = run_parallel(make_jobs(), 4);
    for (a, b) in serial.iter().zip(&parallel) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert!(maps_equal(&a.test_report.to_map(), &b.test_report.to_map()));
    }
}
