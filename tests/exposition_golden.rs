//! Golden Prometheus exposition of the scoring service.
//!
//! Replays the german golden requests sequentially on one worker with a
//! pinned fake latency — the only nondeterministic input — and demands
//! the `/metrics` Prometheus scrape match the committed fixture
//! byte-for-byte. Any drift in metric names, label sets, number
//! formatting, PSI arithmetic, or rolling-window bookkeeping fails the
//! build. Regenerate with `cargo run --release --example golden_serve`
//! when a change is intentional.
//!
//! The same run also pins the content-negotiation contract: `/metrics`
//! answers JSON by default and Prometheus text only when asked.

use fairprep_cli::golden::{golden_bodies, golden_pipeline};
use fairprep_cli::serve::{http_request, http_request_accept, Registry, ServerHandle};
use fairprep_trace::json::parse;

#[test]
fn golden_prometheus_exposition_replays_byte_identically() {
    let expected = std::fs::read_to_string("tests/golden_serve/german.metrics.prom")
        .expect("missing exposition fixture");

    let sealed = golden_pipeline("german").unwrap();
    let predict_path = format!("/predict/{}", sealed.fingerprint.replace(':', "-"));
    let bodies = golden_bodies("german").unwrap();
    let mut registry = Registry::new();
    registry.insert(sealed);
    let server = ServerHandle::spawn(registry, 0, 1).unwrap();
    server.registry().set_fixed_latency_us(1000);
    for body in &bodies {
        let (status, response) =
            http_request(server.addr(), "POST", &predict_path, Some(body)).unwrap();
        assert_eq!(status, 200, "{response}");
    }

    // Default (no Accept header): the JSON document, as always.
    let (status, json_body) = http_request(server.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let doc = parse(&json_body).expect("default /metrics must stay JSON");
    assert!(doc.get("pipelines").is_some());

    // An explicit JSON Accept also gets JSON.
    let (_, negotiated_json) = http_request_accept(
        server.addr(),
        "GET",
        "/metrics",
        None,
        Some("application/json"),
    )
    .unwrap();
    assert_eq!(negotiated_json, json_body);

    // Prometheus text exposition on request — byte-identical to the
    // committed fixture.
    let (status, exposition) = http_request_accept(
        server.addr(),
        "GET",
        "/metrics",
        None,
        Some("text/plain; version=0.0.4"),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        exposition, expected,
        "Prometheus exposition drifted from the committed fixture"
    );
    // Minimal syntax sanity on top of the byte comparison.
    assert!(exposition.starts_with("# HELP fairprep_pipelines "));
    for line in exposition.lines() {
        assert!(
            line.starts_with("# HELP ") || line.starts_with("# TYPE ") || line.contains(' '),
            "malformed exposition line: {line}"
        );
    }
    server.stop();
}
