//! Property-based tests over models, interventions, and post-processors.

use proptest::prelude::*;

use fairprep::prelude::*;
use fairprep_ml::matrix::Matrix;

/// Strategy: a small binary-classification problem with both classes
/// present.
fn problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec(
        (prop::collection::vec(-10.0f64..10.0, 3), any::<bool>()),
        10..60,
    )
    .prop_filter("both classes", |rows| {
        rows.iter().any(|(_, y)| *y) && rows.iter().any(|(_, y)| !*y)
    })
    .prop_map(|rows| {
        let x: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
        let y: Vec<f64> = rows.iter().map(|(_, y)| f64::from(u8::from(*y))).collect();
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every classifier produces probabilities in [0, 1] on its own
    /// training data, for arbitrary inputs and seeds.
    #[test]
    fn classifiers_emit_valid_probabilities((rows, y) in problem(), seed in any::<u64>()) {
        let x = Matrix::from_rows(&rows).unwrap();
        let w = vec![1.0; y.len()];
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(LogisticRegressionSgd::default()),
            Box::new(DecisionTree::default()),
            Box::new(GaussianNaiveBayes::default()),
            Box::new(KNearestNeighbors { k: 3 }),
            Box::new(RandomForest::new(RandomForestConfig {
                n_trees: 7,
                ..Default::default()
            })),
        ];
        for model in models {
            let fitted = model.fit(&x, &y, &w, seed).unwrap();
            for p in fitted.predict_proba(&x).unwrap() {
                prop_assert!((0.0..=1.0).contains(&p) && p.is_finite(),
                    "{}: proba {p}", model.name());
            }
        }
    }

    /// Classifier training is a pure function of (data, weights, seed).
    #[test]
    fn classifier_training_is_deterministic((rows, y) in problem(), seed in any::<u64>()) {
        let x = Matrix::from_rows(&rows).unwrap();
        let w = vec![1.0; y.len()];
        for model in [
            Box::new(LogisticRegressionSgd::default()) as Box<dyn Classifier>,
            Box::new(RandomForest::new(RandomForestConfig { n_trees: 5, ..Default::default() })),
        ] {
            let a = model.fit(&x, &y, &w, seed).unwrap().predict_proba(&x).unwrap();
            let b = model.fit(&x, &y, &w, seed).unwrap().predict_proba(&x).unwrap();
            prop_assert_eq!(a, b, "{} not deterministic", model.name());
        }
    }

    /// Post-processor outputs are always hard 0/1 labels of the right length.
    #[test]
    fn postprocessors_emit_hard_labels(
        raw in prop::collection::vec((0.01f64..0.99, any::<bool>(), any::<bool>()), 16..80),
        seed in any::<u64>(),
    ) {
        let scores: Vec<f64> = raw.iter().map(|(s, _, _)| *s).collect();
        let labels: Vec<f64> = raw.iter().map(|(_, y, _)| f64::from(u8::from(*y))).collect();
        let mask: Vec<bool> = raw.iter().map(|(_, _, g)| *g).collect();
        prop_assume!(mask.iter().any(|&m| m) && mask.iter().any(|&m| !m));
        let posts: Vec<Box<dyn Postprocessor>> = vec![
            Box::new(NoPostprocessing),
            Box::new(RejectOptionClassification::default()),
            Box::new(CalibratedEqOdds::default()),
            Box::new(EqOddsPostprocessing { steps: 4 }),
            Box::new(GroupThresholdOptimizer { steps: 8, ..Default::default() }),
        ];
        for post in posts {
            let fitted = post.fit(&scores, &labels, &mask, seed).unwrap();
            let adjusted = fitted.adjust(&scores, &mask).unwrap();
            prop_assert_eq!(adjusted.len(), scores.len());
            prop_assert!(adjusted.iter().all(|&v| v == 0.0 || v == 1.0),
                "{} emitted a non-binary prediction", post.name());
            // Adjustment is deterministic for a fixed fitted state.
            prop_assert_eq!(&adjusted, &fitted.adjust(&scores, &mask).unwrap());
        }
    }

    /// DI-remover with λ=0 is the identity on any dataset (not just the
    /// biased fixture).
    #[test]
    fn di_remover_zero_lambda_identity(values in prop::collection::vec(-50.0f64..50.0, 6..40)) {
        let n = values.len();
        let frame = DataFrame::new()
            .with_column("v", Column::from_f64(values.iter().copied()))
            .unwrap()
            .with_column("g", Column::from_strs((0..n).map(|i| if i % 2 == 0 { "a" } else { "b" })))
            .unwrap()
            .with_column("y", Column::from_strs((0..n).map(|i| if i % 3 == 0 { "p" } else { "n" })))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("v")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame, schema, ProtectedAttribute::categorical("g", &["a"]), "p",
        ).unwrap();
        let out = DisparateImpactRemover::new(0.0)
            .fit(&ds, 0).unwrap().transform_train(&ds).unwrap();
        prop_assert_eq!(out.frame(), ds.frame());
    }

    /// Massaging preserves the total number of positive labels for any
    /// group/label pattern with all four cells occupied.
    #[test]
    fn massaging_preserves_positive_count(
        pattern in prop::collection::vec((any::<bool>(), any::<bool>()), 12..80),
    ) {
        let has = |g: bool, y: bool| pattern.iter().any(|&(pg, py)| pg == g && py == y);
        prop_assume!(has(true, true) && has(true, false));
        prop_assume!(has(false, true) && has(false, false));
        let n = pattern.len();
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(|i| (i % 7) as f64)))
            .unwrap()
            .with_column("g", Column::from_strs(pattern.iter().map(|&(g, _)| if g { "a" } else { "b" })))
            .unwrap()
            .with_column("y", Column::from_strs(pattern.iter().map(|&(_, y)| if y { "p" } else { "n" })))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame, schema, ProtectedAttribute::categorical("g", &["a"]), "p",
        ).unwrap();
        let out = Massaging.fit(&ds, 0).unwrap().transform_train(&ds).unwrap();
        let before: f64 = ds.labels().iter().sum();
        let after: f64 = out.labels().iter().sum();
        prop_assert!((before - after).abs() < 1e-9);
    }

    /// The stratified split, like the plain split, partitions all rows.
    #[test]
    fn stratified_split_partitions(
        pattern in prop::collection::vec((any::<bool>(), any::<bool>()), 20..120),
        seed in any::<u64>(),
    ) {
        let has = |g: bool, y: bool| pattern.iter().any(|&(pg, py)| pg == g && py == y);
        prop_assume!(pattern.iter().any(|&(g, _)| g) && pattern.iter().any(|&(g, _)| !g));
        prop_assume!(has(true, true) || has(false, true));
        prop_assume!(has(true, false) || has(false, false));
        let n = pattern.len();
        let frame = DataFrame::new()
            .with_column("x", Column::from_f64((0..n).map(|i| i as f64)))
            .unwrap()
            .with_column("g", Column::from_strs(pattern.iter().map(|&(g, _)| if g { "a" } else { "b" })))
            .unwrap()
            .with_column("y", Column::from_strs(pattern.iter().map(|&(_, y)| if y { "p" } else { "n" })))
            .unwrap();
        let schema = Schema::new()
            .numeric_feature("x")
            .metadata("g", ColumnKind::Categorical)
            .label("y");
        let ds = BinaryLabelDataset::new(
            frame, schema, ProtectedAttribute::categorical("g", &["a"]), "p",
        ).unwrap();
        let split = stratified_train_val_test_split(&ds, SplitSpec::paper_default(), seed).unwrap();
        let mut all: Vec<usize> = split.indices.train.iter()
            .chain(&split.indices.validation)
            .chain(&split.indices.test)
            .copied()
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Every (label, group) cell with >= 2 members reaches the test set.
        for y in [0.0, 1.0] {
            for g in [false, true] {
                let cell = (0..n)
                    .filter(|&i| ds.labels()[i] == y && ds.privileged_mask()[i] == g)
                    .count();
                if cell >= 2 {
                    let in_test = (0..split.test.n_rows())
                        .filter(|&i| {
                            split.test.labels()[i] == y
                                && split.test.privileged_mask()[i] == g
                        })
                        .count();
                    prop_assert!(in_test >= 1, "cell (y={y}, g={g}) missing from test");
                }
            }
        }
    }
}
