//! Lifecycle-level intervention behaviour: every intervention stage, run
//! through the full framework on a biased task, must move its target
//! fairness metric in the right direction (or at minimum not catastrophically
//! regress) relative to the uncorrected baseline.

use fairprep::prelude::*;
use fairprep_core::results::RunResult;

/// COMPAS-like task with a strong group disparity; seeds fixed for
/// deterministic assertions.
fn run_with(
    configure: impl FnOnce(
        fairprep_core::experiment::ExperimentBuilder,
    ) -> fairprep_core::experiment::ExperimentBuilder,
) -> RunResult {
    let ds = generate_compas(3000, 1, CompasProtected::Race).unwrap();
    let builder = Experiment::builder("compas", ds)
        .seed(46947)
        .learner(LogisticRegressionLearner { tuned: true });
    configure(builder).build().unwrap().run().unwrap()
}

fn baseline() -> RunResult {
    run_with(|b| b)
}

#[test]
fn baseline_task_is_actually_biased() {
    let b = baseline();
    let di = b.test_report.differences.disparate_impact;
    assert!(di < 0.85, "baseline DI {di} — fixture lost its bias");
}

#[test]
fn di_remover_full_repair_moves_di_towards_one() {
    let b = baseline();
    let r = run_with(|b| b.preprocessor(DisparateImpactRemover::new(1.0)));
    let di_base = b.test_report.differences.disparate_impact;
    let di_repair = r.test_report.differences.disparate_impact;
    assert!(
        (di_repair - 1.0).abs() < (di_base - 1.0).abs(),
        "baseline {di_base}, repaired {di_repair}"
    );
}

#[test]
fn reject_option_reduces_statistical_parity_difference() {
    let b = baseline();
    let r = run_with(|b| b.postprocessor(RejectOptionClassification::default()));
    let spd_base = b
        .test_report
        .differences
        .statistical_parity_difference
        .abs();
    let spd_roc = r
        .test_report
        .differences
        .statistical_parity_difference
        .abs();
    assert!(
        spd_roc < spd_base,
        "baseline |SPD| {spd_base}, ROC |SPD| {spd_roc}"
    );
}

#[test]
fn eq_odds_reduces_odds_violation() {
    let b = baseline();
    let r = run_with(|b| b.postprocessor(EqOddsPostprocessing::default()));
    let violation = |res: &RunResult| res.test_report.differences.average_abs_odds_difference;
    assert!(
        violation(&r) < violation(&b) + 0.05,
        "baseline {}, eq-odds {}",
        violation(&b),
        violation(&r)
    );
}

#[test]
fn massaging_runs_in_the_lifecycle_and_equalizes_training_rates() {
    // Massaging only edits the training labels; verify it executes end to
    // end and training-side metrics reflect it.
    let r = run_with(|b| b.preprocessor(Massaging));
    assert_eq!(r.metadata.preprocessor, "massaging");
    let train = &r.selected_candidate().train_report;
    assert!(
        train.differences.base_rate_difference.abs() < 0.05,
        "training base-rate gap after massaging: {}",
        train.differences.base_rate_difference
    );
}

#[test]
fn prejudice_remover_reduces_di_deviation_vs_its_unregularized_self() {
    let plain = run_with(|b| {
        b.learner(InProcessLearner::new(PrejudiceRemover {
            eta: 0.0,
            ..Default::default()
        }))
        .model_selector(PickLast)
    });
    let fair = run_with(|b| {
        b.learner(InProcessLearner::new(PrejudiceRemover {
            eta: 25.0,
            ..Default::default()
        }))
        .model_selector(PickLast)
    });
    let dev = |r: &RunResult| (r.test_report.differences.disparate_impact - 1.0).abs();
    assert!(
        dev(&fair) < dev(&plain),
        "plain {} fair {}",
        dev(&plain),
        dev(&fair)
    );
}

/// Selector that always picks the last candidate (the in-processor added
/// after the tuned-LR default candidate in these tests).
struct PickLast;
impl fairprep_core::experiment::ModelSelector for PickLast {
    fn select(&self, candidates: &[fairprep_core::results::CandidateEvaluation]) -> usize {
        candidates.len() - 1
    }
}

#[test]
fn random_forest_learner_works_in_the_lifecycle() {
    let ds = generate_german(400, 5).unwrap();
    let result = Experiment::builder("german", ds)
        .seed(9)
        .learner(RandomForestLearner::default())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(result.metadata.candidates[0].starts_with("random_forest"));
    assert!(result.test_report.overall.accuracy > 0.6);
}

#[test]
fn sweep_aggregator_quantifies_cross_seed_variability() {
    use fairprep_core::aggregate::SweepAggregator;
    let mut agg = SweepAggregator::new(&["overall_accuracy", "disparate_impact"]);
    for seed in [1u64, 2, 3, 4] {
        let ds = generate_german(300, 2).unwrap();
        let r = Experiment::builder("german", ds)
            .seed(seed)
            .learner(DecisionTreeLearner { tuned: false })
            .build()
            .unwrap()
            .run()
            .unwrap();
        agg.add(&r);
    }
    let keys = agg.keys();
    assert_eq!(keys.len(), 1, "same config should group together");
    let d = agg.distribution(keys[0], "disparate_impact").unwrap();
    assert_eq!(d.n, 4);
    assert!(d.std > 0.0, "different seeds must produce variability");
}

#[test]
fn dataset_metrics_audit_matches_lifecycle_view() {
    use fairprep_fairness::metrics::DatasetMetrics;
    let ds = generate_compas(2000, 3, CompasProtected::Race).unwrap();
    let m = DatasetMetrics::compute(&ds).unwrap();
    assert!((m.base_rate - ds.base_rate(None)).abs() < 1e-12);
    assert!((m.privileged_base_rate - ds.base_rate(Some(true))).abs() < 1e-12);
    assert!((m.unprivileged_base_rate - ds.base_rate(Some(false))).abs() < 1e-12);
    // COMPAS favorable = no-recid; privileged group has the higher rate.
    assert!(m.disparate_impact < 1.0);
}

#[test]
fn consistency_of_featurized_benchmark_data_is_reasonable() {
    use fairprep_fairness::metrics::consistency;
    use fairprep_ml::transform::{FittedFeaturizer, ScalerSpec};
    let ds = generate_ricci(118, 4).unwrap();
    let f = FittedFeaturizer::fit(&ds, ScalerSpec::Standard).unwrap();
    let x = f.transform(&ds).unwrap();
    let c = consistency(&x, ds.labels(), 5).unwrap();
    // ricci labels are a deterministic threshold of the features, so nearby
    // candidates mostly share labels.
    assert!(c > 0.75, "consistency {c}");
}
